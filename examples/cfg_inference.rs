//! Infer control flow graphs from stack-walk logs alone — the paper's
//! Algorithm 1 — and compare a clean run against an infected one.
//!
//! Demonstrates the program-analysis half of LEAPS in isolation: no
//! machine learning, just the CFG inference, the benign/mixed comparison
//! of Figure 4, and the density-array weight estimation of Algorithm 2.
//! Writes Graphviz files you can render with `dot -Tsvg`.
//!
//! ```text
//! cargo run --release -p leaps --example cfg_inference
//! ```

use leaps::cfg::compare::{mixed_only_nodes, overlap};
use leaps::cfg::dot::to_dot;
use leaps::cfg::infer::infer_cfg;
use leaps::cfg::weight::{assess_weights, WeightConfig};
use leaps::core::dataset::Dataset;
use leaps::etw::scenario::{GenParams, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::by_name("putty_reverse_tcp_online").expect("known dataset");
    let dataset = Dataset::materialize(scenario, &GenParams::small(), 7)?;

    let benign = infer_cfg(&dataset.benign);
    let mixed = infer_cfg(&dataset.mixed);

    println!("CFG inference from stack walks only (Algorithm 1)");
    println!(
        "  benign CFG: {} nodes, {} edges (from {} events)",
        benign.cfg.node_count(),
        benign.cfg.edge_count(),
        dataset.benign.len()
    );
    println!(
        "  mixed CFG:  {} nodes, {} edges (from {} events)",
        mixed.cfg.node_count(),
        mixed.cfg.edge_count(),
        dataset.mixed.len()
    );

    let stats = overlap(&benign.cfg, &mixed.cfg);
    println!(
        "  overlap: {} shared nodes, {} mixed-only nodes",
        stats.shared_nodes, stats.mixed_only_nodes
    );

    // The mixed-only subgraph is the injected payload: for online
    // injection it lives in a far-away allocation, so its addresses are
    // far outside the benign image.
    let anomalous = mixed_only_nodes(&benign.cfg, &mixed.cfg);
    if let (Some(first), Some(last)) = (anomalous.first(), anomalous.last()) {
        println!("  anomalous node address range: {first} .. {last}");
    }

    // Algorithm 2: per-event benignity.
    let weights = assess_weights(&benign.cfg, &mixed, WeightConfig::default());
    println!("  weight assessment scored {} mixed events", weights.scored_events());
    let low: Vec<u64> =
        weights.iter().filter(|&(_, b)| b < 0.2).map(|(num, _)| num).take(8).collect();
    println!("  sample of events flagged low-benignity: {low:?}");

    std::fs::write("putty_benign_cfg.dot", to_dot(&benign.cfg, "putty_benign", None))?;
    std::fs::write("putty_mixed_cfg.dot", to_dot(&mixed.cfg, "putty_mixed", Some(&benign.cfg)))?;
    println!("  wrote putty_benign_cfg.dot and putty_mixed_cfg.dot");
    Ok(())
}
