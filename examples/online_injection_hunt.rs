//! Hunt an online-injected backdoor across every host application.
//!
//! The paper's Case Study III scenario: a Meterpreter payload injected at
//! runtime into a long-running process. This example sweeps all
//! online-injection datasets, compares the three detection methods on
//! each, and flags the method ordering — a compact reproduction of
//! Figure 7's story.
//!
//! ```text
//! cargo run --release -p leaps --example online_injection_hunt
//! ```

use leaps::core::experiment::Experiment;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::{GenParams, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let experiment = Experiment {
        gen: GenParams {
            benign_events: 1500,
            mixed_events: 1500,
            malicious_events: 750,
            benign_ratio: 0.5,
        },
        runs: 2,
        ..Experiment::default()
    };

    println!("Hunting online-injected backdoors across all host applications\n");
    let mut wsvm_wins = 0usize;
    let scenarios = Scenario::online();
    for scenario in &scenarios {
        let results = experiment.run_all_methods(*scenario)?;
        let accs: Vec<String> = results
            .iter()
            .map(|(m, metrics)| format!("{}={:.3}", m.label(), metrics.acc))
            .collect();
        let best =
            results.iter().max_by(|a, b| a.1.acc.total_cmp(&b.1.acc)).expect("three methods").0;
        if best == Method::Wsvm {
            wsvm_wins += 1;
        }
        println!("  {:<32} {}  -> best: {}", scenario.name(), accs.join("  "), best.label());
    }
    println!("\nWSVM ranked first on {wsvm_wins}/{} online-injection datasets.", scenarios.len());
    Ok(())
}
