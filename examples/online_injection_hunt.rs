//! Hunt an online-injected backdoor across every host application.
//!
//! The paper's Case Study III scenario: a Meterpreter payload injected at
//! runtime into a long-running process. This example sweeps all
//! online-injection datasets, compares the three detection methods on
//! each, and flags the method ordering — a compact reproduction of
//! Figure 7's story.
//!
//! ```text
//! cargo run --release -p leaps --example online_injection_hunt
//! ```

use leaps::core::experiment::Experiment;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::{GenParams, Scenario};

fn main() {
    let experiment = Experiment {
        gen: GenParams {
            benign_events: 1500,
            mixed_events: 1500,
            malicious_events: 750,
            benign_ratio: 0.5,
        },
        runs: 2,
        ..Experiment::default()
    };

    println!("Hunting online-injected backdoors across all host applications\n");
    let mut wsvm_wins = 0usize;
    let scenarios = Scenario::online();
    for scenario in &scenarios {
        // Supervised: a failing method is reported inline, the hunt
        // continues across the remaining methods and datasets.
        let results = experiment.run_all_methods(*scenario);
        let accs: Vec<String> = results
            .iter()
            .map(|(m, outcome)| match outcome.metrics() {
                Some(metrics) => format!("{}={:.3}", m.label(), metrics.acc),
                None => format!("{}={}", m.label(), outcome.tag()),
            })
            .collect();
        let best = results
            .iter()
            .filter_map(|(m, outcome)| outcome.metrics().map(|metrics| (*m, metrics.acc)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let verdict = match best {
            Some((method, _)) => {
                if method == Method::Wsvm {
                    wsvm_wins += 1;
                }
                format!("best: {}", method.label())
            }
            None => "no method completed".to_owned(),
        };
        println!("  {:<32} {}  -> {}", scenario.name(), accs.join("  "), verdict);
    }
    println!("\nWSVM ranked first on {wsvm_wins}/{} online-injection datasets.", scenarios.len());
}
