//! Quickstart: detect a camouflaged attack end to end.
//!
//! Generates the `vim_reverse_tcp` dataset (a Vim binary trojaned with a
//! reverse-TCP shell), trains the CFG-guided Weighted SVM, and evaluates
//! it on held-out benign data and the standalone payload.
//!
//! ```text
//! cargo run --release -p leaps --example quickstart
//! ```

use leaps::core::experiment::Experiment;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::{GenParams, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
    println!(
        "Scenario: {} ({} / {} / {})",
        scenario.name(),
        scenario.method.label(),
        scenario.app.name(),
        scenario.payload.name()
    );

    // A moderate-size experiment: 3 randomized runs over 2000-event logs.
    let experiment = Experiment {
        gen: GenParams {
            benign_events: 2000,
            mixed_events: 2000,
            malicious_events: 1000,
            benign_ratio: 0.5,
        },
        runs: 3,
        ..Experiment::default()
    };

    println!("\nTraining and evaluating the three detection methods...");
    for method in Method::ALL {
        let metrics = experiment.run(scenario, method)?;
        println!("  {:<8} {metrics}", method.label());
    }
    println!(
        "\nLEAPS's CFG-guided Weighted SVM should rank highest on every \
         measure — the CFG inferred from application stack traces lets it \
         discount the benign noise that contaminates the mixed training log."
    );
    Ok(())
}
