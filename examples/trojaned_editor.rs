//! Walk through the full LEAPS pipeline on a trojaned editor, stage by
//! stage — the offline-infection story of the paper's Case Study II
//! (Codeinject `pwddlg` embedded in a text editor).
//!
//! Unlike `quickstart`, this example drives each module explicitly: raw
//! log generation → parsing → stack partition → CFG inference → weight
//! assessment → feature clustering → weighted SVM, printing what every
//! stage produced.
//!
//! ```text
//! cargo run --release -p leaps --example trojaned_editor
//! ```

use leaps::cfg::infer::infer_cfg;
use leaps::cfg::weight::{assess_weights, WeightConfig};
use leaps::cluster::features::{FeatureEncoder, PreprocessConfig};
use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::pipeline::{train_classifier, Classifier, Method};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::trace::partition::PartitionedEvent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::by_name("notepad++_codeinject").expect("known dataset");
    let params = GenParams {
        benign_events: 2000,
        mixed_events: 2000,
        malicious_events: 1000,
        benign_ratio: 0.5,
    };

    // Stage 1: controlled tracing runs → raw logs → parsed, partitioned.
    let dataset = Dataset::materialize(scenario, &params, 42)?;
    println!("[1] raw logs parsed and stack-partitioned:");
    println!(
        "    benign {} events, mixed {} events, standalone payload {} events",
        dataset.benign.len(),
        dataset.mixed.len(),
        dataset.malicious.len()
    );

    // Stage 2: 50/50 benign split (train half is the CFG oracle).
    let (train, test) = dataset.split_benign(0.5, 42);
    println!("[2] benign split: {} train / {} test events", train.len(), test.len());

    // Stage 3: CFG inference on application stack traces (Algorithm 1).
    let bcfg = infer_cfg(&train);
    let mcfg = infer_cfg(&dataset.mixed);
    println!(
        "[3] inferred CFGs: benign {} nodes / {} edges, mixed {} nodes / {} edges",
        bcfg.cfg.node_count(),
        bcfg.cfg.edge_count(),
        mcfg.cfg.node_count(),
        mcfg.cfg.edge_count()
    );

    // Stage 4: CFG-guided weight assessment (Algorithm 2).
    let weights = assess_weights(&bcfg.cfg, &mcfg, WeightConfig::default());
    let (mut benign_sum, mut benign_n) = (0.0, 0);
    let (mut mal_sum, mut mal_n) = (0.0, 0);
    for event in &dataset.mixed {
        match event.truth {
            Some(leaps::etw::event::Provenance::Benign) => {
                benign_sum += weights.maliciousness(event.num);
                benign_n += 1;
            }
            Some(leaps::etw::event::Provenance::Malicious) => {
                mal_sum += weights.maliciousness(event.num);
                mal_n += 1;
            }
            None => {}
        }
    }
    println!(
        "[4] mean maliciousness weight: benign-noise events {:.3}, payload events {:.3}",
        benign_sum / f64::from(benign_n),
        mal_sum / f64::from(mal_n)
    );

    // Stage 5: feature discretization (hierarchical clustering, Eq. 1).
    let refs: Vec<&PartitionedEvent> = train.iter().chain(dataset.mixed.iter()).collect();
    let encoder = FeatureEncoder::fit(&refs, PreprocessConfig::default());
    println!(
        "[5] feature encoder: {} lib clusters, {} func clusters, window {}",
        encoder.lib_cluster_count(),
        encoder.func_cluster_count(),
        encoder.config().window
    );

    // Stage 6: train and evaluate the weighted SVM (Eq. 2-5).
    let classifier =
        train_classifier(Method::Wsvm, &train, &dataset.mixed, &PipelineConfig::default(), 42);
    if let Classifier::Svm(svm) = &classifier {
        println!(
            "[6] WSVM trained: {} support vectors, tuned lambda={} sigma2={}",
            svm.model.support_vector_count(),
            svm.tuned.0,
            svm.tuned.1
        );
    }
    let metrics = classifier.evaluate(&test, &dataset.malicious).metrics();
    println!("[7] held-out evaluation: {metrics}");
    Ok(())
}
