//! Drive a live `leaps-serve` daemon end-to-end, in one process.
//!
//! Trains a WSVM on a controlled-environment dataset, saves it into a
//! model directory, boots the detection daemon on a socket, and then
//! acts as a monitoring client: `HELLO`, `OPEN` a session against the
//! saved model, stream an infected process's events, read the verdicts
//! back, and shut the daemon down gracefully.
//!
//! ```text
//! cargo run --release -p leaps --example serve_session
//! ```

use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::persist::save_classifier;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::serve::{BoundDaemon, Client, Command, Endpoint, Server, ServerConfig};
use std::sync::Arc;

fn endpoint_for(dir: &std::path::Path) -> Endpoint {
    #[cfg(unix)]
    return Endpoint::Unix(dir.join("leaps.sock"));
    #[cfg(not(unix))]
    {
        let _ = dir;
        Endpoint::Tcp("127.0.0.1:0".to_owned())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
    let params = GenParams::small();

    // Offline: train on controlled-environment logs and persist the
    // model where the daemon will look for it.
    let training = Dataset::materialize(scenario, &params, 11)?;
    let (train, _) = training.split_benign(0.5, 11);
    println!("training WSVM on {}...", scenario.name());
    let classifier =
        train_classifier(Method::Wsvm, &train, &training.mixed, &PipelineConfig::fast(), 11);
    let dir = std::env::temp_dir().join(format!("leaps-serve-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join("vim.model"), save_classifier(&classifier))?;

    // Boot the daemon. Binding before spawning the accept loop means the
    // endpoint (including a TCP port chosen by the OS) is ready to dial.
    let server = Arc::new(Server::new(&ServerConfig::new(&dir)));
    let bound: BoundDaemon = endpoint_for(&dir).bind()?;
    let endpoint = bound.endpoint().clone();
    println!("daemon listening on {endpoint}");
    let daemon_server = Arc::clone(&server);
    // lint:allow(stray-spawn): the daemon accept loop is the process under demonstration, not a unit of pooled work; it is joined explicitly after shutdown below
    let daemon = std::thread::spawn(move || bound.run(&daemon_server));

    // Online: a fresh infected run streams through one session.
    let production = Dataset::materialize(scenario, &params, 12)?;
    let mut verdicts = Vec::new();
    let mut client = Client::connect(&endpoint)?;
    let hello = client.expect_ok(&Command::Hello { client: "example".into() }, &mut verdicts)?;
    println!("{hello}");
    client.expect_ok(&Command::Open { pid: 4242, model: "vim".into() }, &mut verdicts)?;
    for event in &production.mixed {
        let ack =
            client.request(&Command::Event { pid: 4242, event: event.clone() }, &mut verdicts)?;
        assert!(ack.is_ack());
    }
    let report = client.expect_ok(&Command::Close { pid: 4242 }, &mut verdicts)?;
    let alerts = verdicts.iter().filter(|(_, v)| !v.benign).count();
    println!(
        "session over: {} events -> {} verdicts, {alerts} flagged malicious",
        production.mixed.len(),
        verdicts.len()
    );
    println!("{report}");

    // Graceful shutdown: the daemon drains and the thread returns.
    client.expect_ok(&Command::Shutdown, &mut verdicts)?;
    drop(client);
    let drained = daemon.join().expect("daemon thread")?;
    println!("daemon exited cleanly ({drained} sessions drained at shutdown)");
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
