//! Deploy a trained LEAPS classifier against a live event stream.
//!
//! Trains the WSVM on a controlled-environment dataset, then replays an
//! infected process's events one at a time through the incremental
//! [`StreamDetector`], printing alerts as windows complete — the paper's
//! Testing Phase the way a production monitor would run it.
//!
//! ```text
//! cargo run --release -p leaps --example streaming_monitor
//! ```

use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::core::stream::StreamDetector;
use leaps::etw::event::Provenance;
use leaps::etw::scenario::{GenParams, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::by_name("winscp_reverse_tcp_online").expect("known dataset");
    let params = GenParams {
        benign_events: 2000,
        mixed_events: 2000,
        malicious_events: 1000,
        benign_ratio: 0.5,
    };

    // Training phase: controlled-environment logs.
    let training = Dataset::materialize(scenario, &params, 11)?;
    let (train, _) = training.split_benign(0.5, 11);
    println!(
        "training WSVM on {} ({} benign / {} mixed events)...",
        scenario.name(),
        train.len(),
        training.mixed.len()
    );
    let classifier =
        train_classifier(Method::Wsvm, &train, &training.mixed, &PipelineConfig::default(), 11);

    // Production phase: a fresh infected run streams in.
    let production = Dataset::materialize(scenario, &params, 12)?;
    let mut detector = StreamDetector::new(classifier);
    let mut alerts = 0usize;
    let mut verdicts = 0usize;
    let mut first_alert: Option<u64> = None;
    let mut first_malicious: Option<u64> = None;
    for event in &production.mixed {
        if event.truth == Some(Provenance::Malicious) && first_malicious.is_none() {
            first_malicious = Some(event.num);
        }
        if let Some(verdict) = detector.push(event.clone()) {
            verdicts += 1;
            if !verdict.benign {
                alerts += 1;
                if first_alert.is_none() {
                    first_alert = Some(verdict.last_event);
                    println!(
                        "first ALERT at event @{} (score {:.3})",
                        verdict.last_event,
                        verdict.score.unwrap_or(0.0)
                    );
                }
            }
        }
    }
    println!(
        "stream finished: {alerts}/{verdicts} windows flagged malicious over {} events",
        production.mixed.len()
    );
    if let (Some(alert), Some(mal)) = (first_alert, first_malicious) {
        println!(
            "ground truth: first payload event was @{mal}; detection latency {} events",
            alert.saturating_sub(mal)
        );
    }
    Ok(())
}
