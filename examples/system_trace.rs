//! Detect across a **system-wide trace**: several infected applications
//! recorded in one log (as a production ETW session would), sliced back
//! into per-process streams and screened per application.
//!
//! ```text
//! cargo run --release -p leaps --example system_trace
//! ```

use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::core::stream::StreamDetector;
use leaps::etw::logfmt::write_log;
use leaps::etw::scenario::{generate_system_trace, GenParams, Scenario};
use leaps::trace::parser::parse_log;
use leaps::trace::partition::partition_events;
use leaps::trace::slicing::slice_by_process;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenarios = [
        Scenario::by_name("vim_reverse_tcp").unwrap(),
        Scenario::by_name("putty_reverse_https_online").unwrap(),
        Scenario::by_name("winscp_reverse_tcp").unwrap(),
    ];
    let params = GenParams {
        benign_events: 1200,
        mixed_events: 1200,
        malicious_events: 600,
        benign_ratio: 0.5,
    };

    // One trace, three infected processes.
    let trace = generate_system_trace(&scenarios, &params, 21);
    let raw = write_log(&trace);
    println!(
        "system-wide trace: {} events across {} processes ({} log lines)",
        trace.len(),
        scenarios.len(),
        raw.lines().count()
    );

    // Front end: parse + slice per process, as a monitor would.
    let parsed = parse_log(&raw)?;
    let slices = slice_by_process(&parsed);

    // Screen each process with its application's classifier (trained from
    // that application's controlled-environment dataset).
    for (i, scenario) in scenarios.iter().enumerate() {
        let pid = 0x1000 + i as u32;
        let events = partition_events(&slices[&pid]);
        let training = Dataset::materialize(*scenario, &params, 22)?;
        let (train, _) = training.split_benign(0.5, 22);
        let classifier =
            train_classifier(Method::Wsvm, &train, &training.mixed, &PipelineConfig::fast(), 22);
        let mut detector = StreamDetector::new(classifier);
        let verdicts = detector.push_all(events.iter().cloned());
        let flagged = verdicts.iter().filter(|v| !v.benign).count();
        println!(
            "  pid {pid:#06x} ({:<28}) {} events -> {}/{} windows flagged",
            scenario.name(),
            events.len(),
            flagged,
            verdicts.len()
        );
    }
    println!("(every process here is infected, so every slice should raise alerts)");
    Ok(())
}
