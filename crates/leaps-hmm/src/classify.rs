//! Benign-vs-mixed classification with a pair of HMMs.

use crate::hmm::{Hmm, HmmParams, HmmState};
use std::collections::BTreeMap;

/// A two-model HMM classifier over discrete event symbols.
///
/// Mirrors the paper's discriminative setup: the positive model is
/// trained on benign sequences, the negative model on mixed sequences
/// (noisy, as in the paper); a test sequence is benign iff the benign
/// model's per-symbol log-likelihood exceeds the mixed model's.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmClassifier {
    benign: Hmm,
    mixed: Hmm,
}

impl HmmClassifier {
    /// Trains the two models.
    ///
    /// Training sequences are symbol chunks of length `chunk`; symbols
    /// must already be discretized into `0..symbols` (use a
    /// `FeatureEncoder` tuple→symbol mapping — see `leaps-core`).
    ///
    /// # Panics
    ///
    /// Panics if either stream produces no non-empty chunk, or symbols
    /// exceed the alphabet.
    #[must_use]
    pub fn fit(
        benign_symbols: &[usize],
        mixed_symbols: &[usize],
        symbols: usize,
        chunk: usize,
        params: &HmmParams,
    ) -> HmmClassifier {
        Self::fit_resumable(
            benign_symbols,
            mixed_symbols,
            symbols,
            chunk,
            params,
            (None, None),
            &mut |_, _| true,
        )
        .expect("non-checkpointing fit cannot pause")
    }

    /// [`HmmClassifier::fit`] with per-iteration checkpoint hooks on
    /// both underlying Baum–Welch runs.
    ///
    /// `checkpoint` receives `(model_index, state)` where index `0` is
    /// the benign model and `1` the mixed model; returning `false`
    /// pauses the fit (`None` is returned). `resume` carries the last
    /// captured state per model: a complete benign state skips that
    /// training entirely, so a fit paused inside the mixed model never
    /// re-trains the benign one. Resumed fits are bit-identical to
    /// uninterrupted ones (see [`Hmm::train_resumable`]).
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`HmmClassifier::fit`].
    pub fn fit_resumable(
        benign_symbols: &[usize],
        mixed_symbols: &[usize],
        symbols: usize,
        chunk: usize,
        params: &HmmParams,
        resume: (Option<HmmState>, Option<HmmState>),
        checkpoint: &mut dyn FnMut(usize, &HmmState) -> bool,
    ) -> Option<HmmClassifier> {
        assert!(chunk >= 2, "chunks must hold at least two symbols");
        let chunks = |stream: &[usize]| -> Vec<Vec<usize>> {
            stream.chunks(chunk).map(<[usize]>::to_vec).collect()
        };
        let (benign_resume, mixed_resume) = resume;
        let benign = Hmm::train_resumable(
            &chunks(benign_symbols),
            symbols,
            params,
            benign_resume,
            &mut |state| checkpoint(0, state),
        )?;
        let mixed = Hmm::train_resumable(
            &chunks(mixed_symbols),
            symbols,
            &HmmParams { seed: params.seed ^ 0xbad, ..*params },
            mixed_resume,
            &mut |state| checkpoint(1, state),
        )?;
        Some(HmmClassifier { benign, mixed })
    }

    /// Per-symbol log-likelihood ratio `(benign − mixed) / len`; positive
    /// means benign-like.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is empty or contains out-of-alphabet symbols.
    #[must_use]
    pub fn score(&self, seq: &[usize]) -> f64 {
        let len = seq.len() as f64;
        (self.benign.log_likelihood(seq) - self.mixed.log_likelihood(seq)) / len
    }

    /// Classifies a sequence: `true` = benign.
    #[must_use]
    pub fn is_benign(&self, seq: &[usize]) -> bool {
        self.score(seq) >= 0.0
    }

    /// The positive (benign) model.
    #[must_use]
    pub fn benign_model(&self) -> &Hmm {
        &self.benign
    }

    /// The negative (mixed) model.
    #[must_use]
    pub fn mixed_model(&self) -> &Hmm {
        &self.mixed
    }

    /// Reassembles a classifier from persisted models.
    #[must_use]
    pub fn from_parts(benign: Hmm, mixed: Hmm) -> HmmClassifier {
        HmmClassifier { benign, mixed }
    }
}

/// A growable mapping from arbitrary ordered observations to dense
/// symbol ids, with a reserved "unknown" symbol for observations first
/// seen at test time.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable<T: Ord> {
    ids: BTreeMap<T, usize>,
}

impl<T: Ord> SymbolTable<T> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable { ids: BTreeMap::new() }
    }

    /// Interns an observation during training, returning its id.
    pub fn intern(&mut self, obs: T) -> usize {
        let next = self.ids.len();
        *self.ids.entry(obs).or_insert(next)
    }

    /// Looks an observation up at test time; unknown observations map to
    /// the reserved id [`Self::alphabet_size`]` - 1`.
    #[must_use]
    pub fn lookup(&self, obs: &T) -> usize {
        self.ids.get(obs).copied().unwrap_or(self.ids.len())
    }

    /// Alphabet size including the reserved unknown symbol.
    #[must_use]
    pub fn alphabet_size(&self) -> usize {
        self.ids.len() + 1
    }

    /// Iterates `(observation, id)` pairs in observation order (for
    /// persistence; sorted, so persisted artifacts are stable).
    pub fn entries(&self) -> impl Iterator<Item = (&T, usize)> {
        self.ids.iter().map(|(k, &v)| (k, v))
    }

    /// Reassembles a table from persisted entries. Ids must be dense
    /// `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense.
    #[must_use]
    pub fn from_entries(entries: impl IntoIterator<Item = (T, usize)>) -> SymbolTable<T> {
        let ids: BTreeMap<T, usize> = entries.into_iter().collect();
        let n = ids.len();
        let mut seen = vec![false; n];
        for &v in ids.values() {
            assert!(v < n, "symbol id {v} out of range");
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "symbol ids are not dense");
        SymbolTable { ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repeat_pattern(pattern: &[usize], len: usize) -> Vec<usize> {
        (0..len).map(|i| pattern[i % pattern.len()]).collect()
    }

    #[test]
    fn classifier_separates_distinct_symbol_languages() {
        // Benign language cycles 0,1,2; "mixed" (malicious-ish) uses 3,4.
        let benign = repeat_pattern(&[0, 1, 2], 200);
        let mixed = repeat_pattern(&[3, 4], 200);
        let clf = HmmClassifier::fit(&benign, &mixed, 5, 40, &HmmParams::default());
        assert!(clf.is_benign(&repeat_pattern(&[0, 1, 2], 12)));
        assert!(!clf.is_benign(&repeat_pattern(&[3, 4], 12)));
        assert!(clf.score(&repeat_pattern(&[0, 1, 2], 12)) > 0.0);
    }

    #[test]
    fn noisy_mixed_stream_still_flags_pure_malicious() {
        // The mixed stream interleaves benign and malicious symbols (the
        // paper's noisy-negative situation).
        let benign = repeat_pattern(&[0, 1], 300);
        let mixed: Vec<usize> =
            (0..300).map(|i| if (i / 25) % 2 == 0 { i % 2 } else { 2 + i % 2 }).collect();
        let clf = HmmClassifier::fit(&benign, &mixed, 4, 50, &HmmParams::default());
        assert!(!clf.is_benign(&repeat_pattern(&[2, 3], 12)));
    }

    #[test]
    fn fit_pause_and_resume_is_bit_identical() {
        let benign = repeat_pattern(&[0, 1, 2], 120);
        let mixed = repeat_pattern(&[3, 4], 120);
        let params = HmmParams { iterations: 4, ..HmmParams::default() };
        let clean = HmmClassifier::fit(&benign, &mixed, 5, 30, &params);

        // Pause after every (model, iteration) boundary and resume; the
        // result must always match the uninterrupted fit.
        let total = 2 * params.iterations;
        for pause_at in 1..=total {
            let mut captured: (Option<HmmState>, Option<HmmState>) = (None, None);
            let mut n = 0usize;
            let paused = HmmClassifier::fit_resumable(
                &benign,
                &mixed,
                5,
                30,
                &params,
                (None, None),
                &mut |which, state| {
                    n += 1;
                    if which == 0 {
                        captured.0 = Some(state.clone());
                    } else {
                        captured.1 = Some(state.clone());
                    }
                    n < pause_at
                },
            );
            assert!(paused.is_none(), "should have paused at boundary {pause_at}");
            let resumed = HmmClassifier::fit_resumable(
                &benign,
                &mixed,
                5,
                30,
                &params,
                captured,
                &mut |_, _| true,
            )
            .expect("resumed fit must complete");
            assert_eq!(resumed, clean, "resume after boundary {pause_at} diverged");
        }
    }

    #[test]
    fn models_are_accessible() {
        let clf = HmmClassifier::fit(
            &repeat_pattern(&[0], 40),
            &repeat_pattern(&[1], 40),
            2,
            20,
            &HmmParams::default(),
        );
        assert_eq!(clf.benign_model().symbol_count(), 2);
        assert_eq!(clf.mixed_model().state_count(), HmmParams::default().states);
    }

    #[test]
    fn symbol_table_interns_and_handles_unknowns() {
        let mut table: SymbolTable<(u32, u32)> = SymbolTable::new();
        let a = table.intern((1, 2));
        let b = table.intern((3, 4));
        assert_ne!(a, b);
        assert_eq!(table.intern((1, 2)), a);
        assert_eq!(table.lookup(&(1, 2)), a);
        // Unknown at test time → reserved last id.
        assert_eq!(table.lookup(&(9, 9)), table.alphabet_size() - 1);
        assert_eq!(table.alphabet_size(), 3);
    }
}
