//! Discrete hidden Markov models for event-sequence classification — the
//! sequence-learning extension the LEAPS paper proposes in Section VI-B
//! ("we plan to explore more machine learning techniques, such as
//! conditional random field model and hidden Markov model, to reveal such
//! hidden relationships between events").
//!
//! A [`hmm::Hmm`] is a classic discrete HMM (initial distribution π,
//! transition matrix A, emission matrix B) trained with Baum–Welch over
//! multiple observation sequences and scored with the scaled forward
//! algorithm. [`classify::HmmClassifier`] trains one model on benign
//! event-symbol sequences and one on mixed sequences, and labels a test
//! sequence by per-symbol log-likelihood ratio — the HMM analogue of the
//! paper's benign-vs-mixed discriminative setup (and it inherits the same
//! noisy-negative weakness, which is the point of comparing it).

pub mod classify;
pub mod hmm;

pub use classify::HmmClassifier;
pub use hmm::{Hmm, HmmParams};
