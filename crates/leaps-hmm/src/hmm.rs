//! Discrete HMM with Baum–Welch training and scaled forward scoring.

use leaps_etw::rng::SimRng;

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HmmParams {
    /// Number of hidden states.
    pub states: usize,
    /// Baum–Welch iterations.
    pub iterations: usize,
    /// Probability floor applied after every re-estimation so no
    /// transition/emission collapses to exactly zero (unseen test symbols
    /// would otherwise yield −∞ likelihood).
    pub floor: f64,
    /// Seed for the random initialization.
    pub seed: u64,
}

impl Default for HmmParams {
    fn default() -> Self {
        HmmParams { states: 6, iterations: 15, floor: 1e-6, seed: 1 }
    }
}

/// A discrete hidden Markov model.
#[derive(Debug, Clone, PartialEq)]
pub struct Hmm {
    /// Number of hidden states `N`.
    states: usize,
    /// Number of observation symbols `M`.
    symbols: usize,
    /// Initial state distribution, length `N`.
    pi: Vec<f64>,
    /// Transition probabilities, `N × N`, row-stochastic.
    a: Vec<f64>,
    /// Emission probabilities, `N × M`, row-stochastic.
    b: Vec<f64>,
}

/// Resumable Baum–Welch state: the model parameters after `iteration`
/// completed iterations, plus the post-initialization RNG state.
///
/// All of Baum–Welch's randomness is spent on the initial π/A/B draw —
/// the iterations themselves are deterministic — so the captured `rng`
/// is never re-consumed on resume; it is carried (and validated
/// non-zero) so the checkpoint records the full generator state the run
/// was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct HmmState {
    /// Completed Baum–Welch iterations.
    pub iteration: usize,
    /// Number of hidden states `N`.
    pub states: usize,
    /// Number of observation symbols `M`.
    pub symbols: usize,
    /// Initial state distribution after `iteration` iterations.
    pub pi: Vec<f64>,
    /// Transition matrix after `iteration` iterations.
    pub a: Vec<f64>,
    /// Emission matrix after `iteration` iterations.
    pub b: Vec<f64>,
    /// Generator state captured right after the random initialization.
    pub rng: [u64; 4],
}

/// Per-sequence E-step statistics: each training sequence's contribution
/// to the Baum–Welch accumulators, computed independently of every other
/// sequence so the E-step can fan out across threads.
struct SeqStats {
    pi: Vec<f64>,
    a_num: Vec<f64>,
    a_den: Vec<f64>,
    b_num: Vec<f64>,
    b_den: Vec<f64>,
}

impl SeqStats {
    /// Adds `other` into `self` element-wise. Called on the training
    /// thread in sequence order, which fixes the floating-point reduction
    /// order independently of how the E-step was scheduled.
    fn merge(&mut self, other: &SeqStats) {
        let add = |acc: &mut [f64], inc: &[f64]| {
            for (a, x) in acc.iter_mut().zip(inc) {
                *a += x;
            }
        };
        add(&mut self.pi, &other.pi);
        add(&mut self.a_num, &other.a_num);
        add(&mut self.a_den, &other.a_den);
        add(&mut self.b_num, &other.b_num);
        add(&mut self.b_den, &other.b_den);
    }
}

impl Hmm {
    /// Trains an HMM on `sequences` of observation symbols drawn from
    /// `0..symbols`, with Baum–Welch (multiple-sequence re-estimation).
    ///
    /// The E-step (forward/backward plus gamma/xi accumulation) runs per
    /// sequence and fans out across the `leaps_par` pool; the per-sequence
    /// statistics are then reduced into the shared accumulators on the
    /// calling thread **in sequence order**, so the trained model is
    /// bit-identical at every thread count (`LEAPS_THREADS=1` spawns no
    /// threads at all and computes the exact same sums).
    ///
    /// # Degenerate transition evidence
    ///
    /// A sequence of length 1 has no transitions, so it contributes
    /// nothing to the `A` re-estimation. If **no** sequence has length
    /// ≥ 2 the transition matrix would silently keep its random
    /// initialization; instead it is set to the uniform
    /// (maximum-entropy) distribution and left there — deterministic,
    /// seed-independent, and irrelevant to scoring (a length-1 sequence
    /// never consults `A`). π and `B` are still re-estimated normally.
    ///
    /// # Panics
    ///
    /// Panics if `symbols == 0`, `params.states == 0`, there are no
    /// non-empty sequences, or a sequence contains an out-of-range symbol.
    #[must_use]
    pub fn train(sequences: &[Vec<usize>], symbols: usize, params: &HmmParams) -> Hmm {
        Self::train_resumable(sequences, symbols, params, None, &mut |_| true)
            .expect("non-checkpointing Baum–Welch cannot pause")
    }

    /// [`Hmm::train`] with per-iteration checkpoint hooks.
    ///
    /// After every completed Baum–Welch iteration `checkpoint` is called
    /// with the current [`HmmState`]; returning `false` pauses training
    /// (`None` is returned). Passing the captured state back as `resume`
    /// continues from that exact iteration: the iterations are
    /// deterministic given π/A/B, so the resumed model is bit-identical
    /// to an uninterrupted run. A resume state whose `iteration` already
    /// equals `params.iterations` returns the finished model immediately.
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs as [`Hmm::train`], or if
    /// `resume` disagrees with `params`/`symbols` on dimensions or holds
    /// more iterations than `params.iterations`.
    #[allow(clippy::needless_range_loop)] // Baum-Welch index arithmetic reads best indexed
    pub fn train_resumable(
        sequences: &[Vec<usize>],
        symbols: usize,
        params: &HmmParams,
        resume: Option<HmmState>,
        checkpoint: &mut dyn FnMut(&HmmState) -> bool,
    ) -> Option<Hmm> {
        assert!(symbols > 0, "need at least one observation symbol");
        assert!(params.states > 0, "need at least one hidden state");
        let sequences: Vec<&Vec<usize>> = sequences.iter().filter(|s| !s.is_empty()).collect();
        assert!(!sequences.is_empty(), "need at least one non-empty sequence");
        for seq in &sequences {
            for &o in seq.iter() {
                assert!(o < symbols, "symbol {o} out of range (< {symbols})");
            }
        }

        let n = params.states;
        let (mut model, rng_state, start_iteration) = match resume {
            Some(state) => {
                assert_eq!(state.states, n, "resume state count mismatch");
                assert_eq!(state.symbols, symbols, "resume symbol count mismatch");
                assert!(
                    state.iteration <= params.iterations,
                    "resume state has {} iterations, params only {}",
                    state.iteration,
                    params.iterations
                );
                // Validates the stored state is a reachable generator.
                let _ = SimRng::from_state(state.rng);
                (
                    Hmm::from_parts(n, symbols, state.pi, state.a, state.b),
                    state.rng,
                    state.iteration,
                )
            }
            None => {
                let mut rng = SimRng::new(params.seed);
                let mut model = Hmm {
                    states: n,
                    symbols,
                    pi: random_stochastic(&mut rng, 1, n).remove(0),
                    a: random_stochastic(&mut rng, n, n).concat(),
                    b: random_stochastic(&mut rng, n, symbols).concat(),
                };
                if !sequences.iter().any(|s| s.len() >= 2) {
                    // No transition is ever observed: fall back to uniform A
                    // (see the method docs) instead of returning the random
                    // init.
                    model.a = vec![1.0 / n as f64; n * n];
                }
                (model, rng.state(), 0)
            }
        };

        for iteration in start_iteration..params.iterations {
            leaps_obs::counter!("train.bw.iters").inc();
            // E-step: independent per sequence, fanned across threads;
            // reduced below in sequence order for bit-identical results
            // at any thread count.
            let locals = leaps_par::par_map(&sequences, |seq| model.sequence_stats(seq));
            let mut acc = SeqStats {
                pi: vec![0.0; n],
                a_num: vec![0.0; n * n],
                a_den: vec![0.0; n],
                b_num: vec![0.0; n * symbols],
                b_den: vec![0.0; n],
            };
            for local in &locals {
                acc.merge(local);
            }

            // M-step: re-estimate with flooring + renormalization.
            let total_pi: f64 = acc.pi.iter().sum();
            if total_pi > 0.0 {
                for i in 0..n {
                    model.pi[i] = acc.pi[i] / total_pi;
                }
            }
            for i in 0..n {
                if acc.a_den[i] > 0.0 {
                    for j in 0..n {
                        model.a[i * n + j] = acc.a_num[i * n + j] / acc.a_den[i];
                    }
                }
                if acc.b_den[i] > 0.0 {
                    for m in 0..symbols {
                        model.b[i * symbols + m] = acc.b_num[i * symbols + m] / acc.b_den[i];
                    }
                }
            }
            model.apply_floor(params.floor);

            // Iteration boundary: offer the re-estimated parameters as a
            // checkpoint (the final iteration included, so a deadline hit
            // at the very end still leaves a complete state on disk).
            let state = HmmState {
                iteration: iteration + 1,
                states: n,
                symbols,
                pi: model.pi.clone(),
                a: model.a.clone(),
                b: model.b.clone(),
                rng: rng_state,
            };
            if !checkpoint(&state) {
                return None;
            }
        }
        Some(model)
    }

    /// One sequence's Baum–Welch E-step against the current model:
    /// scaled forward/backward passes plus the gamma/xi accumulation,
    /// into accumulators local to this sequence. Pure (reads the model,
    /// writes nothing shared), so invocations for different sequences
    /// run concurrently without changing any result.
    #[allow(clippy::needless_range_loop)] // Baum-Welch index arithmetic reads best indexed
    fn sequence_stats(&self, seq: &[usize]) -> SeqStats {
        let n = self.states;
        let symbols = self.symbols;
        let mut stats = SeqStats {
            pi: vec![0.0; n],
            a_num: vec![0.0; n * n],
            a_den: vec![0.0; n],
            b_num: vec![0.0; n * symbols],
            b_den: vec![0.0; n],
        };
        let t_len = seq.len();
        let (alpha, scales) = self.forward_scaled(seq);
        let beta = self.backward_scaled(seq, &scales);

        // gamma_t(i) ∝ alpha_t(i) * beta_t(i) (already normalized per t
        // thanks to the common scaling).
        for t in 0..t_len {
            let mut norm = 0.0;
            for i in 0..n {
                norm += alpha[t * n + i] * beta[t * n + i];
            }
            if norm <= 0.0 {
                continue;
            }
            for i in 0..n {
                let g = alpha[t * n + i] * beta[t * n + i] / norm;
                if t == 0 {
                    stats.pi[i] += g;
                }
                stats.b_num[i * symbols + seq[t]] += g;
                stats.b_den[i] += g;
                if t + 1 < t_len {
                    stats.a_den[i] += g;
                }
            }
        }
        // xi_t(i,j) ∝ alpha_t(i) a_ij b_j(o_{t+1}) beta_{t+1}(j).
        let mut xi = vec![0.0; n * n];
        for t in 0..t_len.saturating_sub(1) {
            let mut norm = 0.0;
            for i in 0..n {
                for j in 0..n {
                    let v = alpha[t * n + i]
                        * self.a[i * n + j]
                        * self.b[j * symbols + seq[t + 1]]
                        * beta[(t + 1) * n + j];
                    xi[i * n + j] = v;
                    norm += v;
                }
            }
            if norm <= 0.0 {
                continue;
            }
            for i in 0..n {
                for j in 0..n {
                    stats.a_num[i * n + j] += xi[i * n + j] / norm;
                }
            }
        }
        stats
    }

    fn apply_floor(&mut self, floor: f64) {
        floor_renormalize(&mut self.pi, floor);
        for i in 0..self.states {
            floor_renormalize(&mut self.a[i * self.states..(i + 1) * self.states], floor);
            floor_renormalize(&mut self.b[i * self.symbols..(i + 1) * self.symbols], floor);
        }
    }

    /// Scaled forward pass; returns (alpha, per-step scale factors).
    #[allow(clippy::needless_range_loop)] // flat-matrix index arithmetic
    fn forward_scaled(&self, seq: &[usize]) -> (Vec<f64>, Vec<f64>) {
        let n = self.states;
        let mut alpha = vec![0.0; seq.len() * n];
        let mut scales = vec![0.0; seq.len()];
        for i in 0..n {
            alpha[i] = self.pi[i] * self.b[i * self.symbols + seq[0]];
        }
        scales[0] = normalize_slice(&mut alpha[0..n]);
        for t in 1..seq.len() {
            for j in 0..n {
                let mut sum = 0.0;
                for i in 0..n {
                    sum += alpha[(t - 1) * n + i] * self.a[i * n + j];
                }
                alpha[t * n + j] = sum * self.b[j * self.symbols + seq[t]];
            }
            scales[t] = normalize_slice(&mut alpha[t * n..(t + 1) * n]);
        }
        (alpha, scales)
    }

    /// Scaled backward pass using the forward scales.
    fn backward_scaled(&self, seq: &[usize], scales: &[f64]) -> Vec<f64> {
        let n = self.states;
        let t_len = seq.len();
        let mut beta = vec![0.0; t_len * n];
        for i in 0..n {
            beta[(t_len - 1) * n + i] = 1.0;
        }
        for t in (0..t_len - 1).rev() {
            for i in 0..n {
                let mut sum = 0.0;
                for j in 0..n {
                    sum += self.a[i * n + j]
                        * self.b[j * self.symbols + seq[t + 1]]
                        * beta[(t + 1) * n + j];
                }
                beta[t * n + i] = if scales[t + 1] > 0.0 { sum / scales[t + 1] } else { 0.0 };
            }
        }
        beta
    }

    /// Log-likelihood `ln P(seq | model)`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is empty or contains an out-of-range symbol.
    #[must_use]
    pub fn log_likelihood(&self, seq: &[usize]) -> f64 {
        assert!(!seq.is_empty(), "cannot score an empty sequence");
        for &o in seq {
            assert!(o < self.symbols, "symbol {o} out of range");
        }
        let (_, scales) = self.forward_scaled(seq);
        scales.iter().map(|&s| if s > 0.0 { s.ln() } else { f64::NEG_INFINITY }).sum()
    }

    /// Reassembles a model from persisted parts (row-stochastic π, A, B).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    #[must_use]
    pub fn from_parts(
        states: usize,
        symbols: usize,
        pi: Vec<f64>,
        a: Vec<f64>,
        b: Vec<f64>,
    ) -> Hmm {
        assert_eq!(pi.len(), states, "pi length mismatch");
        assert_eq!(a.len(), states * states, "A length mismatch");
        assert_eq!(b.len(), states * symbols, "B length mismatch");
        Hmm { states, symbols, pi, a, b }
    }

    /// The persisted parts: `(pi, A, B)` flat row-major matrices.
    #[must_use]
    pub fn parts(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.pi, &self.a, &self.b)
    }

    /// Number of hidden states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states
    }

    /// Number of observation symbols.
    #[must_use]
    pub fn symbol_count(&self) -> usize {
        self.symbols
    }
}

/// Normalizes a slice to sum 1, returning the original sum (the scale).
fn normalize_slice(xs: &mut [f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
    sum
}

fn floor_renormalize(xs: &mut [f64], floor: f64) {
    for x in xs.iter_mut() {
        if !x.is_finite() || *x < floor {
            *x = floor;
        }
    }
    let sum: f64 = xs.iter().sum();
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

fn random_stochastic(rng: &mut SimRng, rows: usize, cols: usize) -> Vec<Vec<f64>> {
    (0..rows)
        .map(|_| {
            let mut row: Vec<f64> = (0..cols).map(|_| 0.1 + rng.f64()).collect();
            let sum: f64 = row.iter().sum();
            for x in &mut row {
                *x /= sum;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alternating(len: usize) -> Vec<usize> {
        (0..len).map(|i| i % 2).collect()
    }

    fn constant(len: usize, sym: usize) -> Vec<usize> {
        vec![sym; len]
    }

    #[test]
    fn rows_remain_stochastic_after_training() {
        let seqs = vec![alternating(30), alternating(25)];
        let model = Hmm::train(&seqs, 3, &HmmParams::default());
        let n = model.state_count();
        assert!((model.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for i in 0..n {
            let a_row: f64 = model.a[i * n..(i + 1) * n].iter().sum();
            assert!((a_row - 1.0).abs() < 1e-9, "A row {i} sums to {a_row}");
            let b_row: f64 = model.b[i * 3..(i + 1) * 3].iter().sum();
            assert!((b_row - 1.0).abs() < 1e-9, "B row {i} sums to {b_row}");
        }
    }

    #[test]
    fn model_prefers_its_training_distribution() {
        let model = Hmm::train(&[alternating(60)], 2, &HmmParams::default());
        let in_dist = model.log_likelihood(&alternating(20));
        let out_dist = model.log_likelihood(&constant(20, 0));
        assert!(in_dist > out_dist, "{in_dist} vs {out_dist}");
    }

    #[test]
    fn two_models_separate_two_languages() {
        let params = HmmParams::default();
        let a = Hmm::train(&[alternating(80)], 3, &params);
        let b = Hmm::train(&[constant(80, 2)], 3, &params);
        let probe_alt = alternating(15);
        let probe_const = constant(15, 2);
        assert!(a.log_likelihood(&probe_alt) > b.log_likelihood(&probe_alt));
        assert!(b.log_likelihood(&probe_const) > a.log_likelihood(&probe_const));
    }

    #[test]
    fn likelihood_is_a_log_probability() {
        let model = Hmm::train(&[alternating(40)], 2, &HmmParams::default());
        // ln P ≤ 0 for any sequence.
        assert!(model.log_likelihood(&alternating(10)) <= 0.0);
        assert!(model.log_likelihood(&constant(10, 1)) <= 0.0);
    }

    #[test]
    fn unseen_symbols_are_floored_not_impossible() {
        // Train on symbols {0,1} of a 3-symbol alphabet; symbol 2 unseen.
        let model = Hmm::train(&[alternating(40)], 3, &HmmParams::default());
        let ll = model.log_likelihood(&constant(5, 2));
        assert!(ll.is_finite(), "unseen symbol must not be -inf");
    }

    #[test]
    fn training_is_deterministic() {
        let seqs = vec![alternating(30)];
        let a = Hmm::train(&seqs, 2, &HmmParams::default());
        let b = Hmm::train(&seqs, 2, &HmmParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn longer_consistent_sequences_score_proportionally() {
        let model = Hmm::train(&[alternating(60)], 2, &HmmParams::default());
        let ll10 = model.log_likelihood(&alternating(10));
        let ll20 = model.log_likelihood(&alternating(20));
        // Roughly additive per symbol.
        assert!(ll20 < ll10);
        assert!((ll20 / 2.0 - ll10).abs() < 2.0);
    }

    #[test]
    fn length_one_sequences_get_uniform_transitions() {
        // Regression: with only length-1 sequences no transition is ever
        // observed (`a_den` stays 0), and `train` used to return the
        // *random initial* transition matrix silently. The documented
        // fallback is the uniform distribution — deterministic and
        // independent of the seed.
        let seqs = vec![vec![0], vec![1], vec![0], vec![1]];
        let m1 = Hmm::train(&seqs, 2, &HmmParams { seed: 1, ..HmmParams::default() });
        let m2 = Hmm::train(&seqs, 2, &HmmParams { seed: 99, ..HmmParams::default() });
        let n = m1.state_count();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (m1.a[i * n + j] - 1.0 / n as f64).abs() < 1e-12,
                    "A[{i},{j}] = {} is not uniform",
                    m1.a[i * n + j]
                );
            }
        }
        // The fallback does not depend on the random init.
        assert_eq!(m1.a, m2.a);
        // π and B are still trained: both symbols appear equally often,
        // and scoring still works.
        assert!((m1.pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(m1.log_likelihood(&[0]).is_finite());
    }

    #[test]
    fn mixed_length_one_and_longer_sequences_still_estimate_transitions() {
        // One length-1 sequence among real ones must not trigger the
        // uniform fallback: transitions come from the longer sequences.
        let seqs = vec![vec![0], alternating(40), vec![1]];
        let with_short = Hmm::train(&seqs, 2, &HmmParams::default());
        let uniform = 1.0 / with_short.state_count() as f64;
        let deviates = with_short.a.iter().any(|&x| (x - uniform).abs() > 1e-6);
        assert!(deviates, "A stayed uniform despite transition evidence: {:?}", with_short.a);
    }

    #[test]
    fn pause_and_resume_is_bit_identical() {
        let seqs = vec![alternating(30), constant(20, 1), alternating(25)];
        let params = HmmParams { iterations: 8, ..HmmParams::default() };
        let clean = Hmm::train(&seqs, 2, &params);
        for pause_at in 1..=params.iterations {
            let mut captured = None;
            let paused = Hmm::train_resumable(&seqs, 2, &params, None, &mut |state| {
                captured = Some(state.clone());
                state.iteration < pause_at
            });
            assert!(paused.is_none(), "should have paused at iteration {pause_at}");
            let resumed = Hmm::train_resumable(&seqs, 2, &params, captured, &mut |_| true)
                .expect("resumed training must complete");
            assert_eq!(resumed, clean, "resume after iteration {pause_at} diverged");
        }
    }

    #[test]
    fn full_resume_state_returns_immediately() {
        let seqs = vec![alternating(30)];
        let params = HmmParams::default();
        let mut last = None;
        let clean = Hmm::train_resumable(&seqs, 2, &params, None, &mut |s| {
            last = Some(s.clone());
            true
        })
        .unwrap();
        let state = last.unwrap();
        assert_eq!(state.iteration, params.iterations);
        let mut called = false;
        let resumed = Hmm::train_resumable(&seqs, 2, &params, Some(state), &mut |_| {
            called = true;
            true
        })
        .unwrap();
        assert!(!called, "a complete state must not re-run any iteration");
        assert_eq!(resumed, clean);
    }

    #[test]
    #[should_panic(expected = "resume state count mismatch")]
    fn resume_state_dimension_checked() {
        let seqs = vec![alternating(20)];
        let params = HmmParams::default();
        let mut captured = None;
        let _ = Hmm::train_resumable(&seqs, 2, &params, None, &mut |s| {
            captured = Some(s.clone());
            false
        });
        let bad_params = HmmParams { states: params.states + 1, ..params };
        let _ = Hmm::train_resumable(&seqs, 2, &bad_params, captured, &mut |_| true);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_symbol_rejected() {
        let model = Hmm::train(&[alternating(10)], 2, &HmmParams::default());
        let _ = model.log_likelihood(&[5]);
    }

    #[test]
    #[should_panic(expected = "non-empty sequence")]
    fn empty_training_rejected() {
        let _ = Hmm::train(&[vec![]], 2, &HmmParams::default());
    }
}
