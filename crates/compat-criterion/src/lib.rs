//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! a dependency-free bench harness with the `criterion` API surface its
//! benches use: [`Criterion::bench_function`], benchmark groups with
//! per-group sample sizes, [`Bencher::iter`] / [`Bencher::iter_batched`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs
//! `sample_size` timed samples after one warm-up, and reports the mean,
//! minimum and maximum wall time per iteration. There are no statistics
//! beyond that and no HTML reports — enough to compare hot paths
//! release-to-release without external dependencies.

use std::time::{Duration, Instant};

/// How batched inputs are sized; only a hint upstream, ignored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Bencher {
        Bencher { samples: Vec::with_capacity(sample_size), sample_size }
    }

    /// Runs `routine` for the configured number of timed samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let _ = std::hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let _ = std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Runs `routine` over fresh inputs from `setup`, timing only the
    /// routine.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{name:<44} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// The top-level bench driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

fn run_one(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher::with_sample_size(sample_size);
    f(&mut bencher);
    report(name, &bencher.samples);
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark under the group's prefix.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark under the group's prefix.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Declares a bench group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    criterion_group!(plain, quick);

    #[test]
    fn groups_run_their_targets() {
        configured();
        plain();
    }

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::with_sample_size(5);
        b.iter(|| std::hint::black_box(42));
        assert_eq!(b.samples.len(), 5);
        let mut batched = Bencher::with_sample_size(4);
        batched.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(batched.samples.len(), 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("solver", 128).to_string(), "solver/128");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(12)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(12)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains('s'));
    }
}
