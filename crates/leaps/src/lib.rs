//! # LEAPS
//!
//! A Rust reproduction of **"LEAPS: Detecting Camouflaged Attacks with
//! Statistical Learning Guided by Program Analysis"** (DSN 2015).
//!
//! LEAPS detects *camouflaged attacks* — malicious payloads running under
//! the cover of benign applications (trojaned binaries, process
//! injection) — by training a classifier over system-level stack-trace
//! features, while using a control-flow graph inferred from application
//! stack traces to down-weight the benign noise that contaminates the
//! "malicious" training log.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | paper section |
//! |---|---|---|
//! | [`etw`] | `leaps-etw` | simulated ETW substrate (Section IV) |
//! | [`trace`] | `leaps-trace` | raw log parser + stack partition (II-B) |
//! | [`cluster`] | `leaps-cluster` | data preprocessing (III-A) |
//! | [`cfg`] | `leaps-cfg` | CFG inference + weight assessment (III-B/C) |
//! | [`svm`] | `leaps-svm` | weighted SVM via SMO (III-D-2) |
//! | [`hmm`] | `leaps-hmm` | HMM sequence classifier (VI-B extension) |
//! | [`cgraph`] | `leaps-cgraph` | call-graph baseline (III-D-1) |
//! | [`core`] | `leaps-core` | pipeline, datasets, metrics (II, V) |
//! | [`faults`] | `leaps-faults` | deterministic telemetry fault injection |
//! | [`obs`] | `leaps-obs` | workspace metrics & stage-tracing registry |
//! | [`serve`] | `leaps-serve` | multi-session streaming detection service |
//!
//! # Quickstart
//!
//! ```no_run
//! use leaps::core::experiment::Experiment;
//! use leaps::core::pipeline::Method;
//! use leaps::etw::scenario::Scenario;
//!
//! // Detect a reverse-TCP shell trojaned into Vim.
//! let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
//! let metrics = Experiment::fast().run(scenario, Method::Wsvm)?;
//! println!("WSVM on {}: {metrics}", scenario.name());
//! # Ok::<(), leaps::core::error::LeapsError>(())
//! ```

pub use leaps_cfg as cfg;
pub use leaps_cgraph as cgraph;
pub use leaps_cluster as cluster;
pub use leaps_core as core;
pub use leaps_etw as etw;
pub use leaps_faults as faults;
pub use leaps_hmm as hmm;
pub use leaps_obs as obs;
pub use leaps_serve as serve;
pub use leaps_svm as svm;
pub use leaps_trace as trace;

// Convenience re-exports of the most-used types.
pub use leaps_core::{Classifier, Experiment, Method, Metrics, PipelineConfig};
pub use leaps_etw::scenario::{GenParams, Scenario};
