//! Deterministic, seeded fault injection for raw LEAPS event logs.
//!
//! Production ETW stack-walk logging is lossy: events are dropped under
//! load, stack walks are truncated, records are duplicated by retry
//! paths, buffers are flushed out of order, and files are cut short by
//! crashes. This crate mutates a raw textual log (the `leaps_etw::logfmt`
//! format) with those fault classes so that every downstream layer —
//! parser, stream detector, training pipeline — can be exercised and
//! benchmarked under degraded telemetry.
//!
//! Injection is **pure and reproducible**: the same `(raw, plan, seed)`
//! triple always yields the same faulted log and the same
//! [`InjectStats`].
//!
//! ```
//! use leaps_faults::{inject, FaultClass, FaultPlan};
//!
//! let raw = "# LEAPS-ETL v1\n\
//!            EVENT num=1 type=FileRead pid=1 tid=2 ts=3\n\
//!            END\n\
//!            EVENT num=2 type=FileRead pid=1 tid=2 ts=4\n\
//!            END\n";
//! let plan = FaultPlan::only(FaultClass::DropEvent, 1.0);
//! let (faulted, stats) = inject(raw, &plan, 7);
//! assert_eq!(stats.dropped, 2);
//! assert!(!faulted.contains("EVENT"));
//! ```

pub mod inject;
pub mod plan;

pub use inject::{inject, InjectStats};
pub use plan::{FaultClass, FaultPlan};
