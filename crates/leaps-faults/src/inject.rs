//! The injector: applies a [`FaultPlan`] to a raw log, reproducibly.

use crate::plan::FaultPlan;
use leaps_etw::rng::SimRng;

/// Counts of faults actually applied by one [`inject`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectStats {
    /// Records found in the input log.
    pub records_in: usize,
    /// Records present in the faulted output (after drops/duplications,
    /// including corrupted and truncated ones).
    pub records_out: usize,
    /// Records removed by [`FaultClass::DropEvent`].
    pub dropped: usize,
    /// Records whose stack walk lost frames.
    pub stack_truncated: usize,
    /// Total `STACK` lines removed by stack truncation.
    pub frames_removed: usize,
    /// Extra copies emitted by [`FaultClass::DuplicateEvent`].
    pub duplicated: usize,
    /// Records displaced by [`FaultClass::Reorder`].
    pub reordered: usize,
    /// Records whose header was corrupted.
    pub corrupted: usize,
    /// Lines cut from the end by [`FaultClass::TruncateTail`]
    /// (0 when the tail was left intact).
    pub tail_truncated_lines: usize,
}

impl InjectStats {
    /// Total number of individual faults applied.
    #[must_use]
    pub fn total_faults(&self) -> usize {
        self.dropped
            + self.stack_truncated
            + self.duplicated
            + self.reordered
            + self.corrupted
            + usize::from(self.tail_truncated_lines > 0)
    }
}

/// One contiguous piece of the log: an `EVENT..END` record or a verbatim
/// non-record line (header, comment, blank, stray).
enum Segment {
    Record(Vec<String>),
    Raw(String),
}

/// Splits the log into records and pass-through lines. A record starts at
/// an `EVENT` line and ends at the next `END` (inclusive); an `EVENT`
/// line inside an open record starts a new record (the open one stays
/// unterminated, as found).
fn segment(raw: &str) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut open: Option<Vec<String>> = None;
    for line in raw.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("EVENT ") || trimmed == "EVENT" {
            if let Some(rec) = open.take() {
                segments.push(Segment::Record(rec));
            }
            open = Some(vec![line.to_owned()]);
        } else if let Some(rec) = open.as_mut() {
            rec.push(line.to_owned());
            if trimmed == "END" {
                segments.push(Segment::Record(open.take().expect("open record")));
            }
        } else {
            segments.push(Segment::Raw(line.to_owned()));
        }
    }
    if let Some(rec) = open {
        segments.push(Segment::Record(rec));
    }
    segments
}

/// Mangles one record's `EVENT` header line, choosing among four torn-write
/// shapes: garbage value, missing field, malformed token, mangled keyword.
fn corrupt_header(header: &mut String, rng: &mut SimRng) {
    let tokens: Vec<&str> = header.split_whitespace().collect();
    // tokens[0] is "EVENT"; the rest are key=value fields.
    let n_fields = tokens.len().saturating_sub(1);
    let mutation = if n_fields == 0 { 3 } else { rng.below(4) };
    match mutation {
        0 => {
            // Replace a field's value with a non-numeric sentinel.
            let target = 1 + rng.below(n_fields);
            let mangled: Vec<String> = tokens
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if i == target {
                        match t.split_once('=') {
                            Some((k, _)) => format!("{k}=<torn>"),
                            None => "<torn>".to_owned(),
                        }
                    } else {
                        (*t).to_owned()
                    }
                })
                .collect();
            *header = mangled.join(" ");
        }
        1 => {
            // Drop a field entirely.
            let target = 1 + rng.below(n_fields);
            let kept: Vec<&str> =
                tokens.iter().enumerate().filter(|(i, _)| *i != target).map(|(_, t)| *t).collect();
            *header = kept.join(" ");
        }
        2 => {
            // Break a token's key=value shape.
            let target = 1 + rng.below(n_fields);
            let mangled: Vec<String> = tokens
                .iter()
                .enumerate()
                .map(|(i, t)| if i == target { t.replace('=', "~") } else { (*t).to_owned() })
                .collect();
            *header = mangled.join(" ");
        }
        _ => {
            // Mangle the keyword so the line is unrecognizable.
            *header = header.replacen("EVENT", "EV#NT", 1);
        }
    }
}

/// Removes a random non-empty suffix of the record's `STACK` lines (the
/// on-disk order is innermost-first, so a suffix is the outermost frames —
/// exactly what a depth-limited stack walker loses). Returns the number of
/// frames removed.
fn truncate_stack(record: &mut Vec<String>, rng: &mut SimRng) -> usize {
    let stack_idx: Vec<usize> = record
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim().starts_with("STACK "))
        .map(|(i, _)| i)
        .collect();
    if stack_idx.is_empty() {
        return 0;
    }
    let cut = rng.range(1, stack_idx.len());
    let doomed: Vec<usize> = stack_idx[stack_idx.len() - cut..].to_vec();
    for &i in doomed.iter().rev() {
        record.remove(i);
    }
    cut
}

/// Applies `plan` to `raw`, returning the faulted log and what was done.
///
/// Deterministic: the same `(raw, plan, seed)` always produces the same
/// output. Fault decisions are drawn per record in log order (drop,
/// corrupt, stack-truncate, duplicate), then a reorder pass displaces
/// surviving records within the jitter window, then the tail may be cut
/// mid-record.
#[must_use]
pub fn inject(raw: &str, plan: &FaultPlan, seed: u64) -> (String, InjectStats) {
    let mut stats = InjectStats::default();
    let mut rng = SimRng::new(seed ^ 0xfa17_1e55_0bad_f00d);

    // Per-record mutations, preserving non-record lines in place.
    let mut out: Vec<Segment> = Vec::new();
    for seg in segment(raw) {
        let Segment::Record(mut rec) = seg else {
            out.push(seg);
            continue;
        };
        stats.records_in += 1;
        if rng.chance(plan.drop_event) {
            stats.dropped += 1;
            continue;
        }
        if rng.chance(plan.corrupt_header) {
            corrupt_header(&mut rec[0], &mut rng);
            stats.corrupted += 1;
        }
        if rng.chance(plan.truncate_stack) {
            let removed = truncate_stack(&mut rec, &mut rng);
            if removed > 0 {
                stats.stack_truncated += 1;
                stats.frames_removed += removed;
            }
        }
        if rng.chance(plan.duplicate_event) {
            stats.duplicated += 1;
            out.push(Segment::Record(rec.clone()));
        }
        out.push(Segment::Record(rec));
    }

    // Reorder pass: displace records forward within the jitter window.
    if plan.reorder > 0.0 && plan.reorder_jitter > 0 {
        let record_slots: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Segment::Record(_)))
            .map(|(i, _)| i)
            .collect();
        for slot in 0..record_slots.len() {
            if !rng.chance(plan.reorder) {
                continue;
            }
            let jump = 1 + rng.below(plan.reorder_jitter);
            let target = (slot + jump).min(record_slots.len().saturating_sub(1));
            if target != slot {
                out.swap(record_slots[slot], record_slots[target]);
                stats.reordered += 1;
            }
        }
    }

    // Tail truncation: cut the last record mid-way and drop what follows.
    if rng.chance(plan.truncate_tail) {
        if let Some(last_rec) = out.iter().rposition(|s| matches!(s, Segment::Record(_))) {
            let tail_lines: usize = out[last_rec + 1..].iter().map(segment_lines).sum();
            let Segment::Record(rec) = &mut out[last_rec] else { unreachable!() };
            // Keep at least the EVENT line, never the END line.
            let keep = rng.range(1, rec.len().saturating_sub(1).max(1));
            let cut = rec.len() - keep;
            rec.truncate(keep);
            out.truncate(last_rec + 1);
            stats.tail_truncated_lines = cut + tail_lines;
        }
    }

    stats.records_out = out.iter().filter(|s| matches!(s, Segment::Record(_))).count();

    let mut text = String::with_capacity(raw.len());
    for seg in &out {
        match seg {
            Segment::Record(rec) => {
                for line in rec {
                    text.push_str(line);
                    text.push('\n');
                }
            }
            Segment::Raw(line) => {
                text.push_str(line);
                text.push('\n');
            }
        }
    }
    (text, stats)
}

fn segment_lines(seg: &Segment) -> usize {
    match seg {
        Segment::Record(rec) => rec.len(),
        Segment::Raw(_) => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultClass;
    use leaps_etw::logfmt::write_log;
    use leaps_etw::scenario::{GenParams, Scenario};

    fn sample_raw() -> String {
        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 9);
        write_log(&logs.mixed)
    }

    #[test]
    fn clean_plan_is_identity() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::none(), 1);
        assert_eq!(out, raw);
        assert_eq!(stats.total_faults(), 0);
        assert_eq!(stats.records_in, stats.records_out);
    }

    #[test]
    fn injection_is_deterministic() {
        let raw = sample_raw();
        let plan = FaultPlan::uniform(0.3);
        let (a, sa) = inject(&raw, &plan, 42);
        let (b, sb) = inject(&raw, &plan, 42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = inject(&raw, &plan, 43);
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn drop_removes_records() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::only(FaultClass::DropEvent, 0.5), 5);
        assert!(stats.dropped > 0);
        assert_eq!(stats.records_out, stats.records_in - stats.dropped);
        let events = out.lines().filter(|l| l.starts_with("EVENT ")).count();
        assert_eq!(events, stats.records_out);
    }

    #[test]
    fn duplicate_adds_records() {
        let raw = sample_raw();
        let (_, stats) = inject(&raw, &FaultPlan::only(FaultClass::DuplicateEvent, 0.5), 5);
        assert!(stats.duplicated > 0);
        assert_eq!(stats.records_out, stats.records_in + stats.duplicated);
    }

    #[test]
    fn stack_truncation_removes_frames_only() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::only(FaultClass::TruncateStack, 0.5), 5);
        assert!(stats.stack_truncated > 0);
        assert!(stats.frames_removed >= stats.stack_truncated);
        assert_eq!(stats.records_out, stats.records_in);
        let in_stacks = raw.lines().filter(|l| l.trim().starts_with("STACK")).count();
        let out_stacks = out.lines().filter(|l| l.trim().starts_with("STACK")).count();
        assert_eq!(in_stacks - out_stacks, stats.frames_removed);
    }

    #[test]
    fn reorder_permutes_but_preserves_records() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::only(FaultClass::Reorder, 0.5), 5);
        assert!(stats.reordered > 0);
        assert_eq!(stats.records_out, stats.records_in);
        // Same multiset of EVENT lines, different order.
        let mut in_events: Vec<&str> = raw.lines().filter(|l| l.starts_with("EVENT ")).collect();
        let mut out_events: Vec<&str> = out.lines().filter(|l| l.starts_with("EVENT ")).collect();
        assert_ne!(in_events, out_events);
        in_events.sort_unstable();
        out_events.sort_unstable();
        assert_eq!(in_events, out_events);
    }

    #[test]
    fn corrupt_header_touches_event_lines() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::only(FaultClass::CorruptHeader, 0.4), 5);
        assert!(stats.corrupted > 0);
        let torn = out
            .lines()
            .filter(|l| l.contains("<torn>") || l.contains('~') || l.starts_with("EV#NT"))
            .count();
        assert!(torn > 0, "some corruption shape must be visible");
        // STACK/END bodies are untouched by this class.
        assert_eq!(stats.frames_removed, 0);
    }

    #[test]
    fn tail_truncation_cuts_mid_record() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::only(FaultClass::TruncateTail, 1.0), 5);
        assert!(stats.tail_truncated_lines > 0);
        assert!(!out.trim_end().ends_with("END"), "tail must end inside a record");
    }

    #[test]
    fn empty_and_headerless_inputs_survive() {
        for raw in ["", "# LEAPS-ETL v1\n", "garbage\nlines\n"] {
            let (_, stats) = inject(raw, &FaultPlan::uniform(0.9), 3);
            assert_eq!(stats.records_in, 0);
        }
    }

    #[test]
    fn full_rate_uniform_plan_is_survivable() {
        let raw = sample_raw();
        let (out, stats) = inject(&raw, &FaultPlan::uniform(1.0), 11);
        // Everything dropped: drop fires first at rate 1.0.
        assert_eq!(stats.dropped, stats.records_in);
        assert_eq!(stats.records_out, 0);
        assert!(out.starts_with("# LEAPS-ETL v1"));
    }
}
