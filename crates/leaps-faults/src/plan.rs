//! Fault classes and per-class rate plans.

/// The classes of telemetry degradation the injector can apply.
///
/// Each class models a failure mode observed in production ETW stack-walk
/// logging (see DESIGN.md "Fault model").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A whole event record is lost (ring-buffer overwrite, drop under
    /// load).
    DropEvent,
    /// The trailing (outermost) stack frames of a record are lost — the
    /// stack walker hit its depth/time budget.
    TruncateStack,
    /// A record is delivered twice (flush/retry duplication).
    DuplicateEvent,
    /// A record arrives displaced from its logical position within a
    /// small jitter window (per-CPU buffer flush reordering).
    Reorder,
    /// A header field of a record is corrupted (torn write): a mangled
    /// value, a missing field, a malformed token or an unrecognizable
    /// keyword.
    CorruptHeader,
    /// The log ends mid-record (crash while flushing the tail).
    TruncateTail,
}

impl FaultClass {
    /// Every fault class, in a stable order.
    pub const ALL: [FaultClass; 6] = [
        FaultClass::DropEvent,
        FaultClass::TruncateStack,
        FaultClass::DuplicateEvent,
        FaultClass::Reorder,
        FaultClass::CorruptHeader,
        FaultClass::TruncateTail,
    ];

    /// Stable snake_case label (used in benchmark output and CLI knobs).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::DropEvent => "drop_event",
            FaultClass::TruncateStack => "truncate_stack",
            FaultClass::DuplicateEvent => "duplicate_event",
            FaultClass::Reorder => "reorder",
            FaultClass::CorruptHeader => "corrupt_header",
            FaultClass::TruncateTail => "truncate_tail",
        }
    }

    /// Parses a [`FaultClass::label`] back into the class.
    #[must_use]
    pub fn from_label(label: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// Per-class fault rates, each in `[0, 1]`.
///
/// A rate is the per-record probability of applying that class
/// (`TruncateTail` is a single Bernoulli trial for the whole log, since a
/// log has exactly one tail).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability of losing each record.
    pub drop_event: f64,
    /// Probability of truncating each record's stack walk.
    pub truncate_stack: f64,
    /// Probability of duplicating each record.
    pub duplicate_event: f64,
    /// Probability of displacing each record forward.
    pub reorder: f64,
    /// Probability of corrupting each record's header.
    pub corrupt_header: f64,
    /// Probability that the log is cut mid-record at the end.
    pub truncate_tail: f64,
    /// Maximum forward displacement (in records) for `Reorder`.
    pub reorder_jitter: usize,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// No faults at all; injection is the identity.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan {
            drop_event: 0.0,
            truncate_stack: 0.0,
            duplicate_event: 0.0,
            reorder: 0.0,
            corrupt_header: 0.0,
            truncate_tail: 0.0,
            reorder_jitter: 4,
        }
    }

    /// Every class at the same `rate`.
    #[must_use]
    pub fn uniform(rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for class in FaultClass::ALL {
            plan.set(class, rate);
        }
        plan
    }

    /// A single class at `rate`, all others off.
    #[must_use]
    pub fn only(class: FaultClass, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.set(class, rate);
        plan
    }

    /// Sets one class's rate (clamped to `[0, 1]`; NaN becomes 0).
    pub fn set(&mut self, class: FaultClass, rate: f64) {
        let rate = if rate.is_nan() { 0.0 } else { rate.clamp(0.0, 1.0) };
        match class {
            FaultClass::DropEvent => self.drop_event = rate,
            FaultClass::TruncateStack => self.truncate_stack = rate,
            FaultClass::DuplicateEvent => self.duplicate_event = rate,
            FaultClass::Reorder => self.reorder = rate,
            FaultClass::CorruptHeader => self.corrupt_header = rate,
            FaultClass::TruncateTail => self.truncate_tail = rate,
        }
    }

    /// Reads one class's rate.
    #[must_use]
    pub fn rate(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::DropEvent => self.drop_event,
            FaultClass::TruncateStack => self.truncate_stack,
            FaultClass::DuplicateEvent => self.duplicate_event,
            FaultClass::Reorder => self.reorder,
            FaultClass::CorruptHeader => self.corrupt_header,
            FaultClass::TruncateTail => self.truncate_tail,
        }
    }

    /// `true` when every rate is zero.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        FaultClass::ALL.into_iter().all(|c| self.rate(c) == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for class in FaultClass::ALL {
            assert_eq!(FaultClass::from_label(class.label()), Some(class));
        }
        assert_eq!(FaultClass::from_label("nope"), None);
    }

    #[test]
    fn uniform_sets_every_class() {
        let plan = FaultPlan::uniform(0.25);
        for class in FaultClass::ALL {
            assert_eq!(plan.rate(class), 0.25);
        }
        assert!(!plan.is_clean());
        assert!(FaultPlan::none().is_clean());
    }

    #[test]
    fn only_sets_a_single_class() {
        let plan = FaultPlan::only(FaultClass::Reorder, 0.5);
        assert_eq!(plan.rate(FaultClass::Reorder), 0.5);
        for class in FaultClass::ALL {
            if class != FaultClass::Reorder {
                assert_eq!(plan.rate(class), 0.0);
            }
        }
    }

    #[test]
    fn rates_are_clamped_and_nan_safe() {
        let mut plan = FaultPlan::none();
        plan.set(FaultClass::DropEvent, 1.5);
        assert_eq!(plan.drop_event, 1.0);
        plan.set(FaultClass::DropEvent, -0.5);
        assert_eq!(plan.drop_event, 0.0);
        plan.set(FaultClass::DropEvent, f64::NAN);
        assert_eq!(plan.drop_event, 0.0);
    }
}
