//! # leaps-obs — the LEAPS observability substrate
//!
//! A dependency-free metrics layer shared by every crate in the
//! workspace that does real work: the training loops (SMO passes, CV
//! cells, Baum–Welch iterations), the checkpoint writer, the sweep
//! supervisor, the `leaps-par` worker pool and the `leaps-serve`
//! daemon. It exists because a self-healing train/serve stack cannot be
//! sharded, tuned or debugged without uniform answers to "where is time
//! going, what is being shed, how degraded are verdicts".
//!
//! Three metric kinds, all updated with **atomics only — no locks on
//! any record path**:
//!
//! * [`Counter`] — a monotonic `u64` (events scored, jobs run, panics);
//! * [`Gauge`] — a settable `i64` level (queue depth, cached bytes);
//! * [`Histogram`] — a fixed array of [`HIST_BUCKETS`] log-bucketed
//!   counts plus a sum, for latencies and sizes (bucket *i* holds
//!   values in `[2^(i-1), 2^i)`; bucket 0 holds zero; the last bucket
//!   absorbs overflow).
//!
//! The process-global [`registry()`] maps names to metrics. Handles are
//! cheap `Arc` clones; the [`counter!`]/[`gauge!`]/[`histogram!`]/
//! [`span!`] macros cache a handle per call site in a `static`, so a
//! hot loop pays one relaxed atomic load (the [`enabled`] check) plus
//! one `fetch_add` per record — and nothing at all when metrics are
//! disabled via [`set_enabled`] (how the serve benchmark prices the
//! overhead).
//!
//! [`Span`] is an RAII stage timer: created at stage entry, it records
//! the elapsed microseconds into a histogram on drop. Time comes from
//! [`now_micros`], which normally reads the process monotonic clock but
//! can be swapped for a deterministic [`TestClock`] in tests — metric
//! *counts* are bit-stable under `cargo test` regardless (they count
//! events, not time), and with the test clock installed the recorded
//! durations are bit-stable too.
//!
//! Snapshots ([`MetricsRegistry::snapshot`]) are sorted by name and
//! render to a stable one-metric-per-line text format (see
//! [`snapshot`]) — the body of the daemon's `METRICS` protocol command
//! and of the JSONL flusher's offline records.

pub mod snapshot;

pub use snapshot::{HistSnapshot, MetricValue, ObsError, Snapshot, Value};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Number of histogram buckets. Bucket 0 counts zero values; bucket
/// `i >= 1` counts values in `[2^(i-1), 2^i)`; the last bucket absorbs
/// everything at or above `2^(HIST_BUCKETS-2)` (~18 minutes in µs).
pub const HIST_BUCKETS: usize = 32;

/// The log-bucket index of `v` (see [`HIST_BUCKETS`]).
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `i`, for rendering quantiles: bucket 0
/// holds exactly 0, the last bucket is unbounded (`u64::MAX`).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

// ------------------------------------------------------------------ clock

static CLOCK_START: OnceLock<Instant> = OnceLock::new();
static TEST_MODE: AtomicBool = AtomicBool::new(false);
static TEST_NOW_US: AtomicU64 = AtomicU64::new(0);
static TEST_TICK_US: AtomicU64 = AtomicU64::new(0);
static TEST_CLOCK_LOCK: Mutex<()> = Mutex::new(());

/// Microseconds since an arbitrary process-local epoch (monotonic).
/// While a [`TestClock`] is installed, returns its deterministic
/// counter instead (advancing by the configured tick per read).
#[must_use]
pub fn now_micros() -> u64 {
    if TEST_MODE.load(Ordering::Relaxed) {
        TEST_NOW_US.fetch_add(TEST_TICK_US.load(Ordering::Relaxed), Ordering::Relaxed)
    } else {
        u64::try_from(CLOCK_START.get_or_init(Instant::now).elapsed().as_micros())
            .unwrap_or(u64::MAX)
    }
}

/// A deterministic clock for tests: while this guard lives,
/// [`now_micros`] starts at 0 and advances by `tick_us` on every read,
/// so span durations are bit-stable. Installation is serialized across
/// threads (the guard holds a process-wide lock), making tests that use
/// it safe under the parallel test runner.
pub struct TestClock {
    _guard: MutexGuard<'static, ()>,
}

impl TestClock {
    /// Installs the test clock; restored to the real clock on drop.
    #[must_use]
    pub fn install(tick_us: u64) -> TestClock {
        let guard = TEST_CLOCK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        TEST_NOW_US.store(0, Ordering::Relaxed);
        TEST_TICK_US.store(tick_us, Ordering::Relaxed);
        TEST_MODE.store(true, Ordering::Relaxed);
        TestClock { _guard: guard }
    }

    /// Advances the clock by `us` without a read.
    pub fn advance(&self, us: u64) {
        TEST_NOW_US.fetch_add(us, Ordering::Relaxed);
    }
}

impl Drop for TestClock {
    fn drop(&mut self) {
        TEST_MODE.store(false, Ordering::Relaxed);
    }
}

// ----------------------------------------------------------- global toggle

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric recording is enabled (default: yes). Disabling makes
/// every record path a single relaxed load — the baseline the serve
/// benchmark prices instrumentation against.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording. Registration and
/// snapshots still work while disabled; only updates are dropped.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ------------------------------------------------------------------ metrics

/// A monotonic counter handle. Clones share the same cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (a relaxed `fetch_add`; no locks).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable level handle. Clones share the same cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        if enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `d` (may be negative).
    pub fn add(&self, d: i64) {
        if enabled() {
            self.cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current level.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

struct HistCells {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl HistCells {
    fn new() -> HistCells {
        HistCells { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// A fixed log-bucketed histogram handle. Clones share the same cells.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// Records one value: two relaxed `fetch_add`s (bucket + sum).
    pub fn record(&self, v: u64) {
        if enabled() {
            self.cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.cells.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Snapshot of the bucket counts and sum.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> =
            self.cells.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistSnapshot {
            count: buckets.iter().sum(),
            sum: self.cells.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("snapshot", &self.snapshot()).finish()
    }
}

/// An RAII stage timer: records elapsed [`now_micros`] into a histogram
/// when dropped. When metrics are disabled at creation, the drop
/// records nothing (and the clock is never read).
pub struct Span {
    hist: Histogram,
    start: Option<u64>,
}

impl Span {
    /// Starts timing into `hist`.
    #[must_use]
    pub fn new(hist: &Histogram) -> Span {
        Span { hist: hist.clone(), start: enabled().then(now_micros) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(now_micros().saturating_sub(start));
        }
    }
}

// ----------------------------------------------------------------- registry

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Hist(Arc<HistCells>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Hist(_) => "hist",
        }
    }
}

/// A named collection of metrics. The process-global instance is
/// [`registry()`]; tests that assert exact values build their own.
///
/// Registration takes a short-lived lock; recording through the
/// returned handles never does.
#[derive(Default)]
pub struct MetricsRegistry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

fn assert_valid_name(name: &str) {
    assert!(
        !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')),
        "metric name {name:?} must be a non-empty [A-Za-z0-9_.-] token \
         (it travels on one-line wire formats)"
    );
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Slot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The counter named `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid metric token or already names a
    /// metric of a different kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        assert_valid_name(name);
        let mut slots = self.lock();
        let slot = slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(cell) => Counter { cell: Arc::clone(cell) },
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, registering it at zero on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind clash.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        assert_valid_name(name);
        let mut slots = self.lock();
        let slot = slots
            .entry(name.to_owned())
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))));
        match slot {
            Slot::Gauge(cell) => Gauge { cell: Arc::clone(cell) },
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, registering it empty on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or a kind clash.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        assert_valid_name(name);
        let mut slots = self.lock();
        let slot =
            slots.entry(name.to_owned()).or_insert_with(|| Slot::Hist(Arc::new(HistCells::new())));
        match slot {
            Slot::Hist(cells) => Histogram { cells: Arc::clone(cells) },
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A point-in-time snapshot of every metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.lock();
        let entries = slots
            .iter()
            .map(|(name, slot)| MetricValue {
                name: name.clone(),
                value: match slot {
                    Slot::Counter(cell) => Value::Counter(cell.load(Ordering::Relaxed)),
                    Slot::Gauge(cell) => Value::Gauge(cell.load(Ordering::Relaxed)),
                    Slot::Hist(cells) => {
                        Value::Hist(Histogram { cells: Arc::clone(cells) }.snapshot())
                    }
                },
            })
            .collect();
        Snapshot { entries }
    }

    /// Zeroes every counter and histogram **in place** (handles cached
    /// by call sites keep working). Gauges are levels, not
    /// accumulations, so they keep their current value.
    pub fn reset(&self) {
        let slots = self.lock();
        for slot in slots.values() {
            match slot {
                Slot::Counter(cell) => cell.store(0, Ordering::Relaxed),
                Slot::Gauge(_) => {}
                Slot::Hist(cells) => {
                    for bucket in &cells.buckets {
                        bucket.store(0, Ordering::Relaxed);
                    }
                    cells.sum.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no metrics are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").field("metrics", &self.len()).finish()
    }
}

/// The process-global registry every instrumented crate records into.
#[must_use]
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ------------------------------------------------------------------ macros

/// A global [`Counter`], cached per call site: `counter!("serve.events").inc()`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// A global [`Gauge`], cached per call site: `gauge!("pool.queue_depth").add(1)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// A global [`Histogram`], cached per call site: `histogram!("ckpt.bytes").record(n)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// An RAII stage timer into the global histogram `<name>.us`:
/// `let _span = span!("smo.pass");` records the stage's elapsed
/// microseconds when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        $crate::Span::new(
            HANDLE.get_or_init(|| $crate::registry().histogram(concat!($name, ".us"))),
        )
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 30) - 1), 30);
        assert_eq!(bucket_index(1 << 30), 31, "top of range lands in the overflow bucket");
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1, "max value lands in overflow");
        // Every value v lands in a bucket whose upper bound is >= v.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, 1 << 20, u64::MAX] {
            assert!(bucket_upper_bound(bucket_index(v)) >= v, "v={v}");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_records_zero_max_and_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.hist");
        h.record(0);
        h.record(u64::MAX);
        h.record(1 << 40); // deep in the overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[HIST_BUCKETS - 1], 2);
        assert_eq!(snap.sum, u64::MAX.wrapping_add(1 << 40), "sum wraps, counts never lost");
    }

    #[test]
    fn counters_and_gauges_share_cells_across_handles() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("t.count");
        let c2 = reg.counter("t.count");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.value(), 3);
        let g1 = reg.gauge("t.level");
        let g2 = reg.gauge("t.level");
        g1.set(5);
        g2.add(-2);
        assert_eq!(g1.value(), 3);
    }

    #[test]
    fn reset_zeroes_counters_and_hists_but_keeps_gauges_and_handles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.count");
        let g = reg.gauge("t.level");
        let h = reg.histogram("t.hist");
        c.add(7);
        g.set(9);
        h.record(100);
        reg.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 9, "gauges are levels; reset keeps them");
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().sum, 0);
        // Cached handles keep recording into the zeroed cells.
        c.inc();
        h.record(1);
        assert_eq!(c.value(), 1);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.count");
        set_enabled(false);
        c.inc();
        let span = Span::new(&reg.histogram("t.hist"));
        drop(span);
        set_enabled(true);
        assert_eq!(c.value(), 0);
        assert_eq!(reg.histogram("t.hist").snapshot().count, 0);
        c.inc();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn kind_clash_panics_with_a_clear_message() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("t.mixed");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.gauge("t.mixed")))
            .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("not a gauge"), "{msg}");
    }

    #[test]
    fn invalid_names_are_rejected() {
        let reg = MetricsRegistry::new();
        for bad in ["", "two words", "line\nbreak"] {
            assert!(
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| reg.counter(bad)))
                    .is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn test_clock_makes_span_durations_deterministic() {
        let clock = TestClock::install(10);
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.span");
        {
            let _span = Span::new(&h); // start: read 1 (t=0)
            clock.advance(90);
        } // end: read 2 (t=100) -> duration 100
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 100);
        assert_eq!(snap.buckets[bucket_index(100)], 1);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.gauge("a.first").set(-4);
        reg.histogram("m.mid").record(3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
        assert_eq!(snap.counter("z.last"), Some(1));
        assert_eq!(snap.gauge("a.first"), Some(-4));
        assert_eq!(snap.hist("m.mid").map(|h| h.count), Some(1));
    }
}
