//! The stable, line-oriented snapshot format.
//!
//! One metric per line, three shapes — the body of the daemon's
//! `METRICS` reply and of the JSONL flusher's records:
//!
//! ```text
//! serve.events counter 1204
//! serve.sessions gauge 3
//! proto.event.us hist count=1204 sum=48160 buckets=0,12,40,...
//! ```
//!
//! Rules that make the format stable: names are `[A-Za-z0-9_.-]`
//! tokens, fields are single-space separated, snapshots are sorted by
//! name, and a histogram always carries exactly [`HIST_BUCKETS`]
//! comma-separated bucket counts with `count` equal to their sum (the
//! parser enforces both, so damaged lines are caught rather than
//! silently misread).

use crate::{bucket_upper_bound, HIST_BUCKETS};

/// A parse failure, with the offending line quoted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsError {
    message: String,
}

impl ObsError {
    fn new(message: impl Into<String>) -> ObsError {
        ObsError { message: message.into() }
    }
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ObsError {}

/// A point-in-time value of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total number of recorded values (sum of `buckets`).
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Per-bucket counts; always [`HIST_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean of recorded values, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper-edge estimate of the `q`-quantile (`0.0..=1.0`): the
    /// inclusive upper bound of the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. Returns 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }
}

/// A point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotonic counter.
    Counter(u64),
    /// Settable level.
    Gauge(i64),
    /// Log-bucketed histogram.
    Hist(HistSnapshot),
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricValue {
    /// Metric name (a `[A-Za-z0-9_.-]` token).
    pub name: String,
    /// Its value at snapshot time.
    pub value: Value,
}

impl MetricValue {
    /// Renders the metric as one wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match &self.value {
            Value::Counter(v) => format!("{} counter {v}", self.name),
            Value::Gauge(v) => format!("{} gauge {v}", self.name),
            Value::Hist(h) => {
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                format!(
                    "{} hist count={} sum={} buckets={}",
                    self.name,
                    h.count,
                    h.sum,
                    buckets.join(",")
                )
            }
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError`] on an unknown kind, malformed fields, a
    /// wrong bucket count, or a `count` that disagrees with the bucket
    /// sum.
    pub fn parse_line(line: &str) -> Result<MetricValue, ObsError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let mut parts = line.split(' ');
        let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
            return Err(ObsError::new(format!("metric line too short: {line:?}")));
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
        {
            return Err(ObsError::new(format!("bad metric name in line: {line:?}")));
        }
        let name = name.to_owned();
        let value = match kind {
            "counter" => {
                let v = parse_scalar(parts.next(), line)?;
                Value::Counter(v)
            }
            "gauge" => {
                let raw = parts
                    .next()
                    .ok_or_else(|| ObsError::new(format!("gauge line missing value: {line:?}")))?;
                Value::Gauge(
                    raw.parse::<i64>()
                        .map_err(|_| ObsError::new(format!("bad gauge value in line: {line:?}")))?,
                )
            }
            "hist" => Value::Hist(parse_hist_fields(&mut parts, line)?),
            other => {
                return Err(ObsError::new(format!("unknown metric kind {other:?} in: {line:?}")))
            }
        };
        if parts.next().is_some() {
            return Err(ObsError::new(format!("trailing fields in metric line: {line:?}")));
        }
        Ok(MetricValue { name, value })
    }
}

fn parse_scalar(field: Option<&str>, line: &str) -> Result<u64, ObsError> {
    field
        .ok_or_else(|| ObsError::new(format!("counter line missing value: {line:?}")))?
        .parse::<u64>()
        .map_err(|_| ObsError::new(format!("bad counter value in line: {line:?}")))
}

fn parse_hist_fields<'a>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: &str,
) -> Result<HistSnapshot, ObsError> {
    let mut count = None;
    let mut sum = None;
    let mut buckets = None;
    for field in parts {
        let (key, raw) = field
            .split_once('=')
            .ok_or_else(|| ObsError::new(format!("bad hist field {field:?} in: {line:?}")))?;
        match key {
            "count" => {
                count =
                    Some(raw.parse::<u64>().map_err(|_| {
                        ObsError::new(format!("bad hist count {raw:?} in: {line:?}"))
                    })?);
            }
            "sum" => {
                sum =
                    Some(raw.parse::<u64>().map_err(|_| {
                        ObsError::new(format!("bad hist sum {raw:?} in: {line:?}"))
                    })?);
            }
            "buckets" => {
                let parsed: Result<Vec<u64>, _> = raw.split(',').map(str::parse::<u64>).collect();
                buckets = Some(parsed.map_err(|_| {
                    ObsError::new(format!("bad hist buckets {raw:?} in: {line:?}"))
                })?);
            }
            other => {
                return Err(ObsError::new(format!("unknown hist field {other:?} in: {line:?}")))
            }
        }
    }
    let (Some(count), Some(sum), Some(buckets)) = (count, sum, buckets) else {
        return Err(ObsError::new(format!("hist line missing count/sum/buckets: {line:?}")));
    };
    if buckets.len() != HIST_BUCKETS {
        return Err(ObsError::new(format!(
            "hist line has {} buckets, expected {HIST_BUCKETS}: {line:?}",
            buckets.len()
        )));
    }
    let bucket_total: u64 = buckets.iter().sum();
    if bucket_total != count {
        return Err(ObsError::new(format!(
            "hist count={count} disagrees with bucket sum {bucket_total}: {line:?}"
        )));
    }
    Ok(HistSnapshot { count, sum, buckets })
}

/// A sorted point-in-time view of a whole registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Metrics sorted by name.
    pub entries: Vec<MetricValue>,
}

impl Snapshot {
    /// Number of metrics in the snapshot.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.iter().find(|e| e.name == name).map(|e| &e.value)
    }

    /// The counter named `name`, if present with that kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(Value::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge named `name`, if present with that kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name) {
            Some(Value::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram named `name`, if present with that kind.
    #[must_use]
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        match self.get(name) {
            Some(Value::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// Renders every metric, one line each, each newline-terminated.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a block of metric lines (blank lines ignored).
    ///
    /// # Errors
    ///
    /// Returns the first line-level [`ObsError`].
    pub fn parse(text: &str) -> Result<Snapshot, ObsError> {
        let mut entries = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            entries.push(MetricValue::parse_line(line)?);
        }
        Ok(Snapshot { entries })
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{...},"gauges":{...},"hists":{"n":{"count":c,"sum":s,"buckets":[...]}}}`.
    /// Names are already-validated tokens, so no string escaping is
    /// needed; key order follows the sorted entries.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for entry in &self.entries {
            match &entry.value {
                Value::Counter(v) => counters.push(format!("\"{}\":{v}", entry.name)),
                Value::Gauge(v) => gauges.push(format!("\"{}\":{v}", entry.name)),
                Value::Hist(h) => {
                    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                    hists.push(format!(
                        "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        entry.name,
                        h.count,
                        h.sum,
                        buckets.join(",")
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"hists\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample() -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("serve.events").add(1204);
        reg.gauge("serve.sessions").set(-3);
        let h = reg.histogram("proto.event.us");
        h.record(0);
        h.record(40);
        h.record(u64::MAX);
        reg.snapshot()
    }

    #[test]
    fn lines_round_trip() {
        let snap = sample();
        for entry in &snap.entries {
            let line = entry.to_line();
            assert_eq!(&MetricValue::parse_line(&line).unwrap(), entry, "{line}");
        }
        let parsed = Snapshot::parse(&snap.encode()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn damaged_lines_are_rejected() {
        let hist_line =
            sample().entries.iter().find(|e| e.name == "proto.event.us").unwrap().to_line();
        let damaged = [
            "".to_owned(),
            "lonely".to_owned(),
            "x unknown 3".to_owned(),
            "x counter".to_owned(),
            "x counter -1".to_owned(),
            "x counter 1 extra".to_owned(),
            "x gauge nope".to_owned(),
            "bad name counter 1".to_owned(),
            "x hist count=1 sum=2".to_owned(), // missing buckets
            "x hist count=1 sum=2 buckets=1,2".to_owned(), // wrong bucket count
            hist_line.replace("count=3", "count=4"), // count/bucket mismatch
            hist_line.replace("sum=", "total="), // unknown field
        ];
        for line in &damaged {
            assert!(MetricValue::parse_line(line).is_err(), "{line:?} must be rejected");
        }
    }

    #[test]
    fn quantiles_use_bucket_upper_edges() {
        let mut h = HistSnapshot { count: 0, sum: 0, buckets: vec![0; HIST_BUCKETS] };
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 10 zeros + 10 values of ~1000 (bucket 10, upper edge 1023).
        h.buckets[0] = 10;
        h.buckets[10] = 10;
        h.count = 20;
        h.sum = 10_000;
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.51), 1023);
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.mean(), 500);
    }

    #[test]
    fn json_shape_is_stable() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"counters\":{"), "{json}");
        assert!(json.contains("\"serve.events\":1204"), "{json}");
        assert!(json.contains("\"serve.sessions\":-3"), "{json}");
        assert!(json.contains("\"proto.event.us\":{\"count\":3,"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
    }
}
