//! Per-session state: a bounded event queue feeding one
//! [`StreamDetector`], with load shedding, a verdict sink, and a drain
//! loop run on pool workers.
//!
//! # Ordering and determinism
//!
//! A session has at most **one** drain job scheduled at any time (the
//! `scheduled` flag below), so its events are scored strictly in
//! submission order and its verdict sequence is bit-identical to feeding
//! the same events through a standalone [`StreamDetector`]. Fairness
//! across sessions comes from draining in bounded batches: a flooding
//! session yields the worker back to its shard after each batch.
//!
//! # Backpressure and shedding
//!
//! The queue is bounded. When a submit finds it full, the **oldest**
//! queued event is shed (counted) and the new event queued — the
//! detector keeps seeing the freshest telemetry and the submitter gets a
//! `BUSY` outcome, while the accept path never blocks on a slow session.
//! Shedding manifests downstream as a sequence gap, so affected verdicts
//! carry the `degraded` flag like any other telemetry loss.

use crate::lock_unpoisoned;
use leaps_core::stream::{StreamDetector, StreamStats, Verdict};
use leaps_trace::partition::PartitionedEvent;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Sessions are keyed by `(client, pid)`: one monitored process of one
/// connected client.
pub type SessionKey = (String, u32);

/// Where a session's verdicts go, called by pool workers in verdict
/// order.
pub trait VerdictSink: Send + Sync {
    /// Delivers one verdict of session `pid`.
    fn deliver(&self, pid: u32, verdict: &Verdict);
}

/// A [`VerdictSink`] that buffers verdicts in memory — the in-process
/// deployment shape (tests, benchmarks, embedding).
#[derive(Debug, Default)]
pub struct BufferSink {
    verdicts: Mutex<Vec<Verdict>>,
}

impl BufferSink {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Takes every buffered verdict, leaving the buffer empty.
    #[must_use]
    pub fn take(&self) -> Vec<Verdict> {
        std::mem::take(&mut *lock_unpoisoned(&self.verdicts))
    }

    /// Number of buffered verdicts.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.verdicts).len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl VerdictSink for BufferSink {
    fn deliver(&self, _pid: u32, verdict: &Verdict) {
        lock_unpoisoned(&self.verdicts).push(verdict.clone());
    }
}

/// Outcome of submitting one event to a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// Queued; `queued` is the depth after this event.
    Accepted {
        /// Queue depth including this event.
        queued: usize,
    },
    /// The queue was full: the oldest queued event was shed to make room
    /// for this one.
    Busy {
        /// Total events this session has shed so far.
        shed: u64,
    },
}

/// Counters of one session, as reported by `STATS` and `CLOSE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionReport {
    /// Model the session was opened against.
    pub model: String,
    /// Events submitted (accepted + shed).
    pub submitted: u64,
    /// Events shed by backpressure.
    pub shed: u64,
    /// Verdicts delivered to the sink.
    pub verdicts: u64,
    /// Events currently queued (always 0 in a `CLOSE` report).
    pub queued: usize,
    /// The detector's telemetry-quality counters.
    pub stream: StreamStats,
}

pub(crate) struct QueueState {
    pub(crate) queue: VecDeque<PartitionedEvent>,
    pub(crate) scheduled: bool,
    pub(crate) closing: bool,
    pub(crate) shed: u64,
    pub(crate) submitted: u64,
    pub(crate) verdicts: u64,
    /// Last submit (or open) as an obs-clock timestamp (µs) — read by
    /// the idle reaper; on the obs clock so idle tests can freeze time.
    pub(crate) last_activity_us: u64,
}

/// One open session. Shared between the submitting connection thread and
/// the pool worker draining it.
pub struct Session {
    pub(crate) pid: u32,
    pub(crate) model: String,
    /// Stable shard key: pins the session's drain jobs to one pool
    /// worker queue.
    pub(crate) shard: usize,
    pub(crate) state: Mutex<QueueState>,
    /// Signalled by the drain loop when the queue runs dry.
    pub(crate) idle: Condvar,
    pub(crate) detector: Mutex<StreamDetector>,
    pub(crate) sink: Arc<dyn VerdictSink>,
}

/// Max events scored per drain batch before re-checking the queue —
/// bounds how long one flooding session can hold a worker.
pub(crate) const DRAIN_BATCH: usize = 256;

impl Session {
    pub(crate) fn new(
        pid: u32,
        model: String,
        shard: usize,
        detector: StreamDetector,
        sink: Arc<dyn VerdictSink>,
    ) -> Session {
        Session {
            pid,
            model,
            shard,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                scheduled: false,
                closing: false,
                shed: 0,
                submitted: 0,
                verdicts: 0,
                last_activity_us: leaps_obs::now_micros(),
            }),
            idle: Condvar::new(),
            detector: Mutex::new(detector),
            sink,
        }
    }

    /// Snapshot of the session's counters.
    pub(crate) fn report(&self) -> SessionReport {
        let state = lock_unpoisoned(&self.state);
        let stream = lock_unpoisoned(&self.detector).stats();
        SessionReport {
            model: self.model.clone(),
            submitted: state.submitted,
            shed: state.shed,
            verdicts: state.verdicts,
            queued: state.queue.len(),
            stream,
        }
    }
}

/// The drain loop run on a pool worker: repeatedly takes a bounded batch
/// off the queue, scores it, and delivers the verdicts — until the queue
/// is empty, at which point it clears `scheduled` and wakes closers.
///
/// Panic-safe: if scoring or a sink panics, a guard clears `scheduled`
/// and wakes closers on the way out, so the session never wedges with a
/// drain marked in flight that will never finish. The next submit (or a
/// waiting [`Server::close`](crate::Server::close)) reschedules the
/// drain for whatever is still queued.
pub(crate) fn drain(session: &Session) {
    /// Disarmed on the normal exit path (which clears `scheduled`
    /// itself, under the same lock that observed an empty queue).
    struct PanicGuard<'a>(&'a Session);
    impl Drop for PanicGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                lock_unpoisoned(&self.0.state).scheduled = false;
                self.0.idle.notify_all();
            }
        }
    }
    let _guard = PanicGuard(session);
    let mut batch: Vec<PartitionedEvent> = Vec::new();
    let mut verdicts: Vec<Verdict> = Vec::new();
    loop {
        {
            let mut state = lock_unpoisoned(&session.state);
            if state.queue.is_empty() {
                state.scheduled = false;
                session.idle.notify_all();
                return;
            }
            let take = state.queue.len().min(DRAIN_BATCH);
            batch.extend(state.queue.drain(..take));
        }
        // Score and deliver outside the queue lock: submits (and sheds)
        // proceed while the detector works or a slow sink blocks.
        let mut detector = lock_unpoisoned(&session.detector);
        verdicts.clear();
        detector.push_all_into(batch.drain(..), &mut verdicts);
        drop(detector);
        for verdict in &verdicts {
            session.sink.deliver(session.pid, verdict);
        }
        leaps_obs::counter!("serve.verdicts").add(verdicts.len() as u64);
        leaps_obs::counter!("serve.degraded")
            .add(verdicts.iter().filter(|v| v.degraded).count() as u64);
        lock_unpoisoned(&session.state).verdicts += verdicts.len() as u64;
    }
}
