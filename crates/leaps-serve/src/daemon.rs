//! The socket daemon: a line-protocol shell around [`Server`] over a
//! Unix domain socket or TCP.
//!
//! One thread accepts connections; each connection gets a handler
//! thread. Detection work never runs on either — events are queued into
//! the session table and scored by the server's worker pool, which
//! pushes `VERDICT` lines back through the connection's shared writer.
//! A flooding client therefore cannot stall the accept loop: its
//! session's queue sheds (answering `BUSY`) while every other
//! connection proceeds.
//!
//! Shutdown is protocol-driven (`SHUTDOWN`, the daemon's
//! SIGTERM-equivalent): the accept loop stops, connection threads are
//! joined, every remaining session is drained, and
//! [`BoundDaemon::run`] returns — the process exits 0.
//!
//! # Connection deadlines
//!
//! Every connection reads under a short [`CONN_POLL`] deadline rather
//! than blocking forever. Each timeout tick re-checks two conditions:
//! shutdown (so `SHUTDOWN` never hangs on an idle-but-connected client —
//! `run` joins every handler thread) and the server's idle TTL (a client
//! silent past it is told `ERR proto idle ...` and disconnected, its
//! sessions drained and closed). Partial lines survive deadline ticks:
//! bytes already read stay buffered until the newline arrives.

use crate::lock_unpoisoned;
use crate::proto::{error_family, Command, Reply, PROTOCOL_VERSION};
use crate::server::Server;
use crate::session::{SessionReport, VerdictSink};
use leaps_core::error::LeapsError;
use leaps_core::stream::Verdict;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Read deadline on daemon connections: the cadence at which an idle
/// handler thread re-checks shutdown and the idle TTL.
pub(crate) const CONN_POLL: Duration = Duration::from_millis(200);

/// Where a daemon listens (and a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address, `host:port`.
    Tcp(String),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One bidirectional protocol stream (either transport).
#[derive(Debug)]
pub enum Stream {
    /// Unix domain socket stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Sets the read deadline (`None` blocks forever), either transport.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

impl Endpoint {
    /// Binds the listening socket. For `Tcp` with port 0, the returned
    /// daemon's [`BoundDaemon::endpoint`] carries the resolved port. A
    /// stale Unix socket file is removed before binding.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if binding fails.
    pub fn bind(&self) -> Result<BoundDaemon, LeapsError> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| LeapsError::protocol(format!("binding {self}: {e}")))?;
                Ok(BoundDaemon { listener: Listener::Unix(listener), endpoint: self.clone() })
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|e| LeapsError::protocol(format!("binding {self}: {e}")))?;
                let actual = listener
                    .local_addr()
                    .map_err(|e| LeapsError::protocol(format!("resolving {self}: {e}")))?;
                Ok(BoundDaemon {
                    listener: Listener::Tcp(listener),
                    endpoint: Endpoint::Tcp(actual.to_string()),
                })
            }
        }
    }

    /// Connects a client stream.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the connection fails.
    pub fn connect(&self) -> Result<Stream, LeapsError> {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(|e| LeapsError::protocol(format!("connecting {self}: {e}"))),
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(Stream::Tcp)
                .map_err(|e| LeapsError::protocol(format!("connecting {self}: {e}"))),
        }
    }

    /// Best-effort self-connect to wake a blocked accept loop.
    fn wake(&self) {
        let _ = self.connect();
    }
}

/// A bound, not-yet-running daemon (separating bind from run lets
/// callers learn the resolved endpoint before clients race to connect).
pub struct BoundDaemon {
    listener: Listener,
    endpoint: Endpoint,
}

/// A [`VerdictSink`] that pushes `VERDICT` lines through a connection's
/// shared writer.
struct WriterSink {
    writer: Arc<Mutex<Stream>>,
}

impl VerdictSink for WriterSink {
    fn deliver(&self, pid: u32, verdict: &Verdict) {
        let line = Reply::Verdict { pid, verdict: verdict.clone() }.to_line();
        let mut writer = lock_unpoisoned(&self.writer);
        // A dead connection is detected by the reader side; drop the
        // verdict rather than panicking a pool worker.
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}

impl BoundDaemon {
    /// The endpoint clients should connect to (TCP port resolved).
    #[must_use]
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Runs the accept loop until a `SHUTDOWN` command arrives, then
    /// joins connection threads, drains every remaining session and
    /// returns the number of sessions drained at shutdown.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if accepting fails fatally.
    pub fn run(self, server: &Arc<Server>) -> Result<usize, LeapsError> {
        let mut handles = Vec::new();
        loop {
            let stream = match self.listener.accept() {
                Ok(stream) => stream,
                Err(e) => {
                    if server.is_shutting_down() {
                        break;
                    }
                    return Err(LeapsError::protocol(format!("accept on {}: {e}", self.endpoint)));
                }
            };
            if server.is_shutting_down() {
                break; // the wake connection, or a client racing shutdown
            }
            let server = Arc::clone(server);
            let endpoint = self.endpoint.clone();
            handles.push(std::thread::spawn(move || {
                handle_connection(&server, &endpoint, stream);
            }));
        }
        for handle in handles {
            let _ = handle.join();
        }
        let drained = server.close_all().len();
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        Ok(drained)
    }
}

/// Renders the `HEALTH` reply detail: worker liveness, self-healing
/// counters, session/registry state and the idle policy. Keys follow
/// the protocol counter vocabulary (`crate::proto` header).
fn health_fields(server: &Server) -> String {
    let stats = server.stats();
    let r = stats.registry;
    let idle_secs = server.idle_ttl().map_or(0, |ttl| ttl.as_secs());
    format!(
        "health pool.workers={} pool.panics={} pool.respawns={} serve.sessions={} \
         serve.opened={} serve.closed={} serve.reaped={} registry.models={} \
         registry.cached_bytes={} registry.loads={} registry.hits={} registry.evictions={} \
         idle_secs={idle_secs}",
        stats.workers,
        stats.panics,
        stats.respawns,
        stats.sessions,
        stats.opened,
        stats.closed,
        stats.reaped,
        r.loaded,
        r.cached_bytes,
        r.loads,
        r.hits,
        r.evictions
    )
}

/// Renders a session report as `key=value` stats tokens, using the
/// `session.*`/`stream.*` names of the protocol counter vocabulary.
fn report_fields(report: &SessionReport) -> String {
    let s = report.stream;
    format!(
        "model={} session.queued={} session.submitted={} session.shed={} session.verdicts={} \
         stream.accepted={} stream.duplicates={} stream.gaps={} stream.missing={} \
         stream.reordered={} stream.degraded={}",
        report.model,
        report.queued,
        report.submitted,
        report.shed,
        report.verdicts,
        s.accepted,
        s.duplicates,
        s.gaps,
        s.missing,
        s.reordered,
        s.degraded_verdicts
    )
}

fn err_reply(e: &LeapsError) -> Reply {
    Reply::Err { family: error_family(e).to_owned(), message: e.to_string() }
}

fn write_reply(writer: &Arc<Mutex<Stream>>, reply: &Reply) -> std::io::Result<()> {
    let mut writer = lock_unpoisoned(writer);
    writeln!(writer, "{}", reply.to_line())?;
    writer.flush()
}

/// Drives one connection's command loop until `BYE`, `SHUTDOWN`, EOF,
/// an I/O error, shutdown, or the idle TTL expiring, then closes any
/// sessions the client left open.
///
/// Reads run under the [`CONN_POLL`] deadline; a deadline tick is not an
/// error but a chance to notice shutdown or idleness. `BufReader` keeps
/// any partially-read line across ticks, so slow writers are never
/// corrupted, only rechecked.
fn handle_connection(server: &Arc<Server>, endpoint: &Endpoint, stream: Stream) {
    let _ = stream.set_read_timeout(Some(CONN_POLL));
    let Ok(write_half) = stream.try_clone() else { return };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut client: Option<String> = None;
    let mut line = String::new();
    let mut last_activity_us = leaps_obs::now_micros();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF: client went away
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Deadline tick: `line` keeps any partial bytes.
                if server.is_shutting_down() {
                    break;
                }
                if let Some(ttl) = server.idle_ttl() {
                    let ttl_us = u64::try_from(ttl.as_micros()).unwrap_or(u64::MAX);
                    if leaps_obs::now_micros().saturating_sub(last_activity_us) > ttl_us {
                        let _ = write_reply(
                            &writer,
                            &Reply::Err {
                                family: "proto".to_owned(),
                                message: format!("idle for over {}s, closing", ttl.as_secs_f64()),
                            },
                        );
                        break;
                    }
                }
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        last_activity_us = leaps_obs::now_micros();
        if line.trim().is_empty() {
            line.clear();
            continue;
        }
        let reply = match Command::parse_line(&line) {
            Err(e) => Reply::Err { family: "proto".to_owned(), message: e.to_string() },
            Ok(command) => {
                let latency = command_span(&command);
                let outcome = dispatch(server, &writer, &mut client, command);
                drop(latency);
                match outcome {
                    Dispatch::Reply(reply) => reply,
                    Dispatch::Done => {
                        line.clear();
                        continue;
                    }
                    Dispatch::Last(reply) => {
                        let _ = write_reply(&writer, &reply);
                        break;
                    }
                    Dispatch::Shutdown(reply) => {
                        let _ = write_reply(&writer, &reply);
                        server.begin_shutdown();
                        endpoint.wake();
                        break;
                    }
                }
            }
        };
        line.clear();
        if write_reply(&writer, &reply).is_err() {
            break;
        }
    }
    if let Some(client) = client {
        server.close_client(&client);
    }
}

enum Dispatch {
    /// Reply and keep the connection open.
    Reply(Reply),
    /// Reply, then end the connection.
    Last(Reply),
    /// Reply, then shut the daemon down.
    Shutdown(Reply),
    /// The handler already wrote its reply (a multi-line block that had
    /// to go out under one writer lock); keep the connection open.
    Done,
}

/// Per-command daemon latency, recorded into `proto.<verb>.us`. One
/// `match` arm per verb so each histogram handle is cached in a static —
/// the `EVENT` hot path never touches the registry lock.
fn command_span(command: &Command) -> leaps_obs::Span {
    use leaps_obs::span;
    match command {
        Command::Hello { .. } => span!("proto.hello"),
        Command::Open { .. } => span!("proto.open"),
        Command::Event { .. } => span!("proto.event"),
        Command::Close { .. } => span!("proto.close"),
        Command::Stats { .. } => span!("proto.stats"),
        Command::Reload { .. } => span!("proto.reload"),
        Command::Health => span!("proto.health"),
        Command::Metrics { .. } => span!("proto.metrics"),
        Command::Shutdown => span!("proto.shutdown"),
        Command::Bye => span!("proto.bye"),
        Command::Panic { .. } => span!("proto.panic"),
    }
}

/// Serves `METRICS [reset]`: snapshots the global registry, then writes
/// the `OK metrics n=<k>` acknowledgement and all `k` `METRIC` lines in
/// **one** buffered write under **one** writer-lock hold, so concurrent
/// `VERDICT` pushes can never land inside the block. With `reset`,
/// counters and histograms are zeroed after the snapshot (gauges keep
/// their level — they track live state, not history).
fn write_metrics_block(writer: &Arc<Mutex<Stream>>, reset: bool) -> Dispatch {
    let registry = leaps_obs::registry();
    let snapshot = registry.snapshot();
    if reset {
        registry.reset();
    }
    let mut block = Reply::Ok { detail: format!("metrics n={}", snapshot.len()) }.to_line();
    block.push('\n');
    for entry in snapshot.entries {
        block.push_str(&Reply::Metric { metric: entry }.to_line());
        block.push('\n');
    }
    let mut writer = lock_unpoisoned(writer);
    // A dead connection surfaces on the reader side; nothing to do here.
    let _ = writer.write_all(block.as_bytes());
    let _ = writer.flush();
    Dispatch::Done
}

fn dispatch(
    server: &Arc<Server>,
    writer: &Arc<Mutex<Stream>>,
    client: &mut Option<String>,
    command: Command,
) -> Dispatch {
    let proto_err =
        |message: &str| Reply::Err { family: "proto".to_owned(), message: message.to_owned() };
    if let Command::Hello { client: id } = &command {
        if client.is_some() {
            return Dispatch::Reply(proto_err("already introduced"));
        }
        *client = Some(id.clone());
        let stats = server.stats();
        return Dispatch::Reply(Reply::Ok {
            detail: format!("hello {PROTOCOL_VERSION} workers={}", stats.workers),
        });
    }
    // Supervisor probes work without a HELLO: an external health checker
    // should not have to claim a client identity (and session keys).
    if command == Command::Health {
        return Dispatch::Reply(Reply::Ok { detail: health_fields(server) });
    }
    if let Command::Metrics { reset } = command {
        return write_metrics_block(writer, reset);
    }
    if let Command::Panic { shard } = command {
        if std::env::var("LEAPS_CHAOS").as_deref() != Ok("1") {
            return Dispatch::Reply(proto_err(
                "PANIC requires the daemon to run with LEAPS_CHAOS=1",
            ));
        }
        server.inject_panic_job(shard as usize);
        return Dispatch::Reply(Reply::Ok { detail: format!("panic injected shard={shard}") });
    }
    let Some(client) = client.as_deref() else {
        return Dispatch::Reply(proto_err("HELLO first"));
    };
    match command {
        Command::Hello { .. }
        | Command::Health
        | Command::Metrics { .. }
        | Command::Panic { .. } => {
            unreachable!("handled above")
        }
        Command::Open { pid, model } => {
            let sink = Arc::new(WriterSink { writer: Arc::clone(writer) });
            match server.open(client, pid, &model, sink) {
                Ok(()) => {
                    Dispatch::Reply(Reply::Ok { detail: format!("open pid={pid} model={model}") })
                }
                Err(e) => Dispatch::Reply(err_reply(&e)),
            }
        }
        Command::Event { pid, event } => match server.submit(client, pid, event) {
            Ok(crate::session::Submit::Accepted { .. }) => {
                Dispatch::Reply(Reply::Ok { detail: "event".to_owned() })
            }
            Ok(crate::session::Submit::Busy { shed }) => Dispatch::Reply(Reply::Busy { pid, shed }),
            Err(e) => Dispatch::Reply(err_reply(&e)),
        },
        Command::Close { pid } => match server.close(client, pid) {
            Ok(report) => Dispatch::Reply(Reply::Ok {
                detail: format!("close pid={pid} {}", report_fields(&report)),
            }),
            Err(e) => Dispatch::Reply(err_reply(&e)),
        },
        Command::Stats { pid: Some(pid) } => match server.session_stats(client, pid) {
            Ok(report) => Dispatch::Reply(Reply::Ok {
                detail: format!("stats pid={pid} {}", report_fields(&report)),
            }),
            Err(e) => Dispatch::Reply(err_reply(&e)),
        },
        Command::Stats { pid: None } => {
            let stats = server.stats();
            let r = stats.registry;
            Dispatch::Reply(Reply::Ok {
                detail: format!(
                    "stats serve.sessions={} pool.workers={} serve.opened={} serve.closed={} \
                     registry.models={} registry.cached_bytes={} registry.loads={} \
                     registry.hits={} registry.evictions={}",
                    stats.sessions,
                    stats.workers,
                    stats.opened,
                    stats.closed,
                    r.loaded,
                    r.cached_bytes,
                    r.loads,
                    r.hits,
                    r.evictions
                ),
            })
        }
        Command::Reload { model } => match server.reload(&model) {
            Ok(()) => Dispatch::Reply(Reply::Ok { detail: format!("reload model={model}") }),
            Err(e) => Dispatch::Reply(err_reply(&e)),
        },
        Command::Shutdown => Dispatch::Shutdown(Reply::Ok { detail: "shutdown".to_owned() }),
        Command::Bye => Dispatch::Last(Reply::Ok { detail: "bye".to_owned() }),
    }
}
