//! The `leaps-serve` line protocol.
//!
//! Every message is one UTF-8 line (`\n`-terminated, no embedded
//! newlines). A client drives the session state machine:
//!
//! ```text
//! client → server                      server → client
//! ---------------                      ---------------
//! HELLO <client-id>                    OK hello <info>
//! OPEN pid=<pid> model=<name>          OK open ... | ERR <family> <msg>
//! EVENT pid=<pid> <event-body>         OK event | BUSY pid=<pid> shed=<n>
//!                                      VERDICT pid=<pid> <verdict-body>   (async)
//! STATS [pid=<pid>]                    OK stats <counters>
//! HEALTH                               OK health <liveness counters>
//! METRICS [reset]                      OK metrics n=<k>  +  k × `METRIC <metric-line>`
//! RELOAD model=<name>                  OK reload ... | ERR ...
//! CLOSE pid=<pid>                      OK close <final counters>
//! SHUTDOWN                             OK shutdown
//! BYE                                  OK bye
//! PANIC [shard=<n>]                    OK panic ...   (chaos hook, LEAPS_CHAOS=1 only)
//! ```
//!
//! `HEALTH` is the supervisor probe: worker liveness plus the
//! self-healing counters (`pool.panics`, `pool.respawns`,
//! `serve.reaped`), session and registry state, and the idle policy
//! (`idle_secs`, `0` = disabled). `METRICS` dumps the full `leaps-obs`
//! registry, one `METRIC` line per metric in the stable
//! one-metric-per-line snapshot format (`leaps_obs::snapshot`), count
//! announced up front in the `OK metrics n=<k>` acknowledgement; the
//! whole block is written under one writer lock so verdicts never
//! interleave inside it. With `reset`, counters and histograms are
//! zeroed *after* the snapshot is taken (gauges are levels and keep
//! their value). Both probes are allowed before `HELLO`.
//! `PANIC` deliberately crashes one pool job to exercise supervision;
//! the daemon refuses it unless it was started with `LEAPS_CHAOS=1` in
//! the environment.
//!
//! # Counter vocabulary
//!
//! `STATS`, `CLOSE`, `HEALTH` and `METRICS` share **one naming scheme**:
//! dotted `layer.name` tokens, identical whether they appear as a
//! `key=value` field in an acknowledgement or as a metric line in a
//! `METRICS` dump.
//!
//! | layer       | names                                                                  |
//! |-------------|------------------------------------------------------------------------|
//! | `pool.*`    | `pool.workers`, `pool.jobs`, `pool.panics`, `pool.respawns`, `pool.queue.<shard>` |
//! | `serve.*`   | `serve.sessions`, `serve.opened`, `serve.closed`, `serve.reaped`, `serve.events`, `serve.shed`, `serve.verdicts`, `serve.degraded` |
//! | `registry.*`| `registry.models`, `registry.cached_bytes`, `registry.loads`, `registry.hits`, `registry.evictions` |
//! | `proto.*`   | `proto.<verb>.us` per-command daemon latency histograms                 |
//! | `session.*` | per-session lifetime counters: `session.queued`, `session.submitted`, `session.shed`, `session.verdicts` |
//! | `stream.*`  | per-session stream health: `stream.accepted`, `stream.duplicates`, `stream.gaps`, `stream.missing`, `stream.reordered`, `stream.degraded` |
//! | `train.*` / `ckpt.*` / `sweep.*` | training-side metrics (`METRICS` only; a daemon normally shows them at zero) |
//!
//! `session.*`/`stream.*` are per-session and therefore appear only in
//! `STATS pid=`/`CLOSE` acknowledgements; everything else is
//! process-global and appears in `METRICS` (and aggregated in `HEALTH`).
//!
//! Every command receives exactly one acknowledgement (`OK`, `BUSY` or
//! `ERR`); `VERDICT` lines are pushed asynchronously by pool workers and
//! may interleave between acknowledgements (never mid-line — the
//! connection writer is a mutex). The verdict body is
//! [`Verdict::to_line`]; the event body is [`encode_event`].
//!
//! Sessions are keyed `(client, pid)`: one client id (from `HELLO`) may
//! stream many processes concurrently over one connection.

use leaps_core::error::LeapsError;
use leaps_core::stream::Verdict;
use leaps_etw::event::{EventType, Provenance, StackFrame};
use leaps_etw::Va;
use leaps_trace::partition::PartitionedEvent;
use std::fmt;

/// Protocol identity sent in the `OK hello` acknowledgement and checked
/// nowhere else — a human-readable version marker.
pub const PROTOCOL_VERSION: &str = "leaps-serve v1";

/// A malformed protocol line (either direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// What was wrong, in one line.
    pub message: String,
}

impl ProtoError {
    fn new(message: impl Into<String>) -> ProtoError {
        ProtoError { message: message.into() }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for LeapsError {
    fn from(e: ProtoError) -> LeapsError {
        LeapsError::protocol(e.message)
    }
}

/// Validates a client or model name: non-empty, `[A-Za-z0-9_.-]` only,
/// not starting with a dot (keeps registry names inside the model
/// directory and protocol lines single-token).
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

// ---------------------------------------------------------------- events

/// Encodes a partitioned event as the single-line `EVENT` body:
///
/// ```text
/// num=7 type=TcpSend tid=3 src=benign app=vim!main@140001080@1 sys=...
/// ```
///
/// Frames are comma-separated `module!function@hexaddr@inapp` tokens in
/// caller order; empty stacks are written `-`. The `src` ground-truth
/// tag is carried for evaluation tooling only, exactly like the raw log
/// format's `src=` field.
#[must_use]
pub fn encode_event(event: &PartitionedEvent) -> String {
    let src = match event.truth {
        Some(Provenance::Benign) => "benign",
        Some(Provenance::Malicious) => "malicious",
        None => "-",
    };
    format!(
        "num={} type={} tid={} src={src} app={} sys={}",
        event.num,
        event.etype,
        event.tid,
        encode_frames(&event.app_stack),
        encode_frames(&event.system_stack)
    )
}

fn encode_frames(frames: &[StackFrame]) -> String {
    if frames.is_empty() {
        return "-".to_owned();
    }
    let tokens: Vec<String> = frames
        .iter()
        .map(|f| format!("{}!{}@{:x}@{}", f.module, f.function, f.addr.0, u8::from(f.in_app_image)))
        .collect();
    tokens.join(",")
}

/// Decodes an `EVENT` body produced by [`encode_event`].
///
/// # Errors
///
/// Returns [`ProtoError`] on any missing field, unknown key or malformed
/// token.
pub fn decode_event(body: &str) -> Result<PartitionedEvent, ProtoError> {
    let mut num = None;
    let mut etype = None;
    let mut tid = None;
    let mut truth = None;
    let mut app = None;
    let mut sys = None;
    for token in body.split_ascii_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| ProtoError::new(format!("bare token {token:?}")))?;
        match key {
            "num" => {
                num = Some(value.parse().map_err(|_| ProtoError::new("bad num"))?);
            }
            "type" => {
                etype = Some(
                    EventType::from_name(value)
                        .ok_or_else(|| ProtoError::new(format!("unknown event type {value:?}")))?,
                );
            }
            "tid" => {
                tid = Some(value.parse().map_err(|_| ProtoError::new("bad tid"))?);
            }
            "src" => {
                truth = Some(match value {
                    "benign" => Some(Provenance::Benign),
                    "malicious" => Some(Provenance::Malicious),
                    "-" => None,
                    other => return Err(ProtoError::new(format!("bad src {other:?}"))),
                });
            }
            "app" => app = Some(decode_frames(value)?),
            "sys" => sys = Some(decode_frames(value)?),
            other => return Err(ProtoError::new(format!("unknown event field {other:?}"))),
        }
    }
    let missing = |field| move || ProtoError::new(format!("event body missing {field}"));
    Ok(PartitionedEvent {
        num: num.ok_or_else(missing("num"))?,
        etype: etype.ok_or_else(missing("type"))?,
        tid: tid.ok_or_else(missing("tid"))?,
        truth: truth.ok_or_else(missing("src"))?,
        app_stack: app.ok_or_else(missing("app"))?,
        system_stack: sys.ok_or_else(missing("sys"))?,
    })
}

fn decode_frames(text: &str) -> Result<Vec<StackFrame>, ProtoError> {
    if text == "-" {
        return Ok(Vec::new());
    }
    text.split(',').map(decode_frame).collect()
}

fn decode_frame(token: &str) -> Result<StackFrame, ProtoError> {
    // Split from the right: addr and flag are the last two `@` fields,
    // whatever characters the symbol itself contains.
    let mut parts = token.rsplitn(3, '@');
    let flag = parts.next().filter(|f| matches!(*f, "0" | "1"));
    let addr = parts.next().and_then(|a| u64::from_str_radix(a, 16).ok());
    let symbol = parts.next();
    let (Some(flag), Some(addr), Some(symbol)) = (flag, addr, symbol) else {
        return Err(ProtoError::new(format!("bad frame token {token:?}")));
    };
    let (module, function) = symbol
        .split_once('!')
        .ok_or_else(|| ProtoError::new(format!("frame symbol {symbol:?} lacks `!`")))?;
    Ok(StackFrame::new(module, function, Va(addr), flag == "1"))
}

// -------------------------------------------------------------- commands

/// A parsed client → server command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Introduces the client id that keys this connection's sessions.
    Hello {
        /// Client identity (one token, [`valid_name`]).
        client: String,
    },
    /// Opens the `(client, pid)` session against a registry model.
    Open {
        /// Process id of the monitored stream.
        pid: u32,
        /// Registry model name.
        model: String,
    },
    /// Feeds one event into an open session.
    Event {
        /// Session pid.
        pid: u32,
        /// The event.
        event: PartitionedEvent,
    },
    /// Drains and closes a session.
    Close {
        /// Session pid.
        pid: u32,
    },
    /// Server-wide (`pid` absent) or per-session counters.
    Stats {
        /// Session pid, or `None` for server-wide stats.
        pid: Option<u32>,
    },
    /// Hot-reloads a registry model from disk.
    Reload {
        /// Registry model name.
        model: String,
    },
    /// Probes daemon liveness: worker, panic/respawn, session, reap and
    /// registry counters plus the idle policy.
    Health,
    /// Dumps the full `leaps-obs` metrics registry (optionally zeroing
    /// counters and histograms after the snapshot).
    Metrics {
        /// Whether to reset counters/histograms after snapshotting.
        reset: bool,
    },
    /// Asks the daemon to drain every session and exit.
    Shutdown,
    /// Ends the connection (open sessions are drained and closed).
    Bye,
    /// Chaos hook: crash one pool job on the given shard. Refused unless
    /// the daemon runs with `LEAPS_CHAOS=1`.
    Panic {
        /// Pool shard to crash a job on (defaults to 0 on the wire).
        shard: u32,
    },
}

impl Command {
    /// Serializes the command as one protocol line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Command::Hello { client } => format!("HELLO {client}"),
            Command::Open { pid, model } => format!("OPEN pid={pid} model={model}"),
            Command::Event { pid, event } => format!("EVENT pid={pid} {}", encode_event(event)),
            Command::Close { pid } => format!("CLOSE pid={pid}"),
            Command::Stats { pid: Some(pid) } => format!("STATS pid={pid}"),
            Command::Stats { pid: None } => "STATS".to_owned(),
            Command::Reload { model } => format!("RELOAD model={model}"),
            Command::Health => "HEALTH".to_owned(),
            Command::Metrics { reset: false } => "METRICS".to_owned(),
            Command::Metrics { reset: true } => "METRICS reset".to_owned(),
            Command::Shutdown => "SHUTDOWN".to_owned(),
            Command::Bye => "BYE".to_owned(),
            Command::Panic { shard } => format!("PANIC shard={shard}"),
        }
    }

    /// Parses one protocol line into a command.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on an unknown verb or malformed arguments.
    pub fn parse_line(line: &str) -> Result<Command, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r.trim_start()),
            None => (line, ""),
        };
        match verb {
            "HELLO" => {
                if !valid_name(rest) {
                    return Err(ProtoError::new(format!("bad client id {rest:?}")));
                }
                Ok(Command::Hello { client: rest.to_owned() })
            }
            "OPEN" => {
                let pid = field_u32(rest, "pid")?;
                let model = field_str(rest, "model")?;
                if !valid_name(&model) {
                    return Err(ProtoError::new(format!("bad model name {model:?}")));
                }
                Ok(Command::Open { pid, model })
            }
            "EVENT" => {
                let (pid_token, body) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtoError::new("EVENT needs pid=<pid> and a body"))?;
                let pid = field_u32(pid_token, "pid")?;
                Ok(Command::Event { pid, event: decode_event(body)? })
            }
            "CLOSE" => Ok(Command::Close { pid: field_u32(rest, "pid")? }),
            "STATS" => {
                if rest.is_empty() {
                    Ok(Command::Stats { pid: None })
                } else {
                    Ok(Command::Stats { pid: Some(field_u32(rest, "pid")?) })
                }
            }
            "RELOAD" => {
                let model = field_str(rest, "model")?;
                if !valid_name(&model) {
                    return Err(ProtoError::new(format!("bad model name {model:?}")));
                }
                Ok(Command::Reload { model })
            }
            "HEALTH" if rest.is_empty() => Ok(Command::Health),
            "METRICS" if rest.is_empty() => Ok(Command::Metrics { reset: false }),
            "METRICS" if rest == "reset" => Ok(Command::Metrics { reset: true }),
            "SHUTDOWN" if rest.is_empty() => Ok(Command::Shutdown),
            "BYE" if rest.is_empty() => Ok(Command::Bye),
            "PANIC" => {
                let shard = if rest.is_empty() { 0 } else { field_u32(rest, "shard")? };
                Ok(Command::Panic { shard })
            }
            _ => Err(ProtoError::new(format!("unknown command {verb:?}"))),
        }
    }
}

fn field_str(rest: &str, key: &str) -> Result<String, ProtoError> {
    rest.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .map(str::to_owned)
        .ok_or_else(|| ProtoError::new(format!("missing {key}=")))
}

fn field_u32(rest: &str, key: &str) -> Result<u32, ProtoError> {
    field_str(rest, key)?.parse().map_err(|_| ProtoError::new(format!("bad {key}= value")))
}

// --------------------------------------------------------------- replies

/// A parsed server → client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Command acknowledged; detail is free-form.
    Ok {
        /// Free-form single-line detail.
        detail: String,
    },
    /// Command failed; `family` names the error class (`proto`, `parse`,
    /// `model`, `data`, `io`) so clients can report it.
    Err {
        /// Error family token.
        family: String,
        /// One-line message.
        message: String,
    },
    /// The event was accepted but the session queue was full: the
    /// *oldest* queued event was shed to make room.
    Busy {
        /// Session pid.
        pid: u32,
        /// Total events shed by this session so far.
        shed: u64,
    },
    /// An asynchronous verdict from an open session.
    Verdict {
        /// Session pid.
        pid: u32,
        /// The verdict.
        verdict: Verdict,
    },
    /// One metric of a `METRICS` dump (exactly `n` follow the
    /// `OK metrics n=<n>` acknowledgement, never interleaved with other
    /// replies).
    Metric {
        /// The metric, in the stable snapshot line format.
        metric: leaps_obs::MetricValue,
    },
}

impl Reply {
    /// Whether this reply acknowledges a command (everything except the
    /// asynchronous `VERDICT` push and the `METRIC` lines that follow an
    /// `OK metrics` acknowledgement).
    #[must_use]
    pub fn is_ack(&self) -> bool {
        !matches!(self, Reply::Verdict { .. } | Reply::Metric { .. })
    }

    /// Serializes the reply as one protocol line (no newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Reply::Ok { detail } if detail.is_empty() => "OK".to_owned(),
            Reply::Ok { detail } => format!("OK {detail}"),
            Reply::Err { family, message } => format!("ERR {family} {message}"),
            Reply::Busy { pid, shed } => format!("BUSY pid={pid} shed={shed}"),
            Reply::Verdict { pid, verdict } => {
                format!("VERDICT pid={pid} {}", verdict.to_line())
            }
            Reply::Metric { metric } => format!("METRIC {}", metric.to_line()),
        }
    }

    /// Parses one protocol line into a reply.
    ///
    /// # Errors
    ///
    /// Returns [`ProtoError`] on an unknown verb or malformed body.
    pub fn parse_line(line: &str) -> Result<Reply, ProtoError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((v, r)) => (v, r),
            None => (line, ""),
        };
        match verb {
            "OK" => Ok(Reply::Ok { detail: rest.to_owned() }),
            "ERR" => {
                let (family, message) = rest.split_once(' ').map_or((rest, ""), |(f, m)| (f, m));
                if family.is_empty() {
                    return Err(ProtoError::new("ERR needs a family token"));
                }
                Ok(Reply::Err { family: family.to_owned(), message: message.to_owned() })
            }
            "BUSY" => Ok(Reply::Busy {
                pid: field_u32(rest, "pid")?,
                shed: field_str(rest, "shed")?
                    .parse()
                    .map_err(|_| ProtoError::new("bad shed= value"))?,
            }),
            "VERDICT" => {
                let (pid_token, body) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtoError::new("VERDICT needs pid=<pid> and a body"))?;
                let verdict = Verdict::parse_line(body)
                    .ok_or_else(|| ProtoError::new(format!("bad verdict body {body:?}")))?;
                Ok(Reply::Verdict { pid: field_u32(pid_token, "pid")?, verdict })
            }
            "METRIC" => {
                let metric = leaps_obs::MetricValue::parse_line(rest)
                    .map_err(|e| ProtoError::new(format!("bad metric line: {e}")))?;
                Ok(Reply::Metric { metric })
            }
            _ => Err(ProtoError::new(format!("unknown reply {verb:?}"))),
        }
    }
}

/// The `ERR` family token for a [`LeapsError`], mirroring the CLI's
/// exit-code families.
#[must_use]
pub fn error_family(e: &LeapsError) -> &'static str {
    match e {
        LeapsError::Parse(_) => "parse",
        LeapsError::Model(_) => "model",
        LeapsError::Data(_) => "data",
        LeapsError::Io { .. } => "io",
        LeapsError::Protocol { .. } => "proto",
        LeapsError::Deadline { .. } => "deadline",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> PartitionedEvent {
        PartitionedEvent {
            num: 42,
            etype: EventType::TcpSend,
            tid: 7,
            app_stack: vec![
                StackFrame::new("vim", "main", Va(0x1_4000_1080), true),
                StackFrame::new("", "anon_0x7f", Va(0x7f00_0000), true),
            ],
            system_stack: vec![StackFrame::new("tcpip", "TcpSendData", Va(0xfff8_0002), false)],
            truth: Some(Provenance::Malicious),
        }
    }

    #[test]
    fn event_round_trips_exactly() {
        let event = sample_event();
        let line = encode_event(&event);
        assert!(!line.contains('\n'));
        assert_eq!(decode_event(&line).unwrap(), event);

        let empty = PartitionedEvent {
            num: 0,
            etype: EventType::FileRead,
            tid: 0,
            app_stack: Vec::new(),
            system_stack: Vec::new(),
            truth: None,
        };
        assert_eq!(decode_event(&encode_event(&empty)).unwrap(), empty);
    }

    #[test]
    fn event_decode_rejects_damage() {
        let line = encode_event(&sample_event());
        assert!(decode_event(&line.replace("num=42", "num=x")).is_err());
        assert!(decode_event(&line.replace("type=TcpSend", "type=Nope")).is_err());
        assert!(decode_event(&line.replace("src=malicious", "src=evil")).is_err());
        assert!(decode_event("num=1 type=TcpSend tid=0 src=- app=-").is_err(), "missing sys");
        assert!(decode_event(&format!("{line} zz=1")).is_err(), "unknown field");
        assert!(decode_event(&line.replace("@1,", "@2,")).is_err(), "bad in-app flag");
    }

    #[test]
    fn commands_round_trip() {
        let commands = [
            Command::Hello { client: "host-17.ci".to_owned() },
            Command::Open { pid: 1476, model: "vim_wsvm".to_owned() },
            Command::Event { pid: 1476, event: sample_event() },
            Command::Close { pid: 1476 },
            Command::Stats { pid: None },
            Command::Stats { pid: Some(9) },
            Command::Reload { model: "vim_wsvm".to_owned() },
            Command::Health,
            Command::Metrics { reset: false },
            Command::Metrics { reset: true },
            Command::Shutdown,
            Command::Bye,
            Command::Panic { shard: 3 },
        ];
        for cmd in &commands {
            let line = cmd.to_line();
            assert_eq!(Command::parse_line(&line).as_ref(), Ok(cmd), "round-trip of {line:?}");
        }
    }

    #[test]
    fn command_parse_rejects_damage() {
        assert!(Command::parse_line("NOPE").is_err());
        assert!(Command::parse_line("HELLO two tokens").is_err());
        assert!(Command::parse_line("HELLO ../etc").is_err());
        assert!(Command::parse_line("OPEN pid=3").is_err(), "missing model");
        assert!(Command::parse_line("OPEN pid=3 model=.hidden").is_err());
        assert!(Command::parse_line("OPEN pid=3 model=a/b").is_err(), "path separator");
        assert!(Command::parse_line("EVENT pid=3").is_err(), "missing body");
        assert!(Command::parse_line("SHUTDOWN now").is_err());
        assert!(Command::parse_line("HEALTH now").is_err());
        assert!(Command::parse_line("METRICS hard").is_err());
        assert!(Command::parse_line("PANIC shard=x").is_err());
        assert_eq!(Command::parse_line("PANIC"), Ok(Command::Panic { shard: 0 }));
    }

    #[test]
    fn replies_round_trip() {
        let verdict = Verdict { last_event: 9, benign: false, score: Some(-0.25), degraded: true };
        let replies = [
            Reply::Ok { detail: String::new() },
            Reply::Ok { detail: "open pid=3 model=m".to_owned() },
            Reply::Err { family: "model".to_owned(), message: "missing header".to_owned() },
            Reply::Busy { pid: 3, shed: 17 },
            Reply::Verdict { pid: 3, verdict },
        ];
        for reply in &replies {
            let line = reply.to_line();
            assert_eq!(Reply::parse_line(&line).as_ref(), Ok(reply), "round-trip of {line:?}");
        }
        assert!(Reply::parse_line("VERDICT pid=3 num=x").is_err());
        assert!(Reply::parse_line("WHAT 1").is_err());
    }

    #[test]
    fn metric_replies_round_trip_and_reject_damage() {
        let reg = leaps_obs::MetricsRegistry::new();
        reg.counter("serve.events").add(12);
        reg.gauge("serve.sessions").set(2);
        reg.histogram("proto.event.us").record(37);
        for entry in reg.snapshot().entries {
            let reply = Reply::Metric { metric: entry };
            let line = reply.to_line();
            assert!(line.starts_with("METRIC "), "{line}");
            assert!(!reply.is_ack(), "METRIC lines must not satisfy an ack wait");
            assert_eq!(Reply::parse_line(&line).as_ref(), Ok(&reply), "round-trip of {line:?}");
        }
        assert!(Reply::parse_line("METRIC").is_err(), "empty metric body");
        assert!(Reply::parse_line("METRIC serve.events counter x").is_err());
        assert!(Reply::parse_line("METRIC serve.events tally 3").is_err(), "unknown kind");
        assert!(
            Reply::parse_line("METRIC h hist count=1 sum=2 buckets=1,0").is_err(),
            "truncated buckets"
        );
    }

    #[test]
    fn names_validate() {
        assert!(valid_name("vim_wsvm-2.model"));
        assert!(!valid_name(""));
        assert!(!valid_name(".."));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
    }
}
