//! A synchronous protocol client, used by `leaps submit`, the
//! `serve_session` example and the smoke tests.
//!
//! Every command is acknowledged by exactly one `OK`/`BUSY`/`ERR` line;
//! asynchronous `VERDICT` lines may interleave before the
//! acknowledgement. [`Client::request`] hides that: it sends one
//! command, collects any verdicts that arrive, and returns the
//! acknowledgement.

use crate::daemon::{Endpoint, Stream};
use crate::proto::{Command, Reply};
use leaps_core::error::LeapsError;
use leaps_core::stream::Verdict;
use leaps_obs::Snapshot;
use std::io::{BufRead, BufReader, Write};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the connection fails.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, LeapsError> {
        let stream = endpoint.connect()?;
        let read_half = match &stream {
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
        .map_err(|e| LeapsError::protocol(format!("cloning stream to {endpoint}: {e}")))?;
        Ok(Client { reader: BufReader::new(read_half), writer: stream })
    }

    /// Sends one command line.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] on a write failure.
    pub fn send(&mut self, command: &Command) -> Result<(), LeapsError> {
        writeln!(self.writer, "{}", command.to_line())
            .and_then(|()| self.writer.flush())
            .map_err(|e| LeapsError::protocol(format!("sending {:?}: {e}", command.to_line())))
    }

    /// Reads the next reply line (blocking).
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] on EOF, a read failure or an unparsable
    /// line.
    pub fn next_reply(&mut self) -> Result<Reply, LeapsError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| LeapsError::protocol(format!("reading reply: {e}")))?;
        if n == 0 {
            return Err(LeapsError::protocol("connection closed by server"));
        }
        Ok(Reply::parse_line(&line)?)
    }

    /// Sends `command` and reads until its acknowledgement, appending
    /// interleaved verdicts (with their session pid) to `verdicts`.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] on transport failure; the
    /// acknowledgement itself (possibly `ERR` or `BUSY`) is returned,
    /// not raised.
    pub fn request(
        &mut self,
        command: &Command,
        verdicts: &mut Vec<(u32, Verdict)>,
    ) -> Result<Reply, LeapsError> {
        self.send(command)?;
        loop {
            match self.next_reply()? {
                Reply::Verdict { pid, verdict } => verdicts.push((pid, verdict)),
                ack => return Ok(ack),
            }
        }
    }

    /// Like [`Client::request`], but raises a non-`OK` acknowledgement
    /// as a protocol error and returns the `OK` detail. Use for
    /// commands that must succeed (`HELLO`, `OPEN`, `CLOSE`, ...), not
    /// for `EVENT` where `BUSY` is a legitimate answer.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] on transport failure or a non-`OK`
    /// acknowledgement.
    pub fn expect_ok(
        &mut self,
        command: &Command,
        verdicts: &mut Vec<(u32, Verdict)>,
    ) -> Result<String, LeapsError> {
        match self.request(command, verdicts)? {
            Reply::Ok { detail } => Ok(detail),
            other => Err(LeapsError::protocol(format!(
                "{:?} answered {:?}",
                command.to_line(),
                other.to_line()
            ))),
        }
    }

    /// Sends `METRICS [reset]` and reads the whole dump: the
    /// `OK metrics n=<k>` acknowledgement (interleaved verdicts go to
    /// `verdicts`, as in [`Client::request`]) followed by exactly `k`
    /// `METRIC` lines, reassembled into a [`Snapshot`].
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] on transport failure, a non-`OK`
    /// acknowledgement, a malformed count, or a non-`METRIC` line inside
    /// the announced block.
    pub fn fetch_metrics(
        &mut self,
        reset: bool,
        verdicts: &mut Vec<(u32, Verdict)>,
    ) -> Result<Snapshot, LeapsError> {
        let detail = self.expect_ok(&Command::Metrics { reset }, verdicts)?;
        let count: usize = detail
            .split_ascii_whitespace()
            .find_map(|tok| tok.strip_prefix("n="))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| {
                LeapsError::protocol(format!("bad METRICS acknowledgement {detail:?}"))
            })?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            match self.next_reply()? {
                Reply::Metric { metric } => entries.push(metric),
                other => {
                    return Err(LeapsError::protocol(format!(
                        "expected METRIC line, got {:?}",
                        other.to_line()
                    )))
                }
            }
        }
        Ok(Snapshot { entries })
    }
}
