//! The model registry: named classifiers loaded on demand from a model
//! directory, cached under a byte cap with LRU eviction, hot-reloadable.
//!
//! A registry maps a model *name* to `<dir>/<name>.model` (the
//! `leaps_core::persist` text format written by `leaps train`). Loads
//! are cached; the cache is bounded by a configurable byte cap using the
//! **on-disk size** of each model file as its memory-cost proxy (the
//! text format is within a small constant factor of the in-memory
//! model). When the cap is exceeded, least-recently-used entries are
//! evicted — except the entry just loaded, so a single oversized model
//! is still served, just never retained alongside others.
//!
//! Eviction only drops the cache entry: sessions opened earlier keep
//! their `Arc<Classifier>` alive until they close. Likewise
//! [`Registry::reload`] swaps the cached copy for newly-opened sessions
//! without disturbing running ones.
//!
//! # Failure model
//!
//! Disk reads retry transient I/O errors (interrupted / timed-out
//! syscalls) with a short backoff before reporting. A failed
//! [`Registry::reload`] **keeps the last-known-good cached model**: a
//! torn file or flaky disk degrades hot reload, never availability —
//! sessions keep opening against the copy that last parsed. Parse
//! failures name the backing file (exit-code family 4).

use crate::lock_unpoisoned;
use crate::proto::valid_name;
use leaps_core::error::LeapsError;
use leaps_core::persist::{load_classifier, ModelError};
use leaps_core::pipeline::Classifier;
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Registry counters (monotonic except `loaded`/`cached_bytes`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Models currently cached.
    pub loaded: usize,
    /// Total on-disk bytes of the cached models.
    pub cached_bytes: u64,
    /// Cache misses that read a model from disk.
    pub loads: u64,
    /// Cache hits.
    pub hits: u64,
    /// Entries evicted to honour the byte cap.
    pub evictions: u64,
}

struct Entry {
    classifier: Arc<Classifier>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    entries: BTreeMap<String, Entry>,
    tick: u64,
    loads: u64,
    hits: u64,
    evictions: u64,
}

/// A thread-safe, LRU-bounded cache of named classifiers backed by a
/// model directory.
pub struct Registry {
    dir: PathBuf,
    cap_bytes: u64,
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates a registry over `dir` with a cache cap of `cap_bytes`.
    ///
    /// The directory is not scanned up front: models load lazily on
    /// first use, so a registry over a huge model farm starts instantly.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, cap_bytes: u64) -> Registry {
        Registry {
            dir: dir.into(),
            cap_bytes,
            inner: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
                loads: 0,
                hits: 0,
                evictions: 0,
            }),
        }
    }

    /// The backing model directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, name: &str) -> Result<PathBuf, LeapsError> {
        if !valid_name(name) {
            return Err(LeapsError::protocol(format!("bad model name {name:?}")));
        }
        Ok(self.dir.join(format!("{name}.model")))
    }

    fn load_from_disk(&self, name: &str) -> Result<(Arc<Classifier>, u64), LeapsError> {
        let path = self.path_of(name)?;
        let text = read_with_retry(&path)?;
        let classifier = load_classifier(&text).map_err(|inner| {
            LeapsError::Model(ModelError::InFile {
                path: path.display().to_string(),
                inner: Box::new(inner),
            })
        })?;
        Ok((Arc::new(classifier), text.len() as u64))
    }

    /// Fetches `name`, loading `<dir>/<name>.model` on a cache miss and
    /// evicting least-recently-used entries down to the byte cap.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] for an invalid name, [`LeapsError::Io`]
    /// if the file cannot be read, [`LeapsError::Model`] if it does not
    /// parse.
    pub fn get(&self, name: &str) -> Result<Arc<Classifier>, LeapsError> {
        {
            let mut guard = lock_unpoisoned(&self.inner);
            let inner = &mut *guard;
            inner.tick += 1;
            if let Some(entry) = inner.entries.get_mut(name) {
                entry.last_used = inner.tick;
                inner.hits += 1;
                leaps_obs::counter!("registry.hits").inc();
                return Ok(Arc::clone(&entry.classifier));
            }
        }
        // Read and parse outside the lock: a slow disk load must not
        // stall sessions opening already-cached models.
        let (classifier, bytes) = self.load_from_disk(name)?;
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.loads += 1;
        leaps_obs::counter!("registry.loads").inc();
        inner.entries.insert(
            name.to_owned(),
            Entry { classifier: Arc::clone(&classifier), bytes, last_used: tick },
        );
        self.evict_over_cap(&mut inner, name);
        self.publish_gauges(&inner);
        Ok(classifier)
    }

    /// Evicts LRU entries until the cache fits the cap, never evicting
    /// `keep` (the entry that triggered the eviction).
    fn evict_over_cap(&self, inner: &mut Inner, keep: &str) {
        loop {
            let total: u64 = inner.entries.values().map(|e| e.bytes).sum();
            if total <= self.cap_bytes {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .filter(|(name, _)| name.as_str() != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(name, _)| name.clone());
            let Some(victim) = victim else {
                return; // only `keep` remains; an oversized model is served uncached
            };
            inner.entries.remove(&victim);
            inner.evictions += 1;
            leaps_obs::counter!("registry.evictions").inc();
        }
    }

    /// Publishes the cache's level gauges after any mutation.
    fn publish_gauges(&self, inner: &Inner) {
        leaps_obs::gauge!("registry.models").set(inner.entries.len() as i64);
        let bytes: u64 = inner.entries.values().map(|e| e.bytes).sum();
        leaps_obs::gauge!("registry.cached_bytes").set(i64::try_from(bytes).unwrap_or(i64::MAX));
    }

    /// Hot-reloads `name` from disk, replacing the cached copy.
    ///
    /// If the model is not cached this is a no-op (the next
    /// [`Registry::get`] reads the current file anyway). If the reload
    /// fails, the error is reported but the **last-known-good cached
    /// copy keeps serving** — a torn model file mid-deploy must degrade
    /// hot reload, not availability.
    ///
    /// # Errors
    ///
    /// Same families as [`Registry::get`].
    pub fn reload(&self, name: &str) -> Result<(), LeapsError> {
        let cached = lock_unpoisoned(&self.inner).entries.contains_key(name);
        if !cached {
            // Validate the name even for uncached models.
            self.path_of(name)?;
            return Ok(());
        }
        let (classifier, bytes) = self.load_from_disk(name)?;
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        inner.loads += 1;
        leaps_obs::counter!("registry.loads").inc();
        inner.entries.insert(name.to_owned(), Entry { classifier, bytes, last_used: tick });
        self.evict_over_cap(&mut inner, name);
        self.publish_gauges(&inner);
        Ok(())
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        let inner = lock_unpoisoned(&self.inner);
        RegistryStats {
            loaded: inner.entries.len(),
            cached_bytes: inner.entries.values().map(|e| e.bytes).sum(),
            loads: inner.loads,
            hits: inner.hits,
            evictions: inner.evictions,
        }
    }
}

/// Reads a file, retrying transient I/O errors (interrupted or
/// timed-out syscalls — flaky NFS, pressure-stalled disks) with a short
/// exponential backoff before giving up. Hard errors (missing file,
/// permissions) report immediately.
fn read_with_retry(path: &Path) -> Result<String, LeapsError> {
    const ATTEMPTS: u32 = 3;
    let mut backoff = Duration::from_millis(10);
    for attempt in 1..=ATTEMPTS {
        match std::fs::read_to_string(path) {
            Ok(text) => return Ok(text),
            Err(e)
                if attempt < ATTEMPTS
                    && matches!(
                        e.kind(),
                        ErrorKind::Interrupted | ErrorKind::WouldBlock | ErrorKind::TimedOut
                    ) =>
            {
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(LeapsError::io(path.display().to_string(), &e)),
        }
    }
    unreachable!("the final attempt either returned or reported")
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("dir", &self.dir)
            .field("cap_bytes", &self.cap_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_cgraph::classify::CallGraphClassifier;
    use leaps_cgraph::graph::CallGraph;
    use leaps_core::persist::save_classifier;
    use leaps_core::pipeline::Classifier;

    /// A tiny call-graph classifier whose serialized size grows with
    /// `edges` — enough to exercise load/evict without training.
    fn tiny_model(edges: usize) -> Classifier {
        let edge_list: Vec<(String, String)> =
            (0..edges).map(|i| (format!("m!f{i}"), format!("m!f{}", i + 1))).collect();
        let bcg = CallGraph::from_parts(edge_list, Vec::new());
        let mcg = CallGraph::from_parts(Vec::new(), Vec::new());
        Classifier::CGraph(CallGraphClassifier::from_parts(bcg, mcg))
    }

    fn write_model(dir: &Path, name: &str, edges: usize) -> u64 {
        let text = save_classifier(&tiny_model(edges));
        let path = dir.join(format!("{name}.model"));
        std::fs::write(&path, &text).unwrap();
        text.len() as u64
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("leaps-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_caches_and_counts_hits() {
        let dir = temp_dir("hits");
        write_model(&dir, "a", 4);
        let registry = Registry::new(&dir, 1 << 20);
        let first = registry.get("a").unwrap();
        let second = registry.get("a").unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must return the cached Arc");
        let stats = registry.stats();
        assert_eq!((stats.loads, stats.hits, stats.loaded), (1, 1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_names_and_missing_files() {
        let dir = temp_dir("bad");
        let registry = Registry::new(&dir, 1 << 20);
        assert_eq!(registry.get("../etc/passwd").unwrap_err().exit_code(), 7);
        assert_eq!(registry.get("absent").unwrap_err().exit_code(), 6);
        std::fs::write(dir.join("garbage.model"), "not a model").unwrap();
        assert_eq!(registry.get("garbage").unwrap_err().exit_code(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicts_least_recently_used_under_cap() {
        let dir = temp_dir("lru");
        let a = write_model(&dir, "a", 8);
        let b = write_model(&dir, "b", 8);
        let c = write_model(&dir, "c", 8);
        assert_eq!(a, b);
        // Cap fits exactly two of the three models.
        let registry = Registry::new(&dir, a + b + c / 2);
        registry.get("a").unwrap();
        registry.get("b").unwrap();
        registry.get("a").unwrap(); // refresh a: b is now the LRU entry
        let held = registry.get("c").unwrap(); // evicts b
        let stats = registry.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.loaded, 2);
        // b reloads from disk (a fresh load, not a hit)...
        let loads_before = stats.loads;
        registry.get("b").unwrap();
        assert_eq!(registry.stats().loads, loads_before + 1);
        // ...while the evicted-but-held Arc stays usable.
        drop(held);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_model_is_served_but_not_retained_with_others() {
        let dir = temp_dir("oversize");
        write_model(&dir, "big", 64);
        let registry = Registry::new(&dir, 1); // cap smaller than any model
        registry.get("big").unwrap();
        assert_eq!(registry.stats().loaded, 1, "sole entry survives");
        write_model(&dir, "other", 4);
        registry.get("other").unwrap();
        assert_eq!(registry.stats().loaded, 1, "cap forces a single entry");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reload_swaps_the_cached_copy() {
        let dir = temp_dir("reload");
        write_model(&dir, "m", 2);
        let registry = Registry::new(&dir, 1 << 20);
        let old = registry.get("m").unwrap();
        write_model(&dir, "m", 6);
        registry.reload("m").unwrap();
        let new = registry.get("m").unwrap();
        assert!(!Arc::ptr_eq(&old, &new), "reload must produce a fresh classifier");
        // Reload of an uncached model validates the name but reads nothing.
        registry.reload("never-loaded").unwrap();
        assert_eq!(registry.reload("../x").unwrap_err().exit_code(), 7);
        // A reload that fails reports the torn file (naming it) but
        // keeps the last-known-good copy serving.
        std::fs::write(dir.join("m.model"), "garbage").unwrap();
        let err = registry.reload("m").unwrap_err();
        assert_eq!(err.exit_code(), 4);
        assert!(err.to_string().contains("m.model"), "{err}");
        assert_eq!(registry.stats().loaded, 1, "last-known-good entry must survive");
        let survivor = registry.get("m").unwrap();
        assert!(Arc::ptr_eq(&survivor, &new), "survivor must be the pre-failure copy");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
