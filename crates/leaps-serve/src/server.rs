//! The transport-independent server core: a model [`Registry`], a table
//! of [`Session`]s, and a [`Pool`] of workers draining session queues.
//!
//! The socket daemon (`crate::daemon`) is a thin line-protocol shell
//! around this type; embedders (tests, benchmarks, other services) drive
//! it directly with [`Server::open`] / [`Server::submit`] /
//! [`Server::close`].

use crate::lock_unpoisoned;
use crate::registry::{Registry, RegistryStats};
use crate::session::{drain, Session, SessionKey, SessionReport, Submit, VerdictSink};
use leaps_core::error::LeapsError;
use leaps_core::stream::StreamDetector;
use leaps_par::pool::Pool;
use leaps_trace::partition::PartitionedEvent;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::Duration;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Directory holding `<name>.model` files.
    pub models_dir: PathBuf,
    /// Model-cache byte cap (LRU eviction above it). Default 64 MiB.
    pub cache_cap_bytes: u64,
    /// Bounded per-session queue depth; a full queue sheds its oldest
    /// event per submit. Default 1024.
    pub queue_cap: usize,
    /// Worker threads draining session queues; 0 means the `leaps-par`
    /// thread policy (`--threads` / `LEAPS_THREADS` / cores).
    pub workers: usize,
    /// Idle TTL: sessions (and daemon connections) with no activity for
    /// this long are closed by the reaper / connection handler. `None`
    /// (the default, CLI `--idle-secs 0`) disables the policy.
    pub idle_ttl: Option<Duration>,
}

impl ServerConfig {
    /// Defaults over a model directory.
    #[must_use]
    pub fn new(models_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            models_dir: models_dir.into(),
            cache_cap_bytes: 64 << 20,
            queue_cap: 1024,
            workers: 0,
            idle_ttl: None,
        }
    }
}

/// Server-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions currently open.
    pub sessions: usize,
    /// Pool worker threads.
    pub workers: usize,
    /// Registry counters.
    pub registry: RegistryStats,
    /// Sessions opened over the server's lifetime.
    pub opened: u64,
    /// Sessions closed over the server's lifetime.
    pub closed: u64,
    /// Pool jobs that panicked (caught and counted, never fatal).
    pub panics: u64,
    /// Pool workers respawned after a panicking job.
    pub respawns: u64,
    /// Sessions closed by the idle reaper (included in `closed`).
    pub reaped: u64,
}

/// A multi-session streaming detection server.
///
/// Thread-safe: every method takes `&self`; connection threads,
/// embedders and pool workers share one `Arc<Server>`.
pub struct Server {
    registry: Registry,
    sessions: Mutex<BTreeMap<SessionKey, Arc<Session>>>,
    pool: Pool,
    queue_cap: usize,
    idle_ttl: Option<Duration>,
    next_shard: AtomicUsize,
    shutting_down: AtomicBool,
    opened: AtomicUsize,
    closed: AtomicUsize,
    reaped: AtomicUsize,
}

impl Server {
    /// Builds a server: spawns the worker pool and opens the registry.
    ///
    /// # Panics
    ///
    /// Panics if the worker pool cannot be spawned; long-running
    /// services use [`Server::try_new`].
    #[must_use]
    pub fn new(config: &ServerConfig) -> Server {
        Server::try_new(config).expect("spawning server worker pool")
    }

    /// Fallible constructor: reports rather than panicking when the
    /// worker pool cannot be spawned (thread exhaustion at startup).
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the pool cannot be built.
    pub fn try_new(config: &ServerConfig) -> Result<Server, LeapsError> {
        let threads = if config.workers == 0 { leaps_par::thread_count() } else { config.workers };
        let pool = Pool::try_new(threads)
            .map_err(|e| LeapsError::protocol(format!("spawning worker pool: {e}")))?;
        Ok(Server {
            registry: Registry::new(&config.models_dir, config.cache_cap_bytes),
            sessions: Mutex::new(BTreeMap::new()),
            pool,
            queue_cap: config.queue_cap.max(1),
            idle_ttl: config.idle_ttl.filter(|ttl| !ttl.is_zero()),
            next_shard: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            opened: AtomicUsize::new(0),
            closed: AtomicUsize::new(0),
            reaped: AtomicUsize::new(0),
        })
    }

    /// The model registry (for `RELOAD` and stats).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The configured idle TTL, if the idle policy is enabled.
    #[must_use]
    pub fn idle_ttl(&self) -> Option<Duration> {
        self.idle_ttl
    }

    /// Marks the server as shutting down: new opens are refused while
    /// existing sessions keep draining. Transports use this to stop
    /// accepting before [`Server::close_all`].
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Whether [`Server::begin_shutdown`] has been called.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    fn session(&self, client: &str, pid: u32) -> Result<Arc<Session>, LeapsError> {
        lock_unpoisoned(&self.sessions)
            .get(&(client.to_owned(), pid))
            .cloned()
            .ok_or_else(|| LeapsError::protocol(format!("no session ({client:?}, {pid})")))
    }

    /// Opens session `(client, pid)` against registry model `model`,
    /// delivering its verdicts to `sink`.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the session already exists or the
    /// server is shutting down; registry families if the model fails to
    /// load.
    pub fn open(
        &self,
        client: &str,
        pid: u32,
        model: &str,
        sink: Arc<dyn VerdictSink>,
    ) -> Result<(), LeapsError> {
        if self.is_shutting_down() {
            return Err(LeapsError::protocol("server is shutting down"));
        }
        let classifier = self.registry.get(model)?;
        let mut sessions = lock_unpoisoned(&self.sessions);
        let key: SessionKey = (client.to_owned(), pid);
        if sessions.contains_key(&key) {
            return Err(LeapsError::protocol(format!("session ({client:?}, {pid}) already open")));
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let detector = StreamDetector::new((*classifier).clone());
        sessions.insert(key, Arc::new(Session::new(pid, model.to_owned(), shard, detector, sink)));
        self.opened.fetch_add(1, Ordering::Relaxed);
        leaps_obs::counter!("serve.opened").inc();
        leaps_obs::gauge!("serve.sessions").add(1);
        Ok(())
    }

    /// Submits one event to session `(client, pid)`.
    ///
    /// Never blocks on detection work: the event is queued (shedding the
    /// oldest queued event if the queue is full) and a drain job is
    /// scheduled on the session's pool shard if none is in flight.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the session does not exist or is
    /// closing.
    pub fn submit(
        &self,
        client: &str,
        pid: u32,
        event: PartitionedEvent,
    ) -> Result<Submit, LeapsError> {
        let session = self.session(client, pid)?;
        let (outcome, schedule) = {
            let mut state = lock_unpoisoned(&session.state);
            if state.closing {
                return Err(LeapsError::protocol(format!(
                    "session ({client:?}, {pid}) is closing"
                )));
            }
            state.submitted += 1;
            state.last_activity_us = leaps_obs::now_micros();
            leaps_obs::counter!("serve.events").inc();
            let outcome = if state.queue.len() >= self.queue_cap {
                state.queue.pop_front();
                state.shed += 1;
                leaps_obs::counter!("serve.shed").inc();
                Submit::Busy { shed: state.shed }
            } else {
                Submit::Accepted { queued: state.queue.len() + 1 }
            };
            state.queue.push_back(event);
            let schedule = !state.scheduled;
            state.scheduled = true;
            (outcome, schedule)
        };
        if schedule {
            let worker_session = Arc::clone(&session);
            self.pool.submit(session.shard, move || drain(&worker_session));
        }
        Ok(outcome)
    }

    /// Drains and closes session `(client, pid)`, returning its final
    /// counters. Blocks until every queued event has been scored and
    /// every verdict delivered.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the session does not exist or another
    /// closer is already draining it.
    pub fn close(&self, client: &str, pid: u32) -> Result<SessionReport, LeapsError> {
        let session = self.session(client, pid)?;
        {
            let mut state = lock_unpoisoned(&session.state);
            if state.closing {
                return Err(LeapsError::protocol(format!(
                    "session ({client:?}, {pid}) is already closing"
                )));
            }
            state.closing = true;
            while state.scheduled || !state.queue.is_empty() {
                // A drain job that panicked cleared `scheduled` with the
                // queue non-empty; reschedule so the leftovers are still
                // scored and this wait terminates.
                if !state.scheduled && !state.queue.is_empty() {
                    state.scheduled = true;
                    let worker_session = Arc::clone(&session);
                    self.pool.submit(session.shard, move || drain(&worker_session));
                }
                state = session.idle.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }
        lock_unpoisoned(&self.sessions).remove(&(client.to_owned(), pid));
        self.closed.fetch_add(1, Ordering::Relaxed);
        leaps_obs::counter!("serve.closed").inc();
        leaps_obs::gauge!("serve.sessions").add(-1);
        Ok(session.report())
    }

    /// Closes every session of `client` (connection teardown), returning
    /// the per-pid reports.
    pub fn close_client(&self, client: &str) -> Vec<(u32, SessionReport)> {
        let pids: Vec<u32> = {
            let sessions = lock_unpoisoned(&self.sessions);
            sessions.keys().filter(|(c, _)| c == client).map(|&(_, pid)| pid).collect()
        };
        pids.into_iter()
            .filter_map(|pid| self.close(client, pid).ok().map(|report| (pid, report)))
            .collect()
    }

    /// Drains and closes every open session (graceful shutdown),
    /// returning the final reports.
    pub fn close_all(&self) -> Vec<(SessionKey, SessionReport)> {
        let keys: Vec<SessionKey> = lock_unpoisoned(&self.sessions).keys().cloned().collect();
        keys.into_iter()
            .filter_map(|(client, pid)| {
                self.close(&client, pid).ok().map(|report| ((client, pid), report))
            })
            .collect()
    }

    /// Per-session counters without closing the session.
    ///
    /// # Errors
    ///
    /// [`LeapsError::Protocol`] if the session does not exist.
    pub fn session_stats(&self, client: &str, pid: u32) -> Result<SessionReport, LeapsError> {
        Ok(self.session(client, pid)?.report())
    }

    /// Hot-reloads a registry model (see [`Registry::reload`]).
    ///
    /// # Errors
    ///
    /// Registry families.
    pub fn reload(&self, model: &str) -> Result<(), LeapsError> {
        self.registry.reload(model)
    }

    /// Server-wide counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        let pool = self.pool.stats();
        ServerStats {
            sessions: lock_unpoisoned(&self.sessions).len(),
            workers: pool.workers,
            registry: self.registry.stats(),
            opened: self.opened.load(Ordering::Relaxed) as u64,
            closed: self.closed.load(Ordering::Relaxed) as u64,
            panics: pool.panics,
            respawns: pool.respawns,
            reaped: self.reaped.load(Ordering::Relaxed) as u64,
        }
    }

    /// Closes every session idle past `ttl` (no submit since), returning
    /// how many were reaped. Freed sessions release their queue budget
    /// and detector immediately; a client touching a reaped session gets
    /// the ordinary "no session" protocol error.
    pub fn reap_idle(&self, ttl: Duration) -> usize {
        let now_us = leaps_obs::now_micros();
        let ttl_us = u64::try_from(ttl.as_micros()).unwrap_or(u64::MAX);
        let victims: Vec<SessionKey> = {
            let sessions = lock_unpoisoned(&self.sessions);
            sessions
                .iter()
                .filter(|(_, session)| {
                    let state = lock_unpoisoned(&session.state);
                    !state.closing && now_us.saturating_sub(state.last_activity_us) > ttl_us
                })
                .map(|(key, _)| key.clone())
                .collect()
        };
        let mut reaped = 0;
        for (client, pid) in victims {
            // Racing closers are fine: close() refuses a second closer.
            if self.close(&client, pid).is_ok() {
                reaped += 1;
            }
        }
        self.reaped.fetch_add(reaped, Ordering::Relaxed);
        leaps_obs::counter!("serve.reaped").add(reaped as u64);
        reaped
    }

    /// Starts the idle-session reaper thread, if an idle TTL is
    /// configured. The thread holds only a [`Weak`] reference and polls
    /// at a fraction of the TTL, so it exits on its own when the server
    /// is dropped or [`Server::begin_shutdown`] is called — joining the
    /// returned handle is optional tidiness, not a liveness requirement.
    #[must_use]
    pub fn start_reaper(self: &Arc<Server>) -> Option<std::thread::JoinHandle<()>> {
        let ttl = self.idle_ttl?;
        let poll = (ttl / 2).clamp(Duration::from_millis(10), Duration::from_millis(500));
        let weak: Weak<Server> = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("leaps-reaper".to_owned())
            .spawn(move || loop {
                std::thread::sleep(poll);
                let Some(server) = weak.upgrade() else { return };
                if server.is_shutting_down() {
                    return;
                }
                let _ = server.reap_idle(ttl);
            })
            .expect("spawning reaper thread");
        Some(handle)
    }

    /// Chaos hook: submits a job to pool shard `shard` that panics
    /// immediately. Used by the `PANIC` protocol command (gated behind
    /// `LEAPS_CHAOS=1`) and tests to prove the supervision invariant:
    /// the worker respawns, queued session drains still run in order,
    /// and `HEALTH` reports the panic/respawn.
    pub fn inject_panic_job(&self, shard: usize) {
        self.pool.submit(shard, || panic!("injected panic (chaos hook)"));
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("stats", &self.stats()).finish()
    }
}
