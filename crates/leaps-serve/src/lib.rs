//! # leaps-serve — the long-running LEAPS detection service
//!
//! The paper's deployment shape is host monitoring: event streams from
//! many live processes, each scored online against a trained
//! per-application model. This crate turns the one-shot pipeline into
//! that long-lived component:
//!
//! * a **model [`Registry`]** — named classifiers loaded on demand from
//!   a model directory via `leaps_core::persist`, cached under a byte
//!   cap with LRU eviction, hot-reloadable (`RELOAD`);
//! * a **session table** — independent [`StreamDetector`] instances
//!   keyed `(client, pid)`, opened and closed by protocol commands, each
//!   preserving the degraded-telemetry semantics of the standalone
//!   detector;
//! * a **line protocol** (`HELLO` / `OPEN` / `EVENT` / `CLOSE` /
//!   `STATS` / `RELOAD` / `SHUTDOWN`) over a Unix domain socket or TCP,
//!   with events fanned out to a `leaps_par::pool` worker pool;
//! * **bounded per-session queues with backpressure and load
//!   shedding** — a flooded session answers `BUSY` and sheds its oldest
//!   events (counted per session) instead of stalling the accept loop,
//!   and shutdown drains every session gracefully;
//! * a **self-healing failure model** — pool workers are supervised
//!   (a panicking job is caught, counted and the worker respawned with
//!   its shard queue intact), connections carry read deadlines, idle
//!   sessions are reaped past a configurable TTL, locks are
//!   poison-tolerant, and the `HEALTH` command exposes it all to an
//!   external supervisor (see DESIGN.md §12).
//!
//! The [`Server`] core is transport-independent: tests and benchmarks
//! embed it in-process (see [`BufferSink`]), while the CLI's
//! `leaps serve` wraps it in the socket [`daemon`]. Per-session verdict
//! sequences are **bit-identical** to a standalone [`StreamDetector`]
//! fed the same events in the same order — the service adds
//! concurrency, never a different answer.
//!
//! [`StreamDetector`]: leaps_core::stream::StreamDetector

pub mod client;
pub mod daemon;
pub mod proto;
pub mod registry;
pub mod server;
pub mod session;

pub use client::Client;
pub use daemon::{BoundDaemon, Endpoint};
pub use proto::{Command, ProtoError, Reply};
pub use registry::{Registry, RegistryStats};
pub use server::{Server, ServerConfig, ServerStats};
pub use session::{BufferSink, SessionKey, SessionReport, Submit, VerdictSink};

/// Poison-tolerant locking, re-exported from [`leaps_par`] so every
/// crate (and downstream user) takes locks the same way: every lock
/// in this crate guards state that stays consistent across a panic
/// (counters, queues whose invariants are re-checked by every drain
/// pass), so a worker that panicked while holding one must not
/// cascade into aborting connection threads or the daemon itself —
/// the self-healing contract is that one crashing job costs at most
/// its own session.
pub use leaps_par::lock_unpoisoned;
