//! Wire-level tests of the `METRICS [reset]` command against a live
//! daemon.
//!
//! These live in their own integration-test binary (own process, own
//! [`leaps_obs`] global registry) so exact post-reset assertions cannot
//! race with the other service tests' traffic.

use leaps_cgraph::classify::CallGraphClassifier;
use leaps_cgraph::graph::CallGraph;
use leaps_core::persist::save_classifier;
use leaps_core::pipeline::Classifier;
use leaps_etw::event::{EventType, StackFrame};
use leaps_etw::Va;
use leaps_serve::{Client, Command, Endpoint, Server, ServerConfig};
use leaps_trace::partition::PartitionedEvent;
use std::path::PathBuf;
use std::sync::Arc;

/// Same tiny call-graph model as the service tests: `sys!a → sys!b`
/// benign, `sys!x → sys!y` malicious-only.
fn tiny_classifier() -> Classifier {
    let chain_b = vec!["sys!a".to_owned(), "sys!b".to_owned()];
    let chain_m = vec!["sys!x".to_owned(), "sys!y".to_owned()];
    let bcg = CallGraph::from_parts([("sys!a".to_owned(), "sys!b".to_owned())], [chain_b.clone()]);
    let mcg = CallGraph::from_parts(
        [("sys!a".to_owned(), "sys!b".to_owned()), ("sys!x".to_owned(), "sys!y".to_owned())],
        [chain_b, chain_m],
    );
    Classifier::CGraph(CallGraphClassifier::from_parts(bcg, mcg))
}

fn event(num: u64, benign: bool) -> PartitionedEvent {
    let (m1, f1, m2, f2) = if benign { ("sys", "a", "sys", "b") } else { ("sys", "x", "sys", "y") };
    PartitionedEvent {
        num,
        etype: EventType::FileRead,
        tid: 1,
        app_stack: vec![StackFrame::new("app", "main", Va(0x400000 + num), true)],
        system_stack: vec![
            StackFrame::new(m1, f1, Va(0x7000_0000 + num), false),
            StackFrame::new(m2, f2, Va(0x7000_1000 + num), false),
        ],
        truth: None,
    }
}

fn models_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("leaps-metrics-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.model"), save_classifier(&tiny_classifier())).unwrap();
    dir
}

#[test]
fn metrics_probe_works_without_hello_and_reset_rezeroes_counters() {
    let config = ServerConfig { workers: 2, ..ServerConfig::new(models_dir("wire")) };
    let server = Arc::new(Server::new(&config));
    let bound = Endpoint::Tcp("127.0.0.1:0".to_owned()).bind().unwrap();
    let endpoint = bound.endpoint().clone();
    let daemon_server = Arc::clone(&server);
    let daemon = std::thread::spawn(move || bound.run(&daemon_server).unwrap());

    let mut verdicts = Vec::new();
    // No HELLO: like HEALTH, METRICS is a supervisor probe.
    let mut probe = Client::connect(&endpoint).unwrap();
    let before = probe.fetch_metrics(false, &mut verdicts).unwrap();
    assert_eq!(before.counter("serve.events"), None, "no traffic yet, no counter yet");

    // Stream a session; the counters must account for its 8 events.
    let mut client = Client::connect(&endpoint).unwrap();
    client.expect_ok(&Command::Hello { client: "mtest".into() }, &mut verdicts).unwrap();
    client.expect_ok(&Command::Open { pid: 3, model: "tiny".into() }, &mut verdicts).unwrap();
    for n in 0..8 {
        client.request(&Command::Event { pid: 3, event: event(n, true) }, &mut verdicts).unwrap();
    }
    client.expect_ok(&Command::Close { pid: 3 }, &mut verdicts).unwrap();

    let after = probe.fetch_metrics(false, &mut verdicts).unwrap();
    assert_eq!(after.counter("serve.events"), Some(8), "{after:?}");
    assert_eq!(after.counter("serve.verdicts"), Some(8), "{after:?}");
    assert_eq!(after.counter("serve.opened"), Some(1), "{after:?}");
    assert_eq!(after.counter("serve.closed"), Some(1), "{after:?}");
    assert_eq!(after.counter("serve.degraded"), Some(0), "clean stream has no degradations");
    assert!(after.counter("pool.jobs").unwrap_or(0) >= 1, "drain jobs must be counted");
    assert!(
        after.hist("proto.event.us").is_some_and(|h| h.count == 8),
        "per-command latency histogram must record every EVENT: {after:?}"
    );
    assert_eq!(after.gauge("pool.workers"), Some(2), "{after:?}");
    assert_eq!(after.gauge("serve.sessions"), Some(0), "session was closed");
    // Consistency with the HEALTH vocabulary: same names, same story.
    let health = probe.expect_ok(&Command::Health, &mut verdicts).unwrap();
    assert!(health.contains("pool.workers=2"), "{health}");
    assert!(health.contains("serve.sessions=0"), "{health}");
    assert!(health.contains("pool.panics=0"), "{health}");

    // `reset` returns the pre-reset snapshot, then zeroes counters and
    // histograms in place; gauges keep their level.
    let dump = probe.fetch_metrics(true, &mut verdicts).unwrap();
    assert_eq!(dump.counter("serve.events"), Some(8), "reset returns the pre-reset snapshot");
    let zeroed = probe.fetch_metrics(false, &mut verdicts).unwrap();
    assert_eq!(zeroed.counter("serve.events"), Some(0), "{zeroed:?}");
    assert_eq!(zeroed.counter("serve.verdicts"), Some(0), "{zeroed:?}");
    assert_eq!(zeroed.hist("proto.event.us").map(|h| h.count), Some(0));
    assert_eq!(zeroed.gauge("pool.workers"), Some(2), "gauges survive reset");

    let mut closer = Client::connect(&endpoint).unwrap();
    closer.expect_ok(&Command::Hello { client: "mcloser".into() }, &mut verdicts).unwrap();
    closer.expect_ok(&Command::Shutdown, &mut verdicts).unwrap();
    daemon.join().unwrap();
}

#[test]
fn metrics_rejects_unknown_arguments() {
    assert!(Command::parse_line("METRICS reset\n").is_ok());
    assert!(Command::parse_line("METRICS hard\n").is_err());
    assert!(Command::parse_line("METRICS reset now\n").is_err());
}
