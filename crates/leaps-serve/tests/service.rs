//! Service-level tests over a cheap call-graph model: session lifecycle,
//! deterministic load shedding with `BUSY` outcomes, accept-path
//! liveness while a session floods, and the socket daemon end-to-end on
//! both transports.

use leaps_cgraph::classify::CallGraphClassifier;
use leaps_cgraph::graph::CallGraph;
use leaps_core::persist::save_classifier;
use leaps_core::pipeline::Classifier;
use leaps_core::stream::Verdict;
use leaps_etw::event::{EventType, StackFrame};
use leaps_etw::Va;
use leaps_serve::{
    lock_unpoisoned, BufferSink, Client, Command, Endpoint, Reply, Server, ServerConfig, Submit,
    VerdictSink,
};
use leaps_trace::partition::PartitionedEvent;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

/// A benign/malicious pair of invocation chains and the matching
/// call-graph classifier: `sys!a → sys!b` is benign, `sys!x → sys!y`
/// malicious-only.
fn tiny_classifier() -> Classifier {
    let chain_b = vec!["sys!a".to_owned(), "sys!b".to_owned()];
    let chain_m = vec!["sys!x".to_owned(), "sys!y".to_owned()];
    let bcg = CallGraph::from_parts([("sys!a".to_owned(), "sys!b".to_owned())], [chain_b.clone()]);
    let mcg = CallGraph::from_parts(
        [("sys!a".to_owned(), "sys!b".to_owned()), ("sys!x".to_owned(), "sys!y".to_owned())],
        [chain_b, chain_m],
    );
    Classifier::CGraph(CallGraphClassifier::from_parts(bcg, mcg))
}

fn event(num: u64, benign: bool) -> PartitionedEvent {
    let (m1, f1, m2, f2) = if benign { ("sys", "a", "sys", "b") } else { ("sys", "x", "sys", "y") };
    PartitionedEvent {
        num,
        etype: EventType::FileRead,
        tid: 1,
        app_stack: vec![StackFrame::new("app", "main", Va(0x400000 + num), true)],
        system_stack: vec![
            StackFrame::new(m1, f1, Va(0x7000_0000 + num), false),
            StackFrame::new(m2, f2, Va(0x7000_1000 + num), false),
        ],
        truth: None,
    }
}

fn models_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("leaps-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("tiny.model"), save_classifier(&tiny_classifier())).unwrap();
    dir
}

fn config(tag: &str) -> ServerConfig {
    ServerConfig { workers: 2, ..ServerConfig::new(models_dir(tag)) }
}

#[test]
fn session_lifecycle_and_verdict_equivalence() {
    let server = Server::new(&config("lifecycle"));
    let sinks: Vec<Arc<BufferSink>> = (0..3).map(|_| Arc::new(BufferSink::new())).collect();
    for (pid, sink) in sinks.iter().enumerate() {
        let sink: Arc<dyn VerdictSink> = Arc::clone(sink) as Arc<dyn VerdictSink>;
        server.open("cli", pid as u32, "tiny", sink).unwrap();
    }
    assert_eq!(server.stats().sessions, 3);
    // Double-open and unknown sessions are protocol errors.
    assert_eq!(
        server.open("cli", 0, "tiny", Arc::new(BufferSink::new())).unwrap_err().exit_code(),
        7
    );
    assert_eq!(server.submit("cli", 99, event(1, true)).unwrap_err().exit_code(), 7);

    // Interleave three per-session streams (session i sees events where
    // num % 3 == i, with a malicious run inside session 1).
    let per_session: Vec<Vec<PartitionedEvent>> = (0..3u64)
        .map(|i| (0..60).map(|n| event(3 * n + i, !(i == 1 && (20..30).contains(&n)))).collect())
        .collect();
    for n in 0..60 {
        for (pid, events) in per_session.iter().enumerate() {
            assert!(matches!(
                server.submit("cli", pid as u32, events[n].clone()).unwrap(),
                Submit::Accepted { .. }
            ));
        }
    }
    for (pid, (sink, events)) in sinks.iter().zip(&per_session).enumerate() {
        let report = server.close("cli", pid as u32).unwrap();
        assert_eq!(report.submitted, 60);
        assert_eq!(report.shed, 0);
        assert_eq!(report.verdicts, 60, "call-graph model scores per event");
        // Bit-identical to a standalone detector over the same order.
        let mut standalone = leaps_core::stream::StreamDetector::new(tiny_classifier());
        let expected: Vec<Verdict> = standalone.push_all(events.iter().cloned());
        assert_eq!(sink.take(), expected);
    }
    assert_eq!(server.stats().sessions, 0);
    assert_eq!(server.close("cli", 0).unwrap_err().exit_code(), 7, "close is terminal");
}

/// A sink whose first delivery parks until released — makes queue
/// overflow deterministic without sleeps.
struct GateSink {
    entered: Sender<()>,
    release: Mutex<Receiver<()>>,
    gated: Mutex<bool>,
    inner: BufferSink,
}

impl VerdictSink for GateSink {
    fn deliver(&self, pid: u32, verdict: &Verdict) {
        let mut gated = lock_unpoisoned(&self.gated);
        if *gated {
            *gated = false;
            self.entered.send(()).unwrap();
            lock_unpoisoned(&self.release).recv().unwrap();
        }
        drop(gated);
        self.inner.deliver(pid, verdict);
    }
}

#[test]
fn full_queue_sheds_oldest_and_reports_busy_without_blocking() {
    let cfg = ServerConfig { workers: 2, queue_cap: 2, ..ServerConfig::new(models_dir("shed")) };
    let server = Server::new(&cfg);
    let (entered_tx, entered_rx) = channel();
    let (release_tx, release_rx) = channel();
    let sink = Arc::new(GateSink {
        entered: entered_tx,
        release: Mutex::new(release_rx),
        gated: Mutex::new(true),
        inner: BufferSink::new(),
    });
    server.open("cli", 1, "tiny", Arc::clone(&sink) as Arc<dyn VerdictSink>).unwrap();

    // Event 0 is drained immediately; its delivery parks the worker.
    assert!(matches!(server.submit("cli", 1, event(0, true)).unwrap(), Submit::Accepted { .. }));
    entered_rx.recv().unwrap();

    // With the worker parked, fill the queue (cap 2) and overflow it.
    assert_eq!(server.submit("cli", 1, event(1, true)).unwrap(), Submit::Accepted { queued: 1 });
    assert_eq!(server.submit("cli", 1, event(2, true)).unwrap(), Submit::Accepted { queued: 2 });
    assert_eq!(server.submit("cli", 1, event(3, true)).unwrap(), Submit::Busy { shed: 1 });
    assert_eq!(server.submit("cli", 1, event(4, true)).unwrap(), Submit::Busy { shed: 2 });

    // While that session floods, a second session on the other worker
    // opens, scores and closes — the accept path never stalls. Waiting
    // for the tiny queue to drain between submits keeps this session's
    // own backpressure out of the picture.
    let other = Arc::new(BufferSink::new());
    server.open("cli", 2, "tiny", Arc::clone(&other) as Arc<dyn VerdictSink>).unwrap();
    for n in 0..5 {
        assert!(matches!(
            server.submit("cli", 2, event(n, true)).unwrap(),
            Submit::Accepted { .. }
        ));
        while server.session_stats("cli", 2).unwrap().queued > 0 {
            std::thread::yield_now();
        }
    }
    let report = server.close("cli", 2).unwrap();
    assert_eq!((report.verdicts, report.shed), (5, 0));

    release_tx.send(()).unwrap();
    let report = server.close("cli", 1).unwrap();
    assert_eq!(report.submitted, 5);
    assert_eq!(report.shed, 2, "events 1 and 2 were shed as oldest");
    assert_eq!(report.verdicts, 3, "events 0, 3, 4 were scored");
    let nums: Vec<u64> = sink.inner.take().iter().map(|v| v.last_event).collect();
    assert_eq!(nums, vec![0, 3, 4]);
    assert!(report.stream.gaps > 0, "shedding surfaces as sequence gaps");
}

#[test]
fn daemon_speaks_the_protocol_over_tcp_and_shuts_down_gracefully() {
    let server = Arc::new(Server::new(&config("tcp")));
    let bound = Endpoint::Tcp("127.0.0.1:0".to_owned()).bind().unwrap();
    let endpoint = bound.endpoint().clone();
    let daemon_server = Arc::clone(&server);
    let daemon = std::thread::spawn(move || bound.run(&daemon_server).unwrap());

    let mut verdicts: Vec<(u32, Verdict)> = Vec::new();
    let mut client = Client::connect(&endpoint).unwrap();
    // State machine: HELLO is mandatory and unique.
    let ack = client.request(&Command::Open { pid: 7, model: "tiny".into() }, &mut verdicts);
    assert!(matches!(ack.unwrap(), Reply::Err { family, .. } if family == "proto"));
    let detail =
        client.expect_ok(&Command::Hello { client: "itest".into() }, &mut verdicts).unwrap();
    assert!(detail.contains("leaps-serve v1"), "{detail}");

    // Unknown model → ERR io (file not found), connection stays usable.
    let ack = client.request(&Command::Open { pid: 7, model: "absent".into() }, &mut verdicts);
    assert!(matches!(ack.unwrap(), Reply::Err { family, .. } if family == "io"));

    client.expect_ok(&Command::Open { pid: 7, model: "tiny".into() }, &mut verdicts).unwrap();
    for n in 0..10 {
        let ack = client
            .request(&Command::Event { pid: 7, event: event(n, n % 2 == 0) }, &mut verdicts)
            .unwrap();
        assert!(ack.is_ack());
    }
    let detail = client.expect_ok(&Command::Close { pid: 7 }, &mut verdicts).unwrap();
    assert!(detail.contains("submitted=10"), "{detail}");
    assert_eq!(verdicts.len(), 10, "all verdicts delivered by close");
    assert!(verdicts.iter().all(|(pid, _)| *pid == 7));
    let benign: Vec<bool> = verdicts.iter().map(|(_, v)| v.benign).collect();
    let expected: Vec<bool> = (0..10).map(|n| n % 2 == 0).collect();
    assert_eq!(benign, expected);

    let detail = client.expect_ok(&Command::Stats { pid: None }, &mut verdicts).unwrap();
    assert!(detail.contains("sessions=0"), "{detail}");
    client.expect_ok(&Command::Reload { model: "tiny".into() }, &mut verdicts).unwrap();
    client.expect_ok(&Command::Shutdown, &mut verdicts).unwrap();
    drop(client);
    let drained = daemon.join().unwrap();
    assert_eq!(drained, 0, "no sessions left open at shutdown");
}

/// A sink that panics on its first delivery, then behaves — the
/// "crashing job" of the self-healing contract.
struct PanicOnceSink {
    armed: Mutex<bool>,
    inner: BufferSink,
}

impl VerdictSink for PanicOnceSink {
    fn deliver(&self, pid: u32, verdict: &Verdict) {
        let mut armed = self.armed.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if *armed {
            *armed = false;
            panic!("sink crash (test)");
        }
        drop(armed);
        self.inner.deliver(pid, verdict);
    }
}

#[test]
fn panicking_sink_never_wedges_the_server() {
    let server =
        Server::new(&ServerConfig { workers: 1, ..ServerConfig::new(models_dir("wedge")) });
    let sink = Arc::new(PanicOnceSink { armed: Mutex::new(true), inner: BufferSink::new() });
    server.open("cli", 1, "tiny", Arc::clone(&sink) as Arc<dyn VerdictSink>).unwrap();
    // The first drain job panics mid-delivery; the worker respawns and
    // the session must still close (close reschedules leftovers).
    server.submit("cli", 1, event(0, true)).unwrap();
    for n in 1..10 {
        // Submits keep being accepted even while the job is crashing.
        server.submit("cli", 1, event(n, true)).unwrap();
    }
    let report = server.close("cli", 1).unwrap();
    assert_eq!(report.submitted, 10);
    assert_eq!(report.queued, 0, "close drains everything, panic or not");
    // The dying worker counts its panic *after* waking closers, so give
    // the counters a moment to land.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = server.stats();
        if stats.panics >= 1 && stats.respawns >= 1 {
            assert_eq!(stats.panics, stats.respawns, "every panic respawned a worker");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sink panic never counted: {stats:?}");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // A healthy session on the same (respawned) worker still works and
    // stays bit-identical to standalone.
    let sink2 = Arc::new(BufferSink::new());
    server.open("cli", 2, "tiny", Arc::clone(&sink2) as Arc<dyn VerdictSink>).unwrap();
    let events: Vec<PartitionedEvent> = (0..20).map(|n| event(n, n % 3 != 0)).collect();
    for e in &events {
        server.submit("cli", 2, e.clone()).unwrap();
    }
    server.close("cli", 2).unwrap();
    let mut standalone = leaps_core::stream::StreamDetector::new(tiny_classifier());
    assert_eq!(sink2.take(), standalone.push_all(events.iter().cloned()));
}

#[test]
fn idle_reaper_closes_stale_sessions_and_counts_them() {
    let cfg = ServerConfig {
        workers: 1,
        idle_ttl: Some(std::time::Duration::from_millis(50)),
        ..ServerConfig::new(models_dir("reap"))
    };
    let server = Arc::new(Server::new(&cfg));
    let reaper = server.start_reaper().expect("TTL configured → reaper runs");

    let idle = Arc::new(BufferSink::new());
    server.open("cli", 1, "tiny", Arc::clone(&idle) as Arc<dyn VerdictSink>).unwrap();
    server.submit("cli", 1, event(0, true)).unwrap();

    // The idle session is reaped once it passes the TTL...
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().sessions > 0 {
        assert!(std::time::Instant::now() < deadline, "idle session never reaped");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = server.stats();
    assert_eq!(stats.reaped, 1);
    assert_eq!(stats.closed, 1, "reaped sessions count as closed");
    assert_eq!(idle.len(), 1, "queued work was drained, not dropped, before the reap");
    assert_eq!(server.submit("cli", 1, event(1, true)).unwrap_err().exit_code(), 7);

    // ...while an active session survives arbitrarily many TTLs: keep
    // the submit gap (~1ms) far inside the 50ms TTL for ~4 TTLs.
    let busy = Arc::new(BufferSink::new());
    server.open("cli", 2, "tiny", Arc::clone(&busy) as Arc<dyn VerdictSink>).unwrap();
    let until = std::time::Instant::now() + std::time::Duration::from_millis(200);
    let mut n = 0;
    while std::time::Instant::now() < until {
        server.submit("cli", 2, event(n, true)).expect("active session must not be reaped");
        n += 1;
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(server.stats().sessions, 1, "active session not reaped");
    server.close("cli", 2).unwrap();

    server.begin_shutdown();
    reaper.join().unwrap();
}

#[test]
fn no_reaper_without_ttl_and_zero_ttl_is_disabled() {
    let server = Arc::new(Server::new(&config("nottl")));
    assert!(server.idle_ttl().is_none());
    assert!(server.start_reaper().is_none());
    let cfg = ServerConfig {
        idle_ttl: Some(std::time::Duration::ZERO),
        ..ServerConfig::new(models_dir("zerottl"))
    };
    assert!(Server::new(&cfg).idle_ttl().is_none(), "0 disables the policy");
}

#[test]
fn shutdown_does_not_hang_on_an_idle_connected_client() {
    let server = Arc::new(Server::new(&config("idleconn")));
    let bound = Endpoint::Tcp("127.0.0.1:0".to_owned()).bind().unwrap();
    let endpoint = bound.endpoint().clone();
    let daemon_server = Arc::clone(&server);
    let daemon = std::thread::spawn(move || bound.run(&daemon_server).unwrap());

    // This client connects, says HELLO, and then goes silent forever.
    let mut verdicts = Vec::new();
    let mut idler = Client::connect(&endpoint).unwrap();
    idler.expect_ok(&Command::Hello { client: "idler".into() }, &mut verdicts).unwrap();

    // SHUTDOWN from a second client must still terminate the daemon:
    // the idler's handler thread notices shutdown on its read deadline.
    let mut closer = Client::connect(&endpoint).unwrap();
    closer.expect_ok(&Command::Hello { client: "closer".into() }, &mut verdicts).unwrap();
    closer.expect_ok(&Command::Shutdown, &mut verdicts).unwrap();
    drop(closer);
    daemon.join().unwrap();
    drop(idler);
}

#[test]
fn health_probe_works_without_hello_and_reflects_respawns() {
    let server = Arc::new(Server::new(&config("health")));
    let bound = Endpoint::Tcp("127.0.0.1:0".to_owned()).bind().unwrap();
    let endpoint = bound.endpoint().clone();
    let daemon_server = Arc::clone(&server);
    let daemon = std::thread::spawn(move || bound.run(&daemon_server).unwrap());

    let mut verdicts = Vec::new();
    let mut probe = Client::connect(&endpoint).unwrap();
    // No HELLO: supervisors probe without claiming a client identity.
    let detail = probe.expect_ok(&Command::Health, &mut verdicts).unwrap();
    for token in ["health", "workers=2", "panics=0", "respawns=0", "sessions=0", "idle_secs=0"] {
        assert!(detail.contains(token), "missing {token:?} in {detail}");
    }

    // PANIC is refused unless the daemon opted into chaos…
    let chaos = std::env::var("LEAPS_CHAOS").is_ok();
    if !chaos {
        let ack = probe.request(&Command::Panic { shard: 0 }, &mut verdicts).unwrap();
        assert!(matches!(ack, Reply::Err { family, .. } if family == "proto"));
    }
    // …but the server-side hook always works for embedders.
    server.inject_panic_job(0);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().respawns < 1 {
        assert!(std::time::Instant::now() < deadline, "injected panic never counted");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let detail = probe.expect_ok(&Command::Health, &mut verdicts).unwrap();
    assert!(detail.contains("panics=1"), "{detail}");
    assert!(detail.contains("respawns=1"), "{detail}");

    let mut closer = Client::connect(&endpoint).unwrap();
    closer.expect_ok(&Command::Hello { client: "closer".into() }, &mut verdicts).unwrap();
    closer.expect_ok(&Command::Shutdown, &mut verdicts).unwrap();
    daemon.join().unwrap();
}

#[test]
fn try_new_reports_zero_worker_config() {
    // workers=0 means "default policy", so force a pool failure via the
    // pool's own contract instead: the server surfaces it as an error.
    let cfg = ServerConfig { workers: 2, ..ServerConfig::new(models_dir("trynew")) };
    assert!(Server::try_new(&cfg).is_ok());
}

#[cfg(unix)]
#[test]
fn daemon_drains_abandoned_sessions_on_unix_socket() {
    let dir = models_dir("unix");
    let server = Arc::new(Server::new(&ServerConfig { workers: 1, ..ServerConfig::new(&dir) }));
    let socket = dir.join("serve.sock");
    let endpoint = Endpoint::Unix(socket.clone());
    let bound = endpoint.bind().unwrap();
    let daemon_server = Arc::clone(&server);
    let daemon = std::thread::spawn(move || bound.run(&daemon_server).unwrap());

    let mut verdicts = Vec::new();
    let mut client = Client::connect(&endpoint).unwrap();
    client.expect_ok(&Command::Hello { client: "a".into() }, &mut verdicts).unwrap();
    client.expect_ok(&Command::Open { pid: 1, model: "tiny".into() }, &mut verdicts).unwrap();
    for n in 0..4 {
        client.request(&Command::Event { pid: 1, event: event(n, true) }, &mut verdicts).unwrap();
    }
    // Disconnect without CLOSE: the connection teardown drains and
    // closes the abandoned session.
    drop(client);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().closed < 1 {
        assert!(std::time::Instant::now() < deadline, "abandoned session never drained");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // An embedder session opened directly on the shared server (no
    // connection owns it) is drained by the shutdown path instead.
    let embedded = Arc::new(BufferSink::new());
    server.open("embed", 9, "tiny", Arc::clone(&embedded) as Arc<dyn VerdictSink>).unwrap();
    for n in 0..3 {
        server.submit("embed", 9, event(n, true)).unwrap();
    }

    let mut client2 = Client::connect(&endpoint).unwrap();
    client2.expect_ok(&Command::Hello { client: "b".into() }, &mut verdicts).unwrap();
    client2.expect_ok(&Command::Shutdown, &mut verdicts).unwrap();
    drop(client2);
    let drained = daemon.join().unwrap();
    assert_eq!(drained, 1, "the embedder session drained at shutdown");
    assert_eq!(embedded.len(), 3, "its verdicts were delivered before exit");
    assert!(!socket.exists(), "socket file removed on shutdown");
}
