//! System-level function call graphs built from system stack traces.

use leaps_trace::partition::PartitionedEvent;
use std::collections::BTreeSet;

/// A call graph over system-level symbols (`module!function`), recording
/// both individual invocation edges and complete per-event invocation
/// chains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraph {
    edges: BTreeSet<(String, String)>,
    chains: BTreeSet<Vec<String>>,
}

impl CallGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> CallGraph {
        CallGraph::default()
    }

    /// Builds the graph from training events' system stack traces.
    #[must_use]
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a PartitionedEvent>) -> CallGraph {
        let mut graph = CallGraph::new();
        for event in events {
            graph.add_event(event);
        }
        graph
    }

    /// Adds one event's system-stack invocation chain.
    pub fn add_event(&mut self, event: &PartitionedEvent) {
        let chain = chain_of(event);
        for w in chain.windows(2) {
            self.edges.insert((w[0].clone(), w[1].clone()));
        }
        if !chain.is_empty() {
            self.chains.insert(chain);
        }
    }

    /// Whether the invocation edge `caller → callee` was observed.
    #[must_use]
    pub fn has_edge(&self, caller: &str, callee: &str) -> bool {
        // BTreeSet<(String, String)> lookup without allocation is awkward;
        // graphs are queried orders of magnitude more than built, but the
        // tuple-key representation keeps construction simple and the
        // O(log n) ordered lookup keeps persisted iteration sorted.
        self.edges.contains(&(caller.to_owned(), callee.to_owned()))
    }

    /// Whether the exact invocation chain was observed in training.
    #[must_use]
    pub fn has_chain(&self, chain: &[String]) -> bool {
        self.chains.contains(chain)
    }

    /// Number of distinct edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct chains.
    #[must_use]
    pub fn chain_count(&self) -> usize {
        self.chains.len()
    }

    /// Iterates all edges (for persistence) in sorted order, so
    /// persisted artifacts are byte-identical across runs.
    pub fn edges(&self) -> impl Iterator<Item = (&str, &str)> {
        self.edges.iter().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// Iterates all chains (for persistence) in sorted order.
    pub fn chains(&self) -> impl Iterator<Item = &[String]> {
        self.chains.iter().map(Vec::as_slice)
    }

    /// Reassembles a graph from persisted edges and chains.
    #[must_use]
    pub fn from_parts(
        edges: impl IntoIterator<Item = (String, String)>,
        chains: impl IntoIterator<Item = Vec<String>>,
    ) -> CallGraph {
        CallGraph { edges: edges.into_iter().collect(), chains: chains.into_iter().collect() }
    }

    /// Whether every edge of `chain` appears in the graph.
    #[must_use]
    pub fn contains_all_edges(&self, chain: &[String]) -> bool {
        chain.windows(2).all(|w| self.edges.contains(&(w[0].clone(), w[1].clone())))
    }
}

/// The system-level invocation chain of an event: symbols of the system
/// stack in caller order.
#[must_use]
pub fn chain_of(event: &PartitionedEvent) -> Vec<String> {
    event.system_stack.iter().map(|f| f.symbol()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::addr::Va;
    use leaps_etw::event::{EventType, StackFrame};

    fn event(syms: &[(&str, &str)]) -> PartitionedEvent {
        PartitionedEvent {
            num: 1,
            etype: EventType::FileRead,
            tid: 1,
            app_stack: vec![StackFrame::new("app", "main", Va(1), true)],
            system_stack: syms
                .iter()
                .enumerate()
                .map(|(i, &(m, f))| StackFrame::new(m, f, Va(0x7000 + i as u64), false))
                .collect(),
            truth: None,
        }
    }

    #[test]
    fn edges_and_chains_are_recorded() {
        let g = CallGraph::from_events([&event(&[
            ("kernel32", "ReadFile"),
            ("ntdll", "NtReadFile"),
            ("ntoskrnl", "NtReadFile"),
        ])]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.chain_count(), 1);
        assert!(g.has_edge("kernel32!ReadFile", "ntdll!NtReadFile"));
        assert!(!g.has_edge("ntdll!NtReadFile", "kernel32!ReadFile"));
        assert!(g.has_chain(&[
            "kernel32!ReadFile".into(),
            "ntdll!NtReadFile".into(),
            "ntoskrnl!NtReadFile".into()
        ]));
    }

    #[test]
    fn contains_all_edges_checks_each_pair() {
        let g = CallGraph::from_events([&event(&[("a", "f"), ("b", "g"), ("c", "h")])]);
        assert!(g.contains_all_edges(&["a!f".into(), "b!g".into()]));
        assert!(g.contains_all_edges(&["a!f".into(), "b!g".into(), "c!h".into()]));
        assert!(!g.contains_all_edges(&["a!f".into(), "c!h".into()]));
        // Empty / single-node chains vacuously match.
        assert!(g.contains_all_edges(&[]));
        assert!(g.contains_all_edges(&["zzz!q".into()]));
    }

    #[test]
    fn duplicate_events_do_not_duplicate_edges() {
        let e = event(&[("a", "f"), ("b", "g")]);
        let g = CallGraph::from_events([&e, &e, &e]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.chain_count(), 1);
    }

    #[test]
    fn empty_system_stack_contributes_nothing() {
        let g = CallGraph::from_events([&event(&[])]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.chain_count(), 0);
    }
}
