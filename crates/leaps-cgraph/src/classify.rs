//! The BCG/MCG decision model.

use crate::graph::{chain_of, CallGraph};
use leaps_trace::partition::PartitionedEvent;

/// Per-event decision of the call-graph model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// The event's call relations match the benign model only.
    Benign,
    /// The event's call relations match the mixed (negative) model only.
    Malicious,
    /// The relations appear in both models, or in neither — the model
    /// cannot decide (counted as a misclassification by the evaluation,
    /// as in the paper).
    Undecidable,
}

/// A trained call-graph classifier: benign call graph (positive model) and
/// mixed call graph (negative model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallGraphClassifier {
    bcg: CallGraph,
    mcg: CallGraph,
}

impl CallGraphClassifier {
    /// Trains the classifier from benign and mixed training events.
    #[must_use]
    pub fn fit<'a>(
        benign: impl IntoIterator<Item = &'a PartitionedEvent>,
        mixed: impl IntoIterator<Item = &'a PartitionedEvent>,
    ) -> CallGraphClassifier {
        CallGraphClassifier {
            bcg: CallGraph::from_events(benign),
            mcg: CallGraph::from_events(mixed),
        }
    }

    /// The benign call graph.
    #[must_use]
    pub fn bcg(&self) -> &CallGraph {
        &self.bcg
    }

    /// The mixed call graph.
    #[must_use]
    pub fn mcg(&self) -> &CallGraph {
        &self.mcg
    }

    /// Reassembles a classifier from persisted graphs.
    #[must_use]
    pub fn from_parts(bcg: CallGraph, mcg: CallGraph) -> CallGraphClassifier {
        CallGraphClassifier { bcg, mcg }
    }

    /// Classifies one event by the existence of its call relations in the
    /// two graphs.
    ///
    /// Decision procedure:
    ///
    /// 1. **Malicious evidence**: any invocation edge present in the mixed
    ///    graph but absent from the benign graph marks the event
    ///    malicious — the relation was only ever observed under
    ///    infection. Note this also fires for *unseen benign behaviour*
    ///    that happened to occur in the mixed log (the paper's first
    ///    failure mode: the model "is not able to classify data points
    ///    that do not appear in the training set"), which is what caps
    ///    this baseline's benign hit rate.
    /// 2. **Benign cover**: otherwise, if every edge is covered by the
    ///    benign graph, the event is consistent with the positive model →
    ///    benign. Payload behaviour whose call relations fully overlap
    ///    benign behaviour lands here (the paper's second failure mode —
    ///    relations "exist in both the BCG and MCG" — e.g. the low TNR on
    ///    the Chrome datasets).
    /// 3. Otherwise **undecidable**: relations seen in neither graph.
    #[must_use]
    pub fn classify(&self, event: &PartitionedEvent) -> Decision {
        let chain = chain_of(event);
        if chain.is_empty() {
            return Decision::Undecidable;
        }
        // Whole-chain evidence first: an invocation chain that only ever
        // occurred under infection is the strongest malicious signal.
        if self.mcg.has_chain(&chain) && !self.bcg.has_chain(&chain) {
            return Decision::Malicious;
        }
        let mut all_in_bcg = true;
        for w in chain.windows(2) {
            let in_b = self.bcg.has_edge(&w[0], &w[1]);
            let in_m = self.mcg.has_edge(&w[0], &w[1]);
            if !in_b {
                all_in_bcg = false;
                if in_m {
                    return Decision::Malicious;
                }
            }
        }
        if all_in_bcg {
            Decision::Benign
        } else {
            Decision::Undecidable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::addr::Va;
    use leaps_etw::event::{EventType, StackFrame};

    fn event(syms: &[(&str, &str)]) -> PartitionedEvent {
        PartitionedEvent {
            num: 1,
            etype: EventType::FileRead,
            tid: 1,
            app_stack: vec![StackFrame::new("app", "main", Va(1), true)],
            system_stack: syms
                .iter()
                .enumerate()
                .map(|(i, &(m, f))| StackFrame::new(m, f, Va(0x7000 + i as u64), false))
                .collect(),
            truth: None,
        }
    }

    fn classifier() -> CallGraphClassifier {
        let benign_only = event(&[("kernel32", "ReadFile"), ("ntdll", "NtReadFile")]);
        let shared = event(&[("user32", "GetMessageW"), ("win32k", "NtUserGetMessage")]);
        let malicious = event(&[("ws2_32", "send"), ("afd", "AfdSend")]);
        CallGraphClassifier::fit([&benign_only, &shared], [&shared, &malicious])
    }

    #[test]
    fn benign_only_chain_classifies_benign() {
        let c = classifier();
        let e = event(&[("kernel32", "ReadFile"), ("ntdll", "NtReadFile")]);
        assert_eq!(c.classify(&e), Decision::Benign);
    }

    #[test]
    fn malicious_only_chain_classifies_malicious() {
        let c = classifier();
        let e = event(&[("ws2_32", "send"), ("afd", "AfdSend")]);
        assert_eq!(c.classify(&e), Decision::Malicious);
    }

    #[test]
    fn relations_in_both_models_default_to_benign() {
        // The paper's second failure mode: behaviour recorded in both
        // training logs is consistent with the positive model, so payload
        // events that fully mimic benign call relations are missed.
        let c = classifier();
        let e = event(&[("user32", "GetMessageW"), ("win32k", "NtUserGetMessage")]);
        assert_eq!(c.classify(&e), Decision::Benign);
    }

    #[test]
    fn unseen_relations_are_undecidable() {
        // The paper's first failure mode: the model cannot classify data
        // points absent from the training set.
        let c = classifier();
        let e = event(&[("gdi32", "BitBlt"), ("win32k", "NtGdiBitBlt")]);
        assert_eq!(c.classify(&e), Decision::Undecidable);
    }

    #[test]
    fn novel_chain_with_known_benign_edges_falls_back_to_edges() {
        let benign1 = event(&[("a", "f"), ("b", "g")]);
        let benign2 = event(&[("b", "g"), ("c", "h")]);
        let malicious = event(&[("x", "p"), ("y", "q")]);
        let c = CallGraphClassifier::fit([&benign1, &benign2], [&malicious]);
        // Chain a!f → b!g → c!h never occurred, but all its edges are
        // benign-only.
        let e = event(&[("a", "f"), ("b", "g"), ("c", "h")]);
        assert_eq!(c.classify(&e), Decision::Benign);
    }

    #[test]
    fn empty_system_stack_is_undecidable() {
        let c = classifier();
        assert_eq!(c.classify(&event(&[])), Decision::Undecidable);
    }

    #[test]
    fn end_to_end_on_generated_scenario_shows_paper_failure_modes() {
        use leaps_etw::logfmt::write_log;
        use leaps_etw::scenario::{GenParams, Scenario};
        use leaps_trace::parser::parse_log;
        use leaps_trace::partition::partition_events;

        let logs =
            Scenario::by_name("putty_reverse_tcp").unwrap().generate_events(&GenParams::small(), 5);
        let benign = partition_events(&parse_log(&write_log(&logs.benign)).unwrap().events);
        let mixed = partition_events(&parse_log(&write_log(&logs.mixed)).unwrap().events);
        let malicious = partition_events(&parse_log(&write_log(&logs.malicious)).unwrap().events);

        let half = benign.len() / 2;
        let c = CallGraphClassifier::fit(benign[..half].iter(), mixed.iter());

        let benign_test = &benign[half..];
        let benign_hits = benign_test.iter().filter(|e| c.classify(e) == Decision::Benign).count();
        let benign_misses =
            benign_test.iter().filter(|e| c.classify(e) != Decision::Benign).count();
        let malicious_hits =
            malicious.iter().filter(|e| c.classify(e) == Decision::Malicious).count();
        let malicious_misses =
            malicious.iter().filter(|e| c.classify(e) != Decision::Malicious).count();
        // Both failure modes of Section III-D-1 are visible: some benign
        // events are misclassified (unseen relations that occurred in the
        // mixed log), and some malicious events are missed (relations
        // overlapping benign behaviour) — while the model still catches a
        // substantial share of each class.
        assert!(benign_hits > 0 && malicious_hits > 0);
        // With a small training half and highly variable chains the model
        // misses plenty on both sides — that is the point of the baseline.
        assert!(benign_misses > 0, "expected unseen benign relations");
        assert!(malicious_misses > 0, "expected some malicious misses");
    }
}
