//! The system-level call-graph baseline classifier (paper Section
//! III-D-1).
//!
//! From the benign and mixed training logs, two **system-level function
//! call graphs** are built — the *benign call graph* (BCG, positive model)
//! and the *mixed call graph* (MCG, negative model) — over the function
//! invocation chains in each event's system stack trace. At testing time,
//! an event's call relations are looked up in both graphs and a decision
//! is made from where they (fail to) appear.
//!
//! The paper reports this model performs poorly exactly because (a) it
//! cannot classify unseen call relations and (b) benign relations appear
//! in *both* graphs (mixed logs contain benign execution), leaving events
//! undecidable. Both failure modes fall out of this implementation
//! naturally; undecidable events are counted as misclassifications by the
//! evaluation harness, as in the paper.

pub mod classify;
pub mod graph;

pub use classify::{CallGraphClassifier, Decision};
pub use graph::CallGraph;
