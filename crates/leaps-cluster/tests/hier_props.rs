//! Property tests for the hierarchical clustering: invariants that must
//! hold for any distance matrix.
#![allow(clippy::needless_range_loop)] // dense matrix code reads best indexed

use leaps_cluster::dissim::DistanceMatrix;
use leaps_cluster::hier::{Dendrogram, Linkage};
use proptest::prelude::*;

/// Strategy: a random symmetric distance matrix with zero diagonal over
/// 2..=12 items.
fn distance_matrix() -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=12).prop_flat_map(|n| {
        prop::collection::vec(0.0f64..1.0, n * (n - 1) / 2).prop_map(move |upper| {
            let mut full = vec![vec![0.0; n]; n];
            let mut it = upper.into_iter();
            for i in 0..n {
                for j in (i + 1)..n {
                    let d = it.next().expect("sized above");
                    full[i][j] = d;
                    full[j][i] = d;
                }
            }
            DistanceMatrix::from_full(&full)
        })
    })
}

fn linkages() -> impl Strategy<Value = Linkage> {
    prop::sample::select(vec![Linkage::Average, Linkage::Single, Linkage::Complete])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// n leaves always produce exactly n−1 merges, the final merge holds
    /// all leaves, and merge sizes are consistent.
    #[test]
    fn merge_structure(dm in distance_matrix(), linkage in linkages()) {
        let n = dm.len();
        let d = Dendrogram::build(&dm, linkage);
        prop_assert_eq!(d.n_leaves(), n);
        prop_assert_eq!(d.merges().len(), n - 1);
        prop_assert_eq!(d.merges().last().unwrap().size, n);
        for (k, m) in d.merges().iter().enumerate() {
            prop_assert!(m.left < n + k);
            prop_assert!(m.right < n + k);
            prop_assert!(m.left != m.right);
            prop_assert!(m.size >= 2);
            prop_assert!(m.distance >= 0.0);
        }
    }

    /// Cutting at count k yields exactly min(k, n) dense labels.
    #[test]
    fn cut_at_count_yields_k_dense_labels(
        dm in distance_matrix(),
        linkage in linkages(),
        k in 1usize..=14,
    ) {
        let n = dm.len();
        let labels = Dendrogram::build(&dm, linkage).cut_at_count(k);
        prop_assert_eq!(labels.len(), n);
        let distinct: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k.min(n));
        // Dense: labels are 0..count.
        prop_assert_eq!(*distinct.iter().max().unwrap() as usize, distinct.len() - 1);
    }

    /// Raising the distance threshold only coarsens the clustering: any
    /// two items together at threshold t stay together at t' >= t.
    #[test]
    fn distance_cut_is_monotone(
        dm in distance_matrix(),
        linkage in linkages(),
        t1 in 0.0f64..1.0,
        t2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let d = Dendrogram::build(&dm, linkage);
        let fine = d.cut_at_distance(lo);
        let coarse = d.cut_at_distance(hi);
        for i in 0..dm.len() {
            for j in (i + 1)..dm.len() {
                if fine[i] == fine[j] {
                    prop_assert_eq!(coarse[i], coarse[j], "pair ({},{})", i, j);
                }
            }
        }
    }

    /// Single-linkage merge distances are non-decreasing (single linkage
    /// is always monotone).
    #[test]
    fn single_linkage_is_monotone(dm in distance_matrix()) {
        let d = Dendrogram::build(&dm, Linkage::Single);
        let dists: Vec<f64> = d.merges().iter().map(|m| m.distance).collect();
        for w in dists.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "{:?}", dists);
        }
    }

    /// Zero-distance pairs always land in the same cluster at any
    /// positive threshold.
    #[test]
    fn duplicates_cluster_together(n in 3usize..=8, linkage in linkages()) {
        // Items 0 and 1 are identical (distance 0), everything else far.
        let mut full = vec![vec![0.9; n]; n];
        for (i, row) in full.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        full[0][1] = 0.0;
        full[1][0] = 0.0;
        let dm = DistanceMatrix::from_full(&full);
        let labels = Dendrogram::build(&dm, linkage).cut_at_distance(0.1);
        prop_assert_eq!(labels[0], labels[1]);
    }
}

/// Strategy: a matrix whose distances come from a 4-value grid, so almost
/// every merge exercises the smallest-index tie-break.
fn tied_distance_matrix() -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=12).prop_flat_map(|n| {
        prop::collection::vec(prop::sample::select(vec![0.25f64, 0.5, 0.75, 1.0]), n * (n - 1) / 2)
            .prop_map(move |upper| DistanceMatrix::from_condensed(n, upper))
    })
}

/// Strategy: a random matrix with a random subset of entries replaced by
/// NaN (possibly all of them) — the degraded-telemetry shape that used to
/// panic inside `Dendrogram::build`.
fn nan_bearing_matrix() -> impl Strategy<Value = DistanceMatrix> {
    (2usize..=10).prop_flat_map(|n| {
        prop::collection::vec((0.0f64..1.0, prop::bool::ANY), n * (n - 1) / 2).prop_map(
            move |entries| {
                let data =
                    entries.into_iter().map(|(d, nan)| if nan { f64::NAN } else { d }).collect();
                DistanceMatrix::from_condensed(n, data)
            },
        )
    })
}

/// Merges compared bitwise: NaN distances must match in bit pattern too.
fn assert_same_merges(a: &Dendrogram, b: &Dendrogram) {
    assert_eq!(a.n_leaves(), b.n_leaves());
    assert_eq!(a.merges().len(), b.merges().len());
    for (x, y) in a.merges().iter().zip(b.merges()) {
        assert_eq!((x.left, x.right, x.size), (y.left, y.right, y.size));
        assert_eq!(x.distance.to_bits(), y.distance.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The nearest-neighbor-cache `build` is byte-identical to the
    /// retired full-rescan implementation, merges and cut labels alike.
    #[test]
    fn cache_build_matches_rescan_oracle(
        dm in distance_matrix(),
        linkage in linkages(),
        threshold in 0.0f64..1.0,
        k in 1usize..=14,
    ) {
        let cache = Dendrogram::build(&dm, linkage);
        let rescan = Dendrogram::build_rescan(&dm, linkage);
        assert_same_merges(&cache, &rescan);
        prop_assert_eq!(cache.cut_at_distance(threshold), rescan.cut_at_distance(threshold));
        prop_assert_eq!(cache.cut_at_count(k), rescan.cut_at_count(k));
    }

    /// Same oracle equivalence on tie-heavy grids, where the
    /// smallest-index tie-break decides nearly every merge.
    #[test]
    fn cache_build_matches_rescan_on_ties(
        dm in tied_distance_matrix(),
        linkage in linkages(),
        threshold in 0.0f64..1.0,
        k in 1usize..=14,
    ) {
        let cache = Dendrogram::build(&dm, linkage);
        let rescan = Dendrogram::build_rescan(&dm, linkage);
        assert_same_merges(&cache, &rescan);
        prop_assert_eq!(cache.cut_at_distance(threshold), rescan.cut_at_distance(threshold));
        prop_assert_eq!(cache.cut_at_count(k), rescan.cut_at_count(k));
    }

    /// NaN-bearing matrices never panic, produce a full merge sequence
    /// with NaNs ordered last, match the rescan oracle, and never apply
    /// a NaN merge in a distance cut.
    #[test]
    fn nan_matrices_build_deterministically(
        dm in nan_bearing_matrix(),
        linkage in linkages(),
        k in 1usize..=12,
    ) {
        let n = dm.len();
        let d = Dendrogram::build(&dm, linkage);
        prop_assert_eq!(d.merges().len(), n - 1);
        prop_assert_eq!(d.merges().last().unwrap().size, n);
        assert_same_merges(&d, &Dendrogram::build_rescan(&dm, linkage));
        // Count cuts are structural and stay dense.
        let labels = d.cut_at_count(k);
        let distinct: std::collections::BTreeSet<u32> = labels.iter().copied().collect();
        prop_assert_eq!(distinct.len(), k.min(n));
        // A NaN-distance merge is never applied: at an infinite
        // threshold the cluster count still exceeds 1 whenever the final
        // (all-leaves) merge happened at NaN.
        let applied = d.cut_at_distance(f64::INFINITY);
        let groups: std::collections::BTreeSet<u32> = applied.iter().copied().collect();
        if d.merges().last().unwrap().distance.is_nan() {
            prop_assert!(groups.len() > 1);
        }
        // Rebuilding is deterministic, byte for byte.
        assert_same_merges(&d, &Dendrogram::build(&dm, linkage));
    }
}
