//! Feature extraction and discretization (paper Section III-A and V-A-2).
//!
//! Pipeline per event:
//!
//! 1. take the system stack trace's library set and function set;
//! 2. discretize each via the trained hierarchical clustering (cluster
//!    number replaces the set);
//! 3. emit the 3-tuple `{Event_Type, Lib, Func}` as a normalized `f64`
//!    triple;
//! 4. coalesce `window` consecutive events into one `3·window`-dimensional
//!    data point ("we increase the dimensions from 3 up to 30 by
//!    coalescing each 10 consecutive samples").

use crate::assign::ClusterAssigner;
use crate::dissim::{jaccard_dissimilarity, DistanceMatrix};
use crate::hier::{Dendrogram, Linkage};
use leaps_etw::event::EventType;
use leaps_trace::partition::PartitionedEvent;
use std::collections::BTreeMap;

/// How to cut the dendrogram into clusters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CutRule {
    /// Merge while linkage distance is at most this threshold.
    Distance(f64),
    /// Cut to exactly this many clusters (clamped to the vocabulary size).
    Count(usize),
}

/// Configuration of the preprocessing stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Linkage criterion (the paper uses UPGMA = average).
    pub linkage: Linkage,
    /// Dendrogram cut rule for both Lib and Func clusterings.
    pub cut: CutRule,
    /// Events per coalesced data point (paper: 10 → 30 dimensions).
    pub window: usize,
    /// Step between consecutive windows.
    pub stride: usize,
    /// Cap on the number of distinct sets clustered per vocabulary
    /// (most-frequent first). Rarer sets are discretized by
    /// nearest-cluster assignment, which keeps the O(n³) hierarchical
    /// clustering tractable on logs with highly variable stack chains.
    pub max_vocab: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            linkage: Linkage::Average,
            cut: CutRule::Distance(0.15),
            window: 10,
            stride: 2,
            max_vocab: 400,
        }
    }
}

/// A trained feature encoder: cluster vocabularies for Lib and Func sets.
#[derive(Debug, Clone)]
pub struct FeatureEncoder {
    lib_assigner: ClusterAssigner<String>,
    func_assigner: ClusterAssigner<String>,
    config: PreprocessConfig,
}

impl FeatureEncoder {
    /// Fits the encoder on training events: collects the unique Lib/Func
    /// sets, builds the Jaccard distance matrices (Eq. 1) and clusters
    /// them hierarchically.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty or `config.window`/`stride` is zero.
    #[must_use]
    pub fn fit(events: &[&PartitionedEvent], config: PreprocessConfig) -> FeatureEncoder {
        assert!(!events.is_empty(), "cannot fit encoder on an empty event set");
        assert!(config.window >= 1, "window must be >= 1");
        assert!(config.stride >= 1, "stride must be >= 1");

        assert!(config.max_vocab >= 2, "max_vocab must be >= 2");
        let lib_vocab = frequent_sets(
            events.iter().map(|e| e.lib_set().into_iter().map(str::to_owned).collect::<Vec<_>>()),
            config.max_vocab,
        );
        let func_vocab = frequent_sets(events.iter().map(|e| e.func_set()), config.max_vocab);

        let lib_assigner = cluster_vocab(lib_vocab, config);
        let func_assigner = cluster_vocab(func_vocab, config);
        FeatureEncoder { lib_assigner, func_assigner, config }
    }

    /// The configuration the encoder was fitted with.
    #[must_use]
    pub fn config(&self) -> PreprocessConfig {
        self.config
    }

    /// Decomposes the encoder into its fitted parts (for persistence):
    /// `(lib assigner, func assigner, config)`.
    #[must_use]
    pub fn into_parts(
        self,
    ) -> (ClusterAssigner<String>, ClusterAssigner<String>, PreprocessConfig) {
        (self.lib_assigner, self.func_assigner, self.config)
    }

    /// Borrows the fitted parts (for persistence without consuming).
    #[must_use]
    pub fn parts(&self) -> (&ClusterAssigner<String>, &ClusterAssigner<String>) {
        (&self.lib_assigner, &self.func_assigner)
    }

    /// Reassembles an encoder from previously fitted parts.
    #[must_use]
    pub fn from_parts(
        lib_assigner: ClusterAssigner<String>,
        func_assigner: ClusterAssigner<String>,
        config: PreprocessConfig,
    ) -> FeatureEncoder {
        FeatureEncoder { lib_assigner, func_assigner, config }
    }

    /// Number of Lib clusters.
    #[must_use]
    pub fn lib_cluster_count(&self) -> usize {
        self.lib_assigner.n_clusters()
    }

    /// Number of Func clusters.
    #[must_use]
    pub fn func_cluster_count(&self) -> usize {
        self.func_assigner.n_clusters()
    }

    /// The paper's discretized 3-tuple for one event:
    /// `(Event_Type, Lib cluster, Func cluster)`.
    #[must_use]
    pub fn tuple(&self, event: &PartitionedEvent) -> (u32, u32, u32) {
        let libs: Vec<String> = event.lib_set().into_iter().map(str::to_owned).collect();
        let funcs = event.func_set();
        (event.etype.as_u32(), self.lib_assigner.assign(&libs), self.func_assigner.assign(&funcs))
    }

    /// The normalized feature triple for one event, each component scaled
    /// to `[0, 1]` so the Gaussian kernel treats the three coordinates
    /// comparably.
    #[must_use]
    pub fn encode(&self, event: &PartitionedEvent) -> [f64; 3] {
        let (e, l, f) = self.tuple(event);
        self.normalize(e, l, f)
    }

    fn normalize(&self, e: u32, l: u32, f: u32) -> [f64; 3] {
        [
            f64::from(e) / (EventType::ALL.len() - 1) as f64,
            f64::from(l) / self.lib_assigner.n_clusters().max(2).saturating_sub(1) as f64,
            f64::from(f) / self.func_assigner.n_clusters().max(2).saturating_sub(1) as f64,
        ]
    }

    /// Encodes a sequence of events and coalesces windows of
    /// `config.window` consecutive events into flat feature vectors of
    /// dimension `3 * window`, advancing by `config.stride`.
    ///
    /// Also returns, per data point, the indices of the events it covers
    /// (needed to attach CFG-derived weights to coalesced points).
    #[must_use]
    pub fn encode_sequence(
        &self,
        events: &[&PartitionedEvent],
    ) -> (Vec<Vec<f64>>, Vec<Vec<usize>>) {
        // Cluster assignment scans the vocabulary; memoize per distinct
        // set so long logs with repeating behaviour encode in linear time.
        let mut lib_cache: BTreeMap<Vec<String>, u32> = BTreeMap::new();
        let mut func_cache: BTreeMap<Vec<String>, u32> = BTreeMap::new();
        let per_event: Vec<[f64; 3]> = events
            .iter()
            .map(|e| {
                let libs: Vec<String> = e.lib_set().into_iter().map(str::to_owned).collect();
                let funcs = e.func_set();
                let l = *lib_cache.entry(libs).or_insert_with_key(|k| self.lib_assigner.assign(k));
                let f =
                    *func_cache.entry(funcs).or_insert_with_key(|k| self.func_assigner.assign(k));
                self.normalize(e.etype.as_u32(), l, f)
            })
            .collect();
        let w = self.config.window;
        let s = self.config.stride;
        let mut points = Vec::new();
        let mut covers = Vec::new();
        if per_event.len() < w {
            return (points, covers);
        }
        let mut start = 0usize;
        while start + w <= per_event.len() {
            let mut v = Vec::with_capacity(3 * w);
            for triple in &per_event[start..start + w] {
                v.extend_from_slice(triple);
            }
            points.push(v);
            covers.push((start..start + w).collect());
            start += s;
        }
        (points, covers)
    }
}

/// Collects the distinct sets in frequency order and keeps the `cap` most
/// frequent (ties broken lexicographically, so the vocabulary is
/// deterministic).
fn frequent_sets(iter: impl Iterator<Item = Vec<String>>, cap: usize) -> Vec<Vec<String>> {
    let mut counts: BTreeMap<Vec<String>, usize> = BTreeMap::new();
    for mut set in iter {
        set.sort_unstable();
        set.dedup();
        *counts.entry(set).or_insert(0) += 1;
    }
    let mut entries: Vec<(Vec<String>, usize)> = counts.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    entries.truncate(cap);
    entries.into_iter().map(|(set, _)| set).collect()
}

fn cluster_vocab(vocab: Vec<Vec<String>>, config: PreprocessConfig) -> ClusterAssigner<String> {
    // O(n²) Jaccard pass over the vocabulary — the dominant fit cost for
    // large `max_vocab`, so rows fan out across threads (bit-identical to
    // the serial builder).
    let dm = DistanceMatrix::from_sets_parallel(&vocab, |a, b| {
        jaccard_dissimilarity(a.as_slice(), b.as_slice())
    });
    let dendro = Dendrogram::build(&dm, config.linkage);
    let labels = match config.cut {
        CutRule::Distance(t) => dendro.cut_at_distance(t),
        CutRule::Count(k) => dendro.cut_at_count(k),
    };
    ClusterAssigner::new(vocab, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::logfmt::write_log;
    use leaps_etw::scenario::{GenParams, Scenario};
    use leaps_trace::parser::parse_log;
    use leaps_trace::partition::partition_events;

    fn events() -> Vec<PartitionedEvent> {
        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 3);
        let parsed = parse_log(&write_log(&logs.benign)).unwrap();
        partition_events(&parsed.events)
    }

    fn fit(events: &[PartitionedEvent], config: PreprocessConfig) -> FeatureEncoder {
        let refs: Vec<&PartitionedEvent> = events.iter().collect();
        FeatureEncoder::fit(&refs, config)
    }

    #[test]
    fn fit_produces_multiple_clusters_on_real_events() {
        let evs = events();
        let enc = fit(&evs, PreprocessConfig::default());
        assert!(enc.lib_cluster_count() >= 2);
        assert!(enc.func_cluster_count() >= enc.lib_cluster_count());
    }

    #[test]
    fn encoding_is_normalized() {
        let evs = events();
        let enc = fit(&evs, PreprocessConfig::default());
        for e in &evs {
            for x in enc.encode(e) {
                assert!((0.0..=1.0).contains(&x), "{x}");
            }
        }
    }

    #[test]
    fn identical_events_get_identical_tuples() {
        let evs = events();
        let enc = fit(&evs, PreprocessConfig::default());
        let a = enc.tuple(&evs[0]);
        let b = enc.tuple(&evs[0].clone());
        assert_eq!(a, b);
    }

    #[test]
    fn coalescing_dimensions_and_cover_bookkeeping() {
        let evs = events();
        let config = PreprocessConfig { window: 10, stride: 3, ..Default::default() };
        let enc = fit(&evs, config);
        let refs: Vec<&PartitionedEvent> = evs.iter().collect();
        let (points, covers) = enc.encode_sequence(&refs);
        assert!(!points.is_empty());
        assert_eq!(points.len(), covers.len());
        for (p, c) in points.iter().zip(&covers) {
            assert_eq!(p.len(), 30);
            assert_eq!(c.len(), 10);
        }
        assert_eq!(covers[0][0], 0);
        assert_eq!(covers[1][0], 3);
        let expected = (evs.len() - 10) / 3 + 1;
        assert_eq!(points.len(), expected);
    }

    #[test]
    fn too_few_events_yield_no_points() {
        let evs = events();
        let config = PreprocessConfig { window: 10, stride: 1, ..Default::default() };
        let enc = fit(&evs, config);
        let refs: Vec<&PartitionedEvent> = evs.iter().take(5).collect();
        let (points, covers) = enc.encode_sequence(&refs);
        assert!(points.is_empty());
        assert!(covers.is_empty());
    }

    #[test]
    fn count_cut_rule_bounds_cluster_count() {
        let evs = events();
        let config = PreprocessConfig { cut: CutRule::Count(4), ..Default::default() };
        let enc = fit(&evs, config);
        assert!(enc.lib_cluster_count() <= 4);
        assert!(enc.func_cluster_count() <= 4);
    }

    #[test]
    fn window_one_is_passthrough() {
        let evs = events();
        let config = PreprocessConfig { window: 1, stride: 1, ..Default::default() };
        let enc = fit(&evs, config);
        let refs: Vec<&PartitionedEvent> = evs.iter().take(20).collect();
        let (points, covers) = enc.encode_sequence(&refs);
        assert_eq!(points.len(), 20);
        assert_eq!(points[0].len(), 3);
        assert_eq!(covers[7], vec![7]);
    }

    #[test]
    #[should_panic(expected = "empty event set")]
    fn fit_rejects_empty_input() {
        let _ = FeatureEncoder::fit(&[], PreprocessConfig::default());
    }

    #[test]
    fn unseen_events_still_encode() {
        // Fit on benign, encode malicious (different library mix).
        let logs = Scenario::by_name("putty_reverse_https")
            .unwrap()
            .generate_events(&GenParams::small(), 3);
        let benign = partition_events(&parse_log(&write_log(&logs.benign)).unwrap().events);
        let malicious = partition_events(&parse_log(&write_log(&logs.malicious)).unwrap().events);
        let enc = fit(&benign, PreprocessConfig::default());
        for e in malicious.iter().take(50) {
            let t = enc.tuple(e);
            assert!((t.1 as usize) < enc.lib_cluster_count());
            assert!((t.2 as usize) < enc.func_cluster_count());
        }
    }
}
