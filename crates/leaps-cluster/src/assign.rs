//! Assignment of unseen sets to existing clusters.
//!
//! The paper clusters the Lib/Func sets observed in the *training* data.
//! At testing time unseen sets appear; a usable pipeline needs a rule to
//! discretize them with the trained clustering. We use the UPGMA-consistent
//! rule: assign the set to the cluster with the smallest **mean**
//! dissimilarity to its members.

use crate::dissim::jaccard_dissimilarity;

/// A trained clustering over a vocabulary of sets, supporting nearest-
/// cluster assignment for unseen sets.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAssigner<T: Ord> {
    /// Vocabulary of training sets (each sorted + deduplicated).
    members: Vec<Vec<T>>,
    /// Cluster label per vocabulary entry.
    labels: Vec<u32>,
    /// Number of clusters.
    n_clusters: usize,
}

impl<T: Ord + Clone> ClusterAssigner<T> {
    /// Creates an assigner from a vocabulary and its cluster labels.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, the vocabulary is empty, or labels are
    /// not dense `0..k`.
    #[must_use]
    pub fn new(members: Vec<Vec<T>>, labels: Vec<u32>) -> Self {
        assert_eq!(members.len(), labels.len(), "vocabulary/label length mismatch");
        assert!(!members.is_empty(), "empty vocabulary");
        let n_clusters = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        for k in 0..n_clusters {
            assert!(
                labels.iter().any(|&l| l as usize == k),
                "labels are not dense: cluster {k} has no members"
            );
        }
        ClusterAssigner { members, labels, n_clusters }
    }

    /// Number of clusters.
    #[must_use]
    pub fn n_clusters(&self) -> usize {
        self.n_clusters
    }

    /// Assigns a (sorted, deduplicated) set to the cluster with minimal
    /// mean Jaccard dissimilarity to its members. Ties break toward the
    /// lower cluster label.
    #[must_use]
    pub fn assign(&self, set: &[T]) -> u32 {
        let mut sums = vec![0.0f64; self.n_clusters];
        let mut counts = vec![0usize; self.n_clusters];
        for (member, &label) in self.members.iter().zip(&self.labels) {
            sums[label as usize] += jaccard_dissimilarity(member, set);
            counts[label as usize] += 1;
        }
        let mut best = 0u32;
        let mut best_mean = f64::INFINITY;
        for k in 0..self.n_clusters {
            let mean = sums[k] / counts[k] as f64;
            if mean < best_mean {
                best_mean = mean;
                best = k as u32;
            }
        }
        best
    }

    /// The vocabulary members, parallel to [`Self::labels`].
    #[must_use]
    pub fn members(&self) -> &[Vec<T>] {
        &self.members
    }

    /// Cluster label per vocabulary entry, parallel to [`Self::members`].
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Mean dissimilarity from `set` to the members of cluster `label`
    /// (exposed for diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    #[must_use]
    pub fn mean_distance(&self, set: &[T], label: u32) -> f64 {
        assert!((label as usize) < self.n_clusters, "label out of range");
        let mut sum = 0.0;
        let mut count = 0usize;
        for (member, &l) in self.members.iter().zip(&self.labels) {
            if l == label {
                sum += jaccard_dissimilarity(member, set);
                count += 1;
            }
        }
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assigner() -> ClusterAssigner<&'static str> {
        ClusterAssigner::new(
            vec![
                vec!["kernel32", "ntdll"],               // cluster 0
                vec!["kernel32", "kernelbase", "ntdll"], // cluster 0
                vec!["tcpip", "ws2_32"],                 // cluster 1
                vec!["afd", "tcpip", "ws2_32"],          // cluster 1
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn member_sets_assign_to_their_own_cluster() {
        let a = assigner();
        assert_eq!(a.assign(&["kernel32", "ntdll"]), 0);
        assert_eq!(a.assign(&["tcpip", "ws2_32"]), 1);
    }

    #[test]
    fn unseen_set_assigns_to_nearest_cluster() {
        let a = assigner();
        assert_eq!(a.assign(&["kernelbase", "ntdll"]), 0);
        assert_eq!(a.assign(&["afd", "ws2_32"]), 1);
    }

    #[test]
    fn mean_distance_matches_manual_computation() {
        let a = assigner();
        let set = ["ntdll"];
        // d to {kernel32, ntdll} = 1 - 1/2; d to {kernel32, kernelbase, ntdll} = 1 - 1/3.
        let expect = (0.5 + (1.0 - 1.0 / 3.0)) / 2.0;
        assert!((a.mean_distance(&set, 0) - expect).abs() < 1e-12);
    }

    #[test]
    fn totally_alien_set_still_gets_some_cluster() {
        let a = assigner();
        let label = a.assign(&["win32k"]);
        assert!(label < 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let _ = ClusterAssigner::new(vec![vec![1]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "not dense")]
    fn sparse_labels_rejected() {
        let _ = ClusterAssigner::new(vec![vec![1], vec![2]], vec![0, 2]);
    }
}
