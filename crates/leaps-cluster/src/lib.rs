//! The Data Preprocessing Module (paper Section III-A): set
//! dissimilarity, agglomerative hierarchical clustering and feature
//! discretization.
//!
//! LEAPS turns each system event into the 3-tuple
//! `{Event_Type, Lib, Func}`. `Event_Type` maps naturally to integers;
//! the `Lib` and `Func` *sets* are discretized by clustering similar sets
//! together under the Jaccard set dissimilarity of Eq. 1:
//!
//! ```text
//! DM[i][j] = 1 − |setᵢ ∩ setⱼ| / |setᵢ ∪ setⱼ|
//! ```
//!
//! The paper uses SciPy's hierarchical clustering with the UPGMA linkage;
//! [`hier`] implements the same algorithm (plus single and complete
//! linkage for ablations) from scratch via Lance–Williams updates.
//!
//! # Example
//!
//! ```
//! use leaps_cluster::dissim::jaccard_dissimilarity;
//! use leaps_cluster::hier::{Dendrogram, Linkage};
//! use leaps_cluster::dissim::DistanceMatrix;
//!
//! let sets: Vec<Vec<&str>> = vec![
//!     vec!["kernel32", "ntdll"],
//!     vec!["kernel32", "ntdll"],
//!     vec!["tcpip", "ws2_32"],
//! ];
//! let dm = DistanceMatrix::from_sets(&sets, |a, b| jaccard_dissimilarity(a, b));
//! let dendro = Dendrogram::build(&dm, Linkage::Average);
//! let labels = dendro.cut_at_distance(0.5);
//! assert_eq!(labels[0], labels[1]);
//! assert_ne!(labels[0], labels[2]);
//! ```

pub mod assign;
pub mod dissim;
pub mod features;
pub mod hier;

pub use dissim::{jaccard_dissimilarity, DistanceMatrix};
pub use features::{FeatureEncoder, PreprocessConfig};
pub use hier::{Dendrogram, Linkage};
