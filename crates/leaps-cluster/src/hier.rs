//! Agglomerative hierarchical clustering with Lance–Williams updates.
//!
//! The paper uses SciPy's `cluster.hierarchy` with the **UPGMA** linkage
//! ("the distance between any two clusters is the mean distance between
//! all elements of each cluster"). This module implements the same
//! agglomerative procedure from scratch: start with singleton clusters,
//! repeatedly merge the closest pair, and update inter-cluster distances
//! with the linkage-specific Lance–Williams recurrence.
//!
//! # Algorithm
//!
//! [`Dendrogram::build`] maintains a per-row *nearest-neighbor cache*:
//! for every active row `i` it remembers the closest active column
//! `j > i` (smallest distance, smallest `j` on ties). Each merge then
//! costs one O(active) scan over the cache plus a Lance–Williams row
//! update, and only the rows whose cached neighbor was touched by the
//! merge are rescanned — O(n²) expected overall instead of the O(n³)
//! full rescan. The initial cache build, the row updates and the batch
//! of rescans fan out across the `leaps_par` pool; all selection logic
//! runs on the calling thread, so the merge sequence is bit-identical
//! to the serial path at any thread count. The retired full-rescan
//! implementation is kept as [`Dendrogram::build_rescan`] and serves as
//! the test oracle.
//!
//! # Non-finite distances
//!
//! Distances are compared through a total order that sorts every NaN
//! *after* every finite value and `+∞` (see `dist_cmp`): a non-finite
//! dissimilarity — possible when degraded telemetry feeds an upstream
//! encoder — is merged last (with the usual smallest-index tie-break)
//! instead of corrupting the closest-pair search. Merges recorded at a
//! NaN linkage distance are never applied by
//! [`Dendrogram::cut_at_distance`], so the affected leaves simply stay
//! in their own clusters.

use crate::dissim::DistanceMatrix;
use std::cmp::Ordering;

/// Linkage criterion for inter-cluster distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// UPGMA / mean distance between all element pairs (the paper's
    /// choice).
    #[default]
    Average,
    /// Minimum element-pair distance.
    Single,
    /// Maximum element-pair distance.
    Complete,
}

impl Linkage {
    /// Lance–Williams update: distance between the merge of two clusters
    /// (sizes `size_i`/`size_j`, distances `dik`/`djk` to cluster `k`)
    /// and cluster `k`.
    fn update(self, size_i: usize, size_j: usize, dik: f64, djk: f64) -> f64 {
        match self {
            Linkage::Average => {
                (size_i as f64 * dik + size_j as f64 * djk) / (size_i + size_j) as f64
            }
            Linkage::Single => dik.min(djk),
            Linkage::Complete => dik.max(djk),
        }
    }
}

/// Total order on distances: the usual order on finite values and `±∞`,
/// with every NaN sorted after everything else (and equal to any other
/// NaN). This is what makes an all-NaN matrix merge deterministically
/// (smallest indices first) instead of panicking.
fn dist_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (false, false) => a.partial_cmp(&b).expect("neither operand is NaN"),
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        (true, true) => Ordering::Equal,
    }
}

/// `(distance, column)` pairs ordered by distance first (NaN last), then
/// by column index — the row-local tie-break of the closest-pair scan.
fn neighbor_cmp(a: (f64, usize), b: (f64, usize)) -> Ordering {
    dist_cmp(a.0, b.0).then(a.1.cmp(&b.1))
}

/// Work-size threshold below which the per-merge fan-outs stay on the
/// calling thread: the selection math is pure, so serial and pooled
/// execution are interchangeable, and spawning scoped threads for a few
/// hundred float ops would only add latency.
const PAR_WORK_THRESHOLD: usize = 1 << 14;

/// One merge step of the dendrogram. Node ids: leaves are `0..n`, the
/// cluster created by `merges[k]` has id `n + k` (SciPy convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// A full dendrogram over `n` leaves (`n − 1` merges).
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Runs agglomerative clustering over the distance matrix.
    ///
    /// Ties are broken toward the smallest pair indices so the result is
    /// deterministic, and non-finite distances sort after every finite
    /// one (see the module docs) — the result is bit-identical to
    /// [`Dendrogram::build_rescan`] at any `leaps_par` thread count.
    #[must_use]
    pub fn build(dm: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
        let n = dm.len();
        if n == 0 {
            return Dendrogram { n_leaves: 0, merges: Vec::new() };
        }
        // Working distance matrix over active clusters, dense row-major.
        let mut dist = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                dist[i * n + j] = dm.get(i, j);
            }
        }
        // cluster slot -> (node id, leaf count); None = retired slot.
        let mut clusters: Vec<Option<(usize, usize)>> = (0..n).map(|i| Some((i, 1))).collect();
        let mut active = n;
        let mut merges = Vec::with_capacity(n - 1);

        // Nearest-neighbor cache: nn[i] = (distance, j) minimal over
        // active columns j > i under `neighbor_cmp`; None when row i is
        // retired or has no active column after it.
        let row_nn = |dist: &[f64], clusters: &[Option<(usize, usize)>], i: usize| {
            let mut best: Option<(f64, usize)> = None;
            for j in (i + 1)..n {
                if clusters[j].is_none() {
                    continue;
                }
                let cand = (dist[i * n + j], j);
                if best.is_none_or(|b| neighbor_cmp(cand, b) == Ordering::Less) {
                    best = Some(cand);
                }
            }
            best
        };
        let mut nn: Vec<Option<(f64, usize)>> = if n * n >= PAR_WORK_THRESHOLD {
            leaps_par::par_map_indexed(n, |i| row_nn(&dist, &clusters, i))
        } else {
            (0..n).map(|i| row_nn(&dist, &clusters, i)).collect()
        };

        while active > 1 {
            // Closest active pair: minimal (distance, i, j) over the
            // cache — cheap O(n), chunk-parallel for very large n (the
            // min under a total order is reduction-order independent).
            let best_of = |offset: usize, rows: &[Option<(f64, usize)>]| {
                let mut best: Option<(f64, usize, usize)> = None;
                for (di, entry) in rows.iter().enumerate() {
                    let Some((d, j)) = *entry else { continue };
                    let cand = (d, offset + di, j);
                    let better = match best {
                        None => true,
                        Some((bd, bi, _)) => {
                            dist_cmp(d, bd).then(cand.1.cmp(&bi)) == Ordering::Less
                        }
                    };
                    if better {
                        best = Some(cand);
                    }
                }
                best
            };
            let best = if n >= PAR_WORK_THRESHOLD {
                leaps_par::par_chunks(&nn, 4096, best_of).into_iter().flatten().reduce(|a, b| {
                    if dist_cmp(a.0, b.0).then(a.1.cmp(&b.1)) == Ordering::Greater {
                        b
                    } else {
                        a
                    }
                })
            } else {
                best_of(0, &nn)
            };
            let (d, i, j) = best.expect("at least two active clusters have a closest pair");
            let (id_i, size_i) = clusters[i].expect("active");
            let (id_j, size_j) = clusters[j].expect("active");
            let merged_size = size_i + size_j;
            merges.push(Merge {
                left: id_i.min(id_j),
                right: id_i.max(id_j),
                distance: d,
                size: merged_size,
            });

            // Lance–Williams update: new cluster occupies slot i. The
            // updated distances are pure functions of the old row pair,
            // so they fan out across the pool and are written back in
            // index order.
            let ks: Vec<usize> =
                (0..n).filter(|&k| k != i && k != j && clusters[k].is_some()).collect();
            let updated: Vec<f64> = if ks.len() >= PAR_WORK_THRESHOLD {
                leaps_par::par_chunks(&ks, 4096, |_, chunk| {
                    chunk
                        .iter()
                        .map(|&k| linkage.update(size_i, size_j, dist[i * n + k], dist[j * n + k]))
                        .collect::<Vec<f64>>()
                })
                .concat()
            } else {
                ks.iter()
                    .map(|&k| linkage.update(size_i, size_j, dist[i * n + k], dist[j * n + k]))
                    .collect()
            };
            for (&k, &v) in ks.iter().zip(&updated) {
                dist[i * n + k] = v;
                dist[k * n + i] = v;
            }
            clusters[i] = Some((n + merges.len() - 1, merged_size));
            clusters[j] = None;
            nn[j] = None;
            active -= 1;

            // Invalidate exactly the rows the merge touched. Row i
            // changed entirely. A row k < i sees one rewritten column
            // (i): if its cached neighbor was i or the retired j it must
            // rescan, otherwise the new dist[k][i] can only *join* the
            // competition, which is a single compare. A row i < k < j
            // only loses column j; rows k > j see no change at all.
            let mut stale = vec![i];
            for k in 0..i {
                if clusters[k].is_none() {
                    continue;
                }
                match nn[k] {
                    Some((_, t)) if t == i || t == j => stale.push(k),
                    Some(old) => {
                        let cand = (dist[k * n + i], i);
                        if neighbor_cmp(cand, old) == Ordering::Less {
                            nn[k] = Some(cand);
                        }
                    }
                    None => stale.push(k),
                }
            }
            for k in (i + 1)..j {
                if clusters[k].is_some() && nn[k].is_some_and(|(_, t)| t == j) {
                    stale.push(k);
                }
            }
            let rescanned: Vec<Option<(f64, usize)>> =
                if stale.len().saturating_mul(n) >= PAR_WORK_THRESHOLD {
                    leaps_par::par_map(&stale, |&k| row_nn(&dist, &clusters, k))
                } else {
                    stale.iter().map(|&k| row_nn(&dist, &clusters, k)).collect()
                };
            for (&k, &entry) in stale.iter().zip(&rescanned) {
                nn[k] = entry;
            }
        }
        Dendrogram { n_leaves: n, merges }
    }

    /// The retired full-rescan implementation: every merge rescans all
    /// O(n²) active pairs. Kept (hidden) as the oracle for the
    /// nearest-neighbor-cache [`Dendrogram::build`] in equivalence tests
    /// and as the benchmark baseline — do not use it for real workloads.
    #[doc(hidden)]
    #[must_use]
    #[allow(clippy::needless_range_loop)] // dense matrix code reads best indexed
    pub fn build_rescan(dm: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
        let n = dm.len();
        if n == 0 {
            return Dendrogram { n_leaves: 0, merges: Vec::new() };
        }
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                dist[i][j] = dm.get(i, j);
            }
        }
        let mut clusters: Vec<Option<(usize, usize)>> = (0..n).map(|i| Some((i, 1))).collect();
        let mut active = n;
        let mut merges = Vec::with_capacity(n - 1);

        while active > 1 {
            // Find the closest active pair (first-encountered minimum =
            // smallest indices on ties; NaN sorts last via dist_cmp).
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..n {
                if clusters[i].is_none() {
                    continue;
                }
                for j in (i + 1)..n {
                    if clusters[j].is_none() {
                        continue;
                    }
                    if best.is_none_or(|b| dist_cmp(dist[i][j], b.2) == Ordering::Less) {
                        best = Some((i, j, dist[i][j]));
                    }
                }
            }
            let (i, j, d) = best.expect("at least two active clusters");
            let (id_i, size_i) = clusters[i].expect("active");
            let (id_j, size_j) = clusters[j].expect("active");
            let merged_size = size_i + size_j;
            merges.push(Merge {
                left: id_i.min(id_j),
                right: id_i.max(id_j),
                distance: d,
                size: merged_size,
            });
            for k in 0..n {
                if k == i || k == j || clusters[k].is_none() {
                    continue;
                }
                let updated = linkage.update(size_i, size_j, dist[i][k], dist[j][k]);
                dist[i][k] = updated;
                dist[k][i] = updated;
            }
            clusters[i] = Some((n + merges.len() - 1, merged_size));
            clusters[j] = None;
            active -= 1;
        }
        Dendrogram { n_leaves: n, merges }
    }

    /// Number of leaves.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence (SciPy-style linkage matrix rows).
    #[must_use]
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram so that merges with linkage distance
    /// `<= threshold` are applied. Returns a dense cluster label per leaf
    /// (labels are `0..k` in order of first appearance). Merges recorded
    /// at a NaN distance are never applied.
    #[must_use]
    pub fn cut_at_distance(&self, threshold: f64) -> Vec<u32> {
        let applied = self.merges.iter().map(|m| m.distance <= threshold).collect::<Vec<_>>();
        self.labels_from_applied(&applied)
    }

    /// Cuts the dendrogram to exactly `k` clusters (clamped to
    /// `[1, n_leaves]`): the last `k − 1` merges are undone.
    #[must_use]
    pub fn cut_at_count(&self, k: usize) -> Vec<u32> {
        if self.n_leaves == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, self.n_leaves);
        let n_applied = self.n_leaves - k;
        let applied: Vec<bool> = (0..self.merges.len()).map(|i| i < n_applied).collect();
        self.labels_from_applied(&applied)
    }

    #[allow(clippy::needless_range_loop)]
    fn labels_from_applied(&self, applied: &[bool]) -> Vec<u32> {
        // Union-find over leaves + internal nodes.
        let total = self.n_leaves + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (k, merge) in self.merges.iter().enumerate() {
            let node = self.n_leaves + k;
            if applied[k] {
                let l = find(&mut parent, merge.left);
                let r = find(&mut parent, merge.right);
                parent[l] = node;
                parent[r] = node;
            }
        }
        let mut labels = vec![0u32; self.n_leaves];
        let mut next = 0u32;
        let mut seen: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            let label = *seen.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[leaf] = label;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissim::jaccard_dissimilarity;

    fn two_blob_matrix() -> DistanceMatrix {
        // Leaves 0,1,2 close together; 3,4 close together; blobs far apart.
        DistanceMatrix::from_full(&[
            vec![0.0, 0.1, 0.2, 0.9, 0.8],
            vec![0.1, 0.0, 0.1, 0.9, 0.9],
            vec![0.2, 0.1, 0.0, 0.8, 0.9],
            vec![0.9, 0.9, 0.8, 0.0, 0.1],
            vec![0.8, 0.9, 0.9, 0.1, 0.0],
        ])
    }

    #[test]
    fn builds_n_minus_one_merges_with_nondecreasing_distance_for_upgma() {
        let d = Dendrogram::build(&two_blob_matrix(), Linkage::Average);
        assert_eq!(d.merges().len(), 4);
        // UPGMA on a metric-like matrix is monotone here.
        let dists: Vec<f64> = d.merges().iter().map(|m| m.distance).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{dists:?}");
        assert_eq!(d.merges().last().unwrap().size, 5);
    }

    #[test]
    fn cut_at_count_two_recovers_blobs() {
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let d = Dendrogram::build(&two_blob_matrix(), linkage);
            let labels = d.cut_at_count(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn cut_at_distance_recovers_blobs() {
        let d = Dendrogram::build(&two_blob_matrix(), Linkage::Average);
        let labels = d.cut_at_distance(0.5);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[4]);
        // Threshold below every distance → all singletons.
        let labels = d.cut_at_distance(0.05);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 5);
        // Threshold above everything → one cluster.
        let labels = d.cut_at_distance(1.0);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn cut_count_extremes_and_clamping() {
        let d = Dendrogram::build(&two_blob_matrix(), Linkage::Average);
        assert!(d.cut_at_count(1).iter().all(|&l| l == 0));
        let singletons = d.cut_at_count(99);
        let unique: std::collections::HashSet<_> = singletons.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(d.cut_at_count(0).iter().all(|&l| l == 0)); // clamped to 1
    }

    #[test]
    fn single_vs_complete_differ_on_chains() {
        // A chain: 0-1 close, 1-2 close, 0-2 far. Single linkage chains
        // them together at low threshold; complete linkage does not.
        let dm = DistanceMatrix::from_full(&[
            vec![0.0, 0.1, 0.8],
            vec![0.1, 0.0, 0.1],
            vec![0.8, 0.1, 0.0],
        ]);
        let single = Dendrogram::build(&dm, Linkage::Single).cut_at_distance(0.2);
        assert!(single.iter().all(|&l| l == single[0]));
        let complete = Dendrogram::build(&dm, Linkage::Complete).cut_at_distance(0.2);
        let unique: std::collections::HashSet<_> = complete.iter().collect();
        assert_eq!(unique.len(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = DistanceMatrix::from_full(&[]);
        let d = Dendrogram::build(&empty, Linkage::Average);
        assert_eq!(d.n_leaves(), 0);
        assert!(d.cut_at_distance(0.5).is_empty());

        let one = DistanceMatrix::from_full(&[vec![0.0]]);
        let d = Dendrogram::build(&one, Linkage::Average);
        assert_eq!(d.cut_at_count(1), vec![0]);
        assert!(d.merges().is_empty());
    }

    #[test]
    fn upgma_average_is_exact_mean_of_pairs() {
        // Clusters {0,1} and {2}: UPGMA distance must be mean(d02, d12).
        let dm = DistanceMatrix::from_full(&[
            vec![0.0, 0.1, 0.4],
            vec![0.1, 0.0, 0.6],
            vec![0.4, 0.6, 0.0],
        ]);
        let d = Dendrogram::build(&dm, Linkage::Average);
        assert!((d.merges()[1].distance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_jaccard_sets_merge_at_zero() {
        let sets = vec![vec!["a", "b"], vec!["a", "b"], vec!["c"]];
        let dm = DistanceMatrix::from_sets(&sets, |a, b| jaccard_dissimilarity(a, b));
        let d = Dendrogram::build(&dm, Linkage::Average);
        assert_eq!(d.merges()[0].distance, 0.0);
        let labels = d.cut_at_distance(0.0);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cache_matches_rescan_on_tie_heavy_matrix() {
        // Many exactly-equal distances force the smallest-index
        // tie-break on nearly every merge.
        let n = 9;
        let mut full = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = [0.25, 0.5, 0.25, 0.75][(i + j) % 4];
                full[i][j] = d;
                full[j][i] = d;
            }
        }
        let dm = DistanceMatrix::from_full(&full);
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let cache = Dendrogram::build(&dm, linkage);
            let rescan = Dendrogram::build_rescan(&dm, linkage);
            assert_eq!(cache, rescan, "{linkage:?}");
        }
    }

    #[test]
    fn nan_distances_no_longer_panic() {
        // Regression: before the NaN-last total order, a round in which
        // every remaining pairwise distance was NaN left the closest-pair
        // sentinel untouched and `build` panicked indexing
        // `clusters[usize::MAX]`. Leaves 0..3 are mutually NaN, so after
        // the finite pairs merge, only NaN distances remain.
        let n = 4;
        let data = vec![f64::NAN; n * (n - 1) / 2];
        let dm = DistanceMatrix::from_condensed(n, data);
        let d = Dendrogram::build(&dm, Linkage::Average);
        assert_eq!(d.merges().len(), n - 1);
        // All-NaN: merges happen in smallest-index order at NaN distance.
        assert_eq!((d.merges()[0].left, d.merges()[0].right), (0, 1));
        assert!(d.merges().iter().all(|m| m.distance.is_nan()));
        // NaN merges are never applied by a distance cut: all singletons.
        let labels = d.cut_at_distance(f64::INFINITY);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), n);
        // Count cuts still work (they ignore distances entirely).
        assert!(d.cut_at_count(1).iter().all(|&l| l == 0));
    }

    #[test]
    fn nan_distances_sort_after_finite_ones() {
        // 0-1 finite and close, 2 is NaN-distant from everyone: the
        // finite pair must merge first, the NaN leaf last.
        let dm = DistanceMatrix::from_condensed(3, vec![0.1, f64::NAN, f64::NAN]);
        for build in [Dendrogram::build, Dendrogram::build_rescan] {
            let d = build(&dm, Linkage::Average);
            assert_eq!((d.merges()[0].left, d.merges()[0].right), (0, 1));
            assert_eq!(d.merges()[0].distance, 0.1);
            assert!(d.merges()[1].distance.is_nan());
            // Cutting at any finite threshold keeps the NaN leaf apart.
            let labels = d.cut_at_distance(10.0);
            assert_eq!(labels[0], labels[1]);
            assert_ne!(labels[0], labels[2]);
        }
    }

    #[test]
    fn partial_nan_matrix_matches_rescan_oracle() {
        let dm = DistanceMatrix::from_condensed(
            5,
            vec![0.3, f64::NAN, 0.6, 0.2, f64::NAN, 0.4, f64::NAN, 0.5, 0.1, f64::NAN],
        );
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let cache = Dendrogram::build(&dm, linkage);
            let rescan = Dendrogram::build_rescan(&dm, linkage);
            assert_eq!(cache.merges().len(), rescan.merges().len());
            for (a, b) in cache.merges().iter().zip(rescan.merges()) {
                assert_eq!((a.left, a.right, a.size), (b.left, b.right, b.size), "{linkage:?}");
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{linkage:?}");
            }
        }
    }
}
