//! Agglomerative hierarchical clustering with Lance–Williams updates.
//!
//! The paper uses SciPy's `cluster.hierarchy` with the **UPGMA** linkage
//! ("the distance between any two clusters is the mean distance between
//! all elements of each cluster"). This module implements the same
//! agglomerative procedure from scratch: start with singleton clusters,
//! repeatedly merge the closest pair, and update inter-cluster distances
//! with the linkage-specific Lance–Williams recurrence.

use crate::dissim::DistanceMatrix;

/// Linkage criterion for inter-cluster distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// UPGMA / mean distance between all element pairs (the paper's
    /// choice).
    #[default]
    Average,
    /// Minimum element-pair distance.
    Single,
    /// Maximum element-pair distance.
    Complete,
}

/// One merge step of the dendrogram. Node ids: leaves are `0..n`, the
/// cluster created by `merges[k]` has id `n + k` (SciPy convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node id.
    pub left: usize,
    /// Second merged node id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// A full dendrogram over `n` leaves (`n − 1` merges).
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Runs agglomerative clustering over the distance matrix.
    ///
    /// Ties are broken toward the smallest pair indices so the result is
    /// deterministic.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // dense matrix code reads best indexed
    pub fn build(dm: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
        let n = dm.len();
        if n == 0 {
            return Dendrogram { n_leaves: 0, merges: Vec::new() };
        }
        // Working distance matrix over active clusters.
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in 0..n {
                dist[i][j] = dm.get(i, j);
            }
        }
        // cluster slot -> (node id, leaf count); None = retired slot.
        let mut clusters: Vec<Option<(usize, usize)>> = (0..n).map(|i| Some((i, 1))).collect();
        let mut active = n;
        let mut merges = Vec::with_capacity(n.saturating_sub(1));

        while active > 1 {
            // Find the closest active pair.
            let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
            for i in 0..n {
                if clusters[i].is_none() {
                    continue;
                }
                for j in (i + 1)..n {
                    if clusters[j].is_none() {
                        continue;
                    }
                    if dist[i][j] < best.2 {
                        best = (i, j, dist[i][j]);
                    }
                }
            }
            let (i, j, d) = best;
            let (id_i, size_i) = clusters[i].expect("active");
            let (id_j, size_j) = clusters[j].expect("active");
            let merged_size = size_i + size_j;
            merges.push(Merge {
                left: id_i.min(id_j),
                right: id_i.max(id_j),
                distance: d,
                size: merged_size,
            });
            // Lance–Williams update: new cluster occupies slot i.
            for k in 0..n {
                if k == i || k == j || clusters[k].is_none() {
                    continue;
                }
                let dik = dist[i][k];
                let djk = dist[j][k];
                let updated = match linkage {
                    Linkage::Average => {
                        (size_i as f64 * dik + size_j as f64 * djk) / merged_size as f64
                    }
                    Linkage::Single => dik.min(djk),
                    Linkage::Complete => dik.max(djk),
                };
                dist[i][k] = updated;
                dist[k][i] = updated;
            }
            clusters[i] = Some((n + merges.len() - 1, merged_size));
            clusters[j] = None;
            active -= 1;
        }
        Dendrogram { n_leaves: n, merges }
    }

    /// Number of leaves.
    #[must_use]
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence (SciPy-style linkage matrix rows).
    #[must_use]
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram so that merges with linkage distance
    /// `<= threshold` are applied. Returns a dense cluster label per leaf
    /// (labels are `0..k` in order of first appearance).
    #[must_use]
    pub fn cut_at_distance(&self, threshold: f64) -> Vec<u32> {
        let applied = self.merges.iter().map(|m| m.distance <= threshold).collect::<Vec<_>>();
        self.labels_from_applied(&applied)
    }

    /// Cuts the dendrogram to exactly `k` clusters (clamped to
    /// `[1, n_leaves]`): the last `k − 1` merges are undone.
    #[must_use]
    pub fn cut_at_count(&self, k: usize) -> Vec<u32> {
        if self.n_leaves == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, self.n_leaves);
        let n_applied = self.n_leaves - k;
        let applied: Vec<bool> = (0..self.merges.len()).map(|i| i < n_applied).collect();
        self.labels_from_applied(&applied)
    }

    #[allow(clippy::needless_range_loop)]
    fn labels_from_applied(&self, applied: &[bool]) -> Vec<u32> {
        // Union-find over leaves + internal nodes.
        let total = self.n_leaves + self.merges.len();
        let mut parent: Vec<usize> = (0..total).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (k, merge) in self.merges.iter().enumerate() {
            let node = self.n_leaves + k;
            if applied[k] {
                let l = find(&mut parent, merge.left);
                let r = find(&mut parent, merge.right);
                parent[l] = node;
                parent[r] = node;
            }
        }
        let mut labels = vec![0u32; self.n_leaves];
        let mut next = 0u32;
        let mut seen: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            let label = *seen.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels[leaf] = label;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissim::jaccard_dissimilarity;

    fn two_blob_matrix() -> DistanceMatrix {
        // Leaves 0,1,2 close together; 3,4 close together; blobs far apart.
        DistanceMatrix::from_full(&[
            vec![0.0, 0.1, 0.2, 0.9, 0.8],
            vec![0.1, 0.0, 0.1, 0.9, 0.9],
            vec![0.2, 0.1, 0.0, 0.8, 0.9],
            vec![0.9, 0.9, 0.8, 0.0, 0.1],
            vec![0.8, 0.9, 0.9, 0.1, 0.0],
        ])
    }

    #[test]
    fn builds_n_minus_one_merges_with_nondecreasing_distance_for_upgma() {
        let d = Dendrogram::build(&two_blob_matrix(), Linkage::Average);
        assert_eq!(d.merges().len(), 4);
        // UPGMA on a metric-like matrix is monotone here.
        let dists: Vec<f64> = d.merges().iter().map(|m| m.distance).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{dists:?}");
        assert_eq!(d.merges().last().unwrap().size, 5);
    }

    #[test]
    fn cut_at_count_two_recovers_blobs() {
        for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
            let d = Dendrogram::build(&two_blob_matrix(), linkage);
            let labels = d.cut_at_count(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn cut_at_distance_recovers_blobs() {
        let d = Dendrogram::build(&two_blob_matrix(), Linkage::Average);
        let labels = d.cut_at_distance(0.5);
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[4]);
        // Threshold below every distance → all singletons.
        let labels = d.cut_at_distance(0.05);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 5);
        // Threshold above everything → one cluster.
        let labels = d.cut_at_distance(1.0);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn cut_count_extremes_and_clamping() {
        let d = Dendrogram::build(&two_blob_matrix(), Linkage::Average);
        assert!(d.cut_at_count(1).iter().all(|&l| l == 0));
        let singletons = d.cut_at_count(99);
        let unique: std::collections::HashSet<_> = singletons.iter().collect();
        assert_eq!(unique.len(), 5);
        assert!(d.cut_at_count(0).iter().all(|&l| l == 0)); // clamped to 1
    }

    #[test]
    fn single_vs_complete_differ_on_chains() {
        // A chain: 0-1 close, 1-2 close, 0-2 far. Single linkage chains
        // them together at low threshold; complete linkage does not.
        let dm = DistanceMatrix::from_full(&[
            vec![0.0, 0.1, 0.8],
            vec![0.1, 0.0, 0.1],
            vec![0.8, 0.1, 0.0],
        ]);
        let single = Dendrogram::build(&dm, Linkage::Single).cut_at_distance(0.2);
        assert!(single.iter().all(|&l| l == single[0]));
        let complete = Dendrogram::build(&dm, Linkage::Complete).cut_at_distance(0.2);
        let unique: std::collections::HashSet<_> = complete.iter().collect();
        assert_eq!(unique.len(), 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = DistanceMatrix::from_full(&[]);
        let d = Dendrogram::build(&empty, Linkage::Average);
        assert_eq!(d.n_leaves(), 0);
        assert!(d.cut_at_distance(0.5).is_empty());

        let one = DistanceMatrix::from_full(&[vec![0.0]]);
        let d = Dendrogram::build(&one, Linkage::Average);
        assert_eq!(d.cut_at_count(1), vec![0]);
        assert!(d.merges().is_empty());
    }

    #[test]
    fn upgma_average_is_exact_mean_of_pairs() {
        // Clusters {0,1} and {2}: UPGMA distance must be mean(d02, d12).
        let dm = DistanceMatrix::from_full(&[
            vec![0.0, 0.1, 0.4],
            vec![0.1, 0.0, 0.6],
            vec![0.4, 0.6, 0.0],
        ]);
        let d = Dendrogram::build(&dm, Linkage::Average);
        assert!((d.merges()[1].distance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_jaccard_sets_merge_at_zero() {
        let sets = vec![vec!["a", "b"], vec!["a", "b"], vec!["c"]];
        let dm = DistanceMatrix::from_sets(&sets, |a, b| jaccard_dissimilarity(a, b));
        let d = Dendrogram::build(&dm, Linkage::Average);
        assert_eq!(d.merges()[0].distance, 0.0);
        let labels = d.cut_at_distance(0.0);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }
}
