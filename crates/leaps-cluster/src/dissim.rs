//! Set dissimilarity (paper Eq. 1) and pairwise distance matrices.

/// Jaccard set dissimilarity between two **sorted, deduplicated** slices:
/// `1 − |a ∩ b| / |a ∪ b|` (Eq. 1).
///
/// Two empty sets are defined to be identical (dissimilarity 0).
///
/// ```
/// use leaps_cluster::dissim::jaccard_dissimilarity;
/// let a = ["kernel32", "ntdll"];
/// let b = ["ntdll", "ws2_32"];
/// assert!((jaccard_dissimilarity(&a, &b) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
/// ```
#[must_use]
pub fn jaccard_dissimilarity<T: Ord>(a: &[T], b: &[T]) -> f64 {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "input a must be sorted+deduped");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "input b must be sorted+deduped");
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut intersection = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - intersection;
    1.0 - intersection as f64 / union as f64
}

/// A symmetric pairwise distance matrix with zero diagonal, stored in
/// condensed (upper-triangle) form.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Condensed upper triangle, row-major: entry for `(i, j)` with
    /// `i < j` at index `i*n − i*(i+1)/2 + (j − i − 1)`.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the matrix by applying `dist` to every pair of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `dist` returns a negative or non-finite value.
    #[must_use]
    pub fn from_sets<T>(items: &[T], mut dist: impl FnMut(&T, &T) -> f64) -> Self {
        let n = items.len();
        let mut data = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(&items[i], &items[j]);
                assert!(d.is_finite() && d >= 0.0, "invalid distance {d} for pair ({i},{j})");
                data.push(d);
            }
        }
        DistanceMatrix { n, data }
    }

    /// Parallel [`DistanceMatrix::from_sets`]: upper-triangle rows fan
    /// out across threads (see `leaps_par`) and are concatenated in row
    /// order, so the result is bit-identical to the serial builder at
    /// any thread count. Requires `Fn` (not `FnMut`) because the metric
    /// is evaluated concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `dist` returns a negative or non-finite value.
    #[must_use]
    pub fn from_sets_parallel<T: Sync>(items: &[T], dist: impl Fn(&T, &T) -> f64 + Sync) -> Self {
        let n = items.len();
        let row_tails = leaps_par::par_map_indexed(n.saturating_sub(1), |i| {
            ((i + 1)..n)
                .map(|j| {
                    let d = dist(&items[i], &items[j]);
                    assert!(d.is_finite() && d >= 0.0, "invalid distance {d} for pair ({i},{j})");
                    d
                })
                .collect::<Vec<f64>>()
        });
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for tail in row_tails {
            data.extend(tail);
        }
        DistanceMatrix { n, data }
    }

    /// Builds a matrix directly from its condensed upper triangle
    /// (row-major `(i, j)` entries with `i < j`; see the `data` field
    /// docs for the exact layout).
    ///
    /// Unlike [`DistanceMatrix::from_sets`] and
    /// [`DistanceMatrix::from_full`], entries are taken **as-is**:
    /// non-finite values are permitted. This is the constructor for
    /// dissimilarities carried out of degraded or fault-injected
    /// telemetry — `Dendrogram::build` orders any NaN entry
    /// deterministically *after* every finite distance instead of
    /// panicking on it.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * (n - 1) / 2`.
    #[must_use]
    pub fn from_condensed(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            n * n.saturating_sub(1) / 2,
            "condensed length must be n*(n-1)/2 for n = {n}"
        );
        DistanceMatrix { n, data }
    }

    /// Tolerance for the diagonal and symmetry checks of
    /// [`DistanceMatrix::from_full`]: upstream arithmetic legitimately
    /// produces `-0.0` or O(1e-17) rounding residue on the diagonal.
    const FULL_MATRIX_EPS: f64 = 1e-12;

    /// Builds a matrix from an explicit full square matrix.
    ///
    /// # Panics
    ///
    /// Panics if `full` is not square/symmetric with a zero diagonal
    /// (both checked to within [`Self::FULL_MATRIX_EPS`]), or if any
    /// entry is non-finite — use [`DistanceMatrix::from_condensed`] to
    /// carry non-finite dissimilarities deliberately.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // dense matrix code reads best indexed
    pub fn from_full(full: &[Vec<f64>]) -> Self {
        let n = full.len();
        for (i, row) in full.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix not square");
            assert!(row[i].abs() < Self::FULL_MATRIX_EPS, "nonzero diagonal {} at {i}", row[i]);
        }
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                // Check finiteness first: a NaN would otherwise fail the
                // symmetry comparison with a misleading message.
                assert!(
                    full[i][j].is_finite(),
                    "non-finite distance {} at ({i},{j}); use from_condensed for that",
                    full[i][j]
                );
                assert!(
                    (full[i][j] - full[j][i]).abs() < 1e-12,
                    "matrix not symmetric at ({i},{j})"
                );
                data.push(full[i][j]);
            }
        }
        DistanceMatrix { n, data }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty (zero items).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        if i == j {
            return 0.0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.data[lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets_have_zero_dissimilarity() {
        let a = [1, 2, 3];
        assert_eq!(jaccard_dissimilarity(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_sets_have_unit_dissimilarity() {
        assert_eq!(jaccard_dissimilarity(&[1, 2], &[3, 4]), 1.0);
    }

    #[test]
    fn empty_set_edge_cases() {
        let empty: [i32; 0] = [];
        assert_eq!(jaccard_dissimilarity(&empty, &empty), 0.0);
        assert_eq!(jaccard_dissimilarity(&empty, &[1]), 1.0);
    }

    #[test]
    fn partial_overlap_matches_formula() {
        // |∩| = 2, |∪| = 4 → 1 − 0.5.
        assert!((jaccard_dissimilarity(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let a = ["x", "y", "z"];
        let b = ["w", "y"];
        assert_eq!(jaccard_dissimilarity(&a, &b), jaccard_dissimilarity(&b, &a));
    }

    #[test]
    fn matrix_indexing() {
        let items = [vec![1], vec![1, 2], vec![3]];
        let dm = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
        assert_eq!(dm.len(), 3);
        assert_eq!(dm.get(0, 0), 0.0);
        assert!((dm.get(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(dm.get(0, 2), 1.0);
        assert_eq!(dm.get(1, 0), dm.get(0, 1));
    }

    #[test]
    fn from_full_roundtrip() {
        let full = vec![vec![0.0, 0.3, 0.7], vec![0.3, 0.0, 0.9], vec![0.7, 0.9, 0.0]];
        let dm = DistanceMatrix::from_full(&full);
        for (i, row) in full.iter().enumerate() {
            for (j, &expect) in row.iter().enumerate() {
                assert!((dm.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn from_full_rejects_asymmetry() {
        let _ = DistanceMatrix::from_full(&[vec![0.0, 0.1], vec![0.2, 0.0]]);
    }

    #[test]
    fn from_full_tolerates_rounding_residue_on_diagonal() {
        // Regression: `-0.0` and O(1e-17) residue from upstream float
        // arithmetic used to trip an exact `== 0.0` diagonal check.
        let full = vec![vec![-0.0, 0.4], vec![0.4, 1e-17]];
        let dm = DistanceMatrix::from_full(&full);
        assert_eq!(dm.get(0, 0), 0.0);
        assert_eq!(dm.get(1, 1), 0.0);
        assert!((dm.get(0, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonzero diagonal")]
    fn from_full_still_rejects_real_nonzero_diagonal() {
        let _ = DistanceMatrix::from_full(&[vec![0.5, 0.1], vec![0.1, 0.0]]);
    }

    #[test]
    fn parallel_matches_serial() {
        let items: Vec<Vec<i32>> =
            (0..17).map(|i| (0..=(i % 6)).map(|v| v * (i + 1)).collect()).collect();
        let serial = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
        let parallel =
            DistanceMatrix::from_sets_parallel(&items, |a, b| jaccard_dissimilarity(a, b));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_empty_and_singleton() {
        let none: Vec<Vec<i32>> = vec![];
        assert!(DistanceMatrix::from_sets_parallel(&none, |_, _| 0.0).is_empty());
        let one = vec![vec![1]];
        let dm = DistanceMatrix::from_sets_parallel(&one, |_, _| unreachable!());
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.get(0, 0), 0.0);
    }

    #[test]
    fn from_condensed_roundtrips_and_allows_nan() {
        let dm = DistanceMatrix::from_condensed(3, vec![0.2, f64::NAN, 0.9]);
        assert_eq!(dm.len(), 3);
        assert_eq!(dm.get(0, 1), 0.2);
        assert!(dm.get(0, 2).is_nan());
        assert_eq!(dm.get(2, 1), 0.9);
        assert_eq!(dm.get(1, 1), 0.0);
        assert!(DistanceMatrix::from_condensed(0, Vec::new()).is_empty());
    }

    #[test]
    #[should_panic(expected = "condensed length")]
    fn from_condensed_rejects_wrong_length() {
        let _ = DistanceMatrix::from_condensed(4, vec![0.1; 5]);
    }

    #[test]
    #[should_panic(expected = "non-finite distance")]
    fn from_full_rejects_nan_with_clear_message() {
        // A NaN used to trip the *symmetry* assert (NaN − NaN = NaN)
        // with a misleading message; it is now rejected explicitly.
        let _ = DistanceMatrix::from_full(&[vec![0.0, f64::NAN], vec![f64::NAN, 0.0]]);
    }

    #[test]
    fn empty_matrix() {
        let items: Vec<Vec<i32>> = vec![];
        let dm = DistanceMatrix::from_sets(&items, |a, b| jaccard_dissimilarity(a, b));
        assert!(dm.is_empty());
    }
}
