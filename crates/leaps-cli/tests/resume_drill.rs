//! Crash-recovery drills against the real `leaps` binary: interrupt a
//! checkpointed `leaps train` (deterministically via `--deadline-secs 0`,
//! and with a mid-run SIGKILL), resume it, and require the final model
//! file to be byte-identical to one from an uninterrupted run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_leaps");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("leaps-drill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn leaps(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("spawning the leaps binary")
}

fn assert_success(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed ({}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

/// Generates a scenario's raw logs and returns (benign, mixed) paths.
fn gen_logs(dir: &Path, events: &str, seed: &str) -> (String, String) {
    let data = dir.join("data");
    let out = leaps(&[
        "gen",
        "--scenario",
        "vim_reverse_tcp",
        "--out",
        data.to_str().unwrap(),
        "--events",
        events,
        "--seed",
        seed,
    ]);
    assert_success(&out, "leaps gen");
    (
        data.join("benign.log").to_str().unwrap().to_owned(),
        data.join("mixed.log").to_str().unwrap().to_owned(),
    )
}

fn ckpt_files(dir: &Path) -> Vec<String> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
            .filter(|name| name.ends_with(".ckpt"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

#[test]
fn deadline_zero_pauses_then_resumes_to_identical_model() {
    let dir = scratch("deadline");
    let (benign, mixed) = gen_logs(&dir, "400", "11");
    let clean = dir.join("clean.model");
    let out = leaps(&[
        "train",
        "--benign",
        &benign,
        "--mixed",
        &mixed,
        "--seed",
        "11",
        "--out",
        clean.to_str().unwrap(),
    ]);
    assert_success(&out, "uninterrupted train");

    // --deadline-secs 0: the budget is already expired, so every run
    // pauses at the very next checkpoint boundary — a deterministic
    // interrupt drill with no timing race. Each rerun advances exactly
    // one boundary until training completes.
    let ckpt = dir.join("ckpt");
    let resumed = dir.join("resumed.model");
    let mut pauses = 0usize;
    for attempt in 0..300 {
        let mut args = vec![
            "train",
            "--benign",
            &benign,
            "--mixed",
            &mixed,
            "--seed",
            "11",
            "--out",
            resumed.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--deadline-secs",
            "0",
            "--checkpoint-every",
            "50",
        ];
        if attempt > 0 {
            args.push("--resume");
        }
        let out = leaps(&args);
        match out.status.code() {
            Some(0) => break,
            Some(8) => {
                pauses += 1;
                let stderr = String::from_utf8_lossy(&out.stderr);
                assert!(stderr.contains("--resume"), "pause must advertise --resume: {stderr}");
                assert!(!ckpt_files(&ckpt).is_empty(), "paused without a checkpoint on disk");
            }
            other => panic!("unexpected exit {other:?}:\n{}", String::from_utf8_lossy(&out.stderr)),
        }
        assert!(attempt < 299, "training never completed under the deadline drill");
    }
    assert!(pauses > 0, "the expired deadline never paused training");
    assert!(ckpt_files(&ckpt).is_empty(), "completed training must remove its checkpoints");
    let clean_bytes = std::fs::read(&clean).unwrap();
    let resumed_bytes = std::fs::read(&resumed).unwrap();
    assert_eq!(clean_bytes, resumed_bytes, "resumed model differs from the uninterrupted one");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigkill_mid_training_resumes_to_identical_model() {
    let dir = scratch("sigkill");
    let (benign, mixed) = gen_logs(&dir, "1200", "13");
    let clean = dir.join("clean.model");
    let out = leaps(&[
        "train",
        "--benign",
        &benign,
        "--mixed",
        &mixed,
        "--seed",
        "13",
        "--out",
        clean.to_str().unwrap(),
    ]);
    assert_success(&out, "uninterrupted train");

    let ckpt = dir.join("ckpt");
    let killed = dir.join("killed.model");
    let mut child = Command::new(BIN)
        .args([
            "train",
            "--benign",
            &benign,
            "--mixed",
            &mixed,
            "--seed",
            "13",
            "--out",
            killed.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
            "--checkpoint-every",
            "25",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawning checkpointed train");
    std::thread::sleep(std::time::Duration::from_millis(300));
    // SIGKILL: no atexit handlers, no flushing — whatever checkpoint was
    // last atomically renamed into place is all the resume gets.
    let _ = child.kill();
    let _ = child.wait();

    let out = leaps(&[
        "train",
        "--benign",
        &benign,
        "--mixed",
        &mixed,
        "--seed",
        "13",
        "--out",
        killed.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--checkpoint-every",
        "25",
        "--resume",
    ]);
    assert_success(&out, "resumed train after SIGKILL");
    let clean_bytes = std::fs::read(&clean).unwrap();
    let resumed_bytes = std::fs::read(&killed).unwrap();
    assert_eq!(clean_bytes, resumed_bytes, "post-kill model differs from the uninterrupted one");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_checkpoint_is_rejected_with_model_error() {
    let dir = scratch("foreign");
    let (benign, mixed) = gen_logs(&dir, "400", "11");
    let ckpt = dir.join("ckpt");
    let out_a = dir.join("a.model");
    // Pause a seed-11 run so a checkpoint lands on disk.
    let out = leaps(&[
        "train",
        "--benign",
        &benign,
        "--mixed",
        &mixed,
        "--seed",
        "11",
        "--out",
        out_a.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--deadline-secs",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(8), "{}", String::from_utf8_lossy(&out.stderr));
    // Resuming with a different seed must be refused (exit 4, model
    // error), not silently blended into a wrong model.
    let out = leaps(&[
        "train",
        "--benign",
        &benign,
        "--mixed",
        &mixed,
        "--seed",
        "12",
        "--out",
        out_a.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
        "--resume",
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint"), "diagnostic names the fingerprint: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_flags_require_checkpoint_dir() {
    let out = leaps(&["train", "--benign", "b", "--mixed", "m", "--out", "o", "--resume"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"));
}
