//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A token that is not a `--flag`.
    UnexpectedToken(String),
    /// A required option is absent.
    MissingOption(&'static str),
    /// An option failed to parse.
    InvalidOption {
        /// Option name.
        name: &'static str,
        /// Offending value.
        value: String,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ArgError::UnexpectedToken(tok) => write!(f, "unexpected argument {tok:?}"),
            ArgError::MissingOption(name) => write!(f, "required option --{name} missing"),
            ArgError::InvalidOption { name, value } => {
                write!(f, "invalid value {value:?} for --{name}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Boolean flags that take no value.
    const SWITCHES: [&'static str; 5] = ["lenient", "inject-panic", "resume", "json", "reset"];

    /// Parses `tokens` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on malformed input.
    pub fn parse(tokens: &[String]) -> Result<Args, ArgError> {
        let mut iter = tokens.iter();
        let command = iter.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut options = HashMap::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedToken(tok.clone()));
            };
            if Self::SWITCHES.contains(&key) {
                options.insert(key.to_owned(), "true".to_owned());
                continue;
            }
            let value = iter.next().ok_or_else(|| ArgError::MissingValue(key.to_owned()))?;
            options.insert(key.to_owned(), value.clone());
        }
        Ok(Args { command, options })
    }

    /// Whether a boolean switch (e.g. `--lenient`) was given.
    #[must_use]
    pub fn enabled(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingOption`] if absent.
    pub fn required(&self, name: &'static str) -> Result<&str, ArgError> {
        self.options.get(name).map(String::as_str).ok_or(ArgError::MissingOption(name))
    }

    /// An optional string option.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// An optional parsed option with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::InvalidOption`] if present but unparsable.
    pub fn parse_or<T: std::str::FromStr>(
        &self,
        name: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::InvalidOption { name, value: v.clone() }),
        }
    }

    /// An optional parsed option without a default (`None` when absent).
    ///
    /// # Errors
    ///
    /// [`ArgError::InvalidOption`] if present but unparsable.
    pub fn parse_opt<T: std::str::FromStr>(
        &self,
        name: &'static str,
    ) -> Result<Option<T>, ArgError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(v) => {
                v.parse().map(Some).map_err(|_| ArgError::InvalidOption { name, value: v.clone() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|&x| x.to_owned()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a =
            Args::parse(&toks(&["eval", "--scenario", "vim_reverse_tcp", "--runs", "3"])).unwrap();
        assert_eq!(a.command, "eval");
        assert_eq!(a.required("scenario").unwrap(), "vim_reverse_tcp");
        assert_eq!(a.parse_or("runs", 1usize).unwrap(), 3);
        assert_eq!(a.parse_or("seed", 7u64).unwrap(), 7);
        assert_eq!(a.get("nope"), None);
    }

    #[test]
    fn rejects_missing_command_and_values() {
        assert_eq!(Args::parse(&[]), Err(ArgError::MissingCommand));
        assert_eq!(
            Args::parse(&toks(&["gen", "--out"])),
            Err(ArgError::MissingValue("out".into()))
        );
        assert_eq!(
            Args::parse(&toks(&["gen", "stray"])),
            Err(ArgError::UnexpectedToken("stray".into()))
        );
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse(&toks(&["detect", "--lenient", "--target", "t.log"])).unwrap();
        assert!(a.enabled("lenient"));
        assert_eq!(a.required("target").unwrap(), "t.log");
        let a = Args::parse(&toks(&["detect", "--target", "t.log"])).unwrap();
        assert!(!a.enabled("lenient"));
        // A switch at the end of the line must not demand a value.
        let a = Args::parse(&toks(&["train", "--lenient"])).unwrap();
        assert!(a.enabled("lenient"));
    }

    #[test]
    fn parse_opt_distinguishes_absent_from_invalid() {
        let a = Args::parse(&toks(&["eval", "--threads", "4"])).unwrap();
        assert_eq!(a.parse_opt::<usize>("threads").unwrap(), Some(4));
        assert_eq!(a.parse_opt::<usize>("runs").unwrap(), None);
        let bad = Args::parse(&toks(&["eval", "--threads", "many"])).unwrap();
        assert!(matches!(
            bad.parse_opt::<usize>("threads"),
            Err(ArgError::InvalidOption { name: "threads", .. })
        ));
    }

    #[test]
    fn reports_missing_and_invalid_options() {
        let a = Args::parse(&toks(&["eval", "--runs", "abc"])).unwrap();
        assert_eq!(a.required("scenario"), Err(ArgError::MissingOption("scenario")));
        assert!(matches!(
            a.parse_or("runs", 1usize),
            Err(ArgError::InvalidOption { name: "runs", .. })
        ));
    }

    #[test]
    fn errors_display() {
        assert!(ArgError::MissingOption("x").to_string().contains("--x"));
    }
}
