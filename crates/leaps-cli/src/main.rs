//! `leaps` — command-line front end for the LEAPS camouflaged-attack
//! detector.
//!
//! ```text
//! leaps list
//! leaps gen    --scenario vim_reverse_tcp --out ./data [--events 4000] [--seed 7]
//! leaps eval   --scenario vim_reverse_tcp [--method wsvm] [--runs 3] [--events 2000]
//! leaps detect --benign b.log --mixed m.log --target t.log [--method wsvm] [--lenient]
//! leaps cfg    --log m.log --dot out.dot [--reference b.log]
//! leaps serve  --socket /tmp/leaps.sock --models ./models
//! leaps submit --socket /tmp/leaps.sock --model vim --target t.log
//! ```

mod args;

use args::{ArgError, Args};
use leaps::cfg::dot::to_dot;
use leaps::cfg::infer::infer_cfg;
use leaps::core::config::PipelineConfig;
use leaps::core::error::LeapsError;
use leaps::core::experiment::Experiment;
use leaps::core::persist::{load_classifier_file, save_classifier, save_classifier_to};
use leaps::core::pipeline::{
    try_train_classifier, try_train_classifier_checkpointed, CheckpointSpec, Method, TrainRun,
};
use leaps::core::stream::{StreamDetector, Verdict};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::serve::{Client, Command, Endpoint, Reply, Server, ServerConfig};
use leaps::trace::parser::{parse_log, parse_log_lenient};
use leaps::trace::partition::{partition_events, PartitionedEvent};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
leaps — detect camouflaged attacks (LEAPS, DSN 2015 reproduction)

USAGE:
  leaps list
      List every known dataset scenario.
  leaps gen --scenario NAME --out DIR [--events N] [--seed S] [--ratio R]
      Generate the benign/mixed/malicious raw logs of a scenario.
  leaps eval --scenario NAME [--method cgraph|svm|wsvm|hmm] [--runs N]
             [--events N] [--seed S]
      Train and evaluate on a scenario; prints ACC/PPV/TPR/TNR/NPV.
  leaps train --benign FILE --mixed FILE --out MODEL
              [--method cgraph|svm|wsvm|hmm] [--seed S] [--lenient]
              [--checkpoint-dir DIR [--resume] [--deadline-secs N]
               [--checkpoint-every K]]
      Train a classifier from a benign and a mixed raw log and save it.
      With --checkpoint-dir, training state (CV grid cells, SMO alphas,
      Baum-Welch parameters) is checkpointed atomically to DIR every K
      optimizer passes (default 200), and --deadline-secs pauses at the
      next checkpoint once the budget expires (exit code 8, model not
      written). --resume continues from DIR's checkpoints and produces a
      model byte-identical to an uninterrupted run; checkpoints from a
      different method/seed/input are rejected.
  leaps detect --target FILE (--model MODEL | --benign FILE --mixed FILE)
               [--method cgraph|svm|wsvm|hmm] [--seed S] [--lenient]
      Stream-detect over a target log with a saved model (or train
      in-place from raw logs); prints flagged windows and a summary.
  leaps cfg --log FILE --dot FILE [--reference FILE] [--lenient]
      Infer the CFG of a raw log and write Graphviz; with --reference,
      highlight nodes absent from the reference log's CFG.
  leaps serve (--socket PATH | --tcp ADDR) --models DIR
              [--cap-mb N] [--queue N] [--workers N] [--idle-secs N]
              [--metrics-jsonl PATH [--metrics-every-secs N]]
      Run the detection daemon: clients open per-process sessions over a
      line protocol and stream events; trained models load on demand
      from DIR (LRU-cached under N MiB), flooded sessions shed load with
      BUSY instead of stalling others. With --idle-secs N > 0, sessions
      and connections silent for over N seconds are reaped (default 0 =
      never). With --metrics-jsonl, a background flusher appends one
      JSON metrics snapshot to PATH every N seconds (default 5) and once
      more at shutdown; each snapshot is a single appended line, so
      readers never see a torn record. Stop it with `leaps shutdown`.
  leaps submit (--socket PATH | --tcp ADDR) --model NAME --target FILE
               [--pid N] [--client NAME] [--lenient]
      Stream a raw log to a running daemon as one session and print the
      verdicts — the online counterpart of `leaps detect`.
  leaps health (--socket PATH | --tcp ADDR) [--inject-panic [--shard N]]
      Probe a running daemon: worker liveness, panic/respawn counts,
      session/reap counters, registry state and the idle policy — one
      `health ...` line for supervisors. --inject-panic (daemon started
      with LEAPS_CHAOS=1 only) crashes one pool job first, to verify
      supervision end to end.
  leaps metrics (--socket PATH | --tcp ADDR) [--json] [--reset]
      Dump a running daemon's metrics registry — every counter, gauge
      and latency histogram, one metric per line in the stable METRICS
      wire format (or one JSON object with --json). --reset zeroes
      counters and histograms after the dump; gauges keep their level.
      Like health, works without a HELLO handshake.
  leaps top (--socket PATH | --tcp ADDR) [--interval-secs N] [--iterations N]
      Live metrics view: poll a running daemon every N seconds (default
      2) and render the sorted registry with histogram p50/p95/p99
      latencies. --iterations K stops after K refreshes (default 0 =
      until interrupted).
  leaps shutdown (--socket PATH | --tcp ADDR)
      Ask a running daemon to shut down gracefully (drains all sessions).

GLOBAL OPTIONS:
  --threads N
      Worker threads for training (kernel matrix, CV grid, clustering).
      Overrides the LEAPS_THREADS environment variable; default is the
      number of available cores. Results are identical at any setting;
      N=1 forces the serial path.
  --lenient
      Recover from damaged raw logs instead of failing: unparseable
      records are quarantined, parsing resynchronizes at the next EVENT
      header, and per-class skip statistics go to stderr.

EXIT CODES:
  0 success   2 usage error   3 parse error   4 model error
  5 data error (too little/degenerate data)   6 I/O error
  7 network/protocol error   8 deadline expired (resumable checkpoint
  saved; rerun with --resume)   9 sweep finished with failed cells
  (experiment harnesses only; partial results were written)
";

/// A terminal CLI failure: one stderr line plus a process exit code.
/// Usage-class failures (code 2) also reprint the usage text.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Failure {
        Failure { code: 2, message: message.into() }
    }
}

impl From<ArgError> for Failure {
    fn from(e: ArgError) -> Failure {
        Failure::usage(e.to_string())
    }
}

impl From<LeapsError> for Failure {
    fn from(e: LeapsError) -> Failure {
        Failure { code: e.exit_code(), message: e.to_string() }
    }
}

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(&tokens) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("error: {}", failure.message);
            if failure.code == 2 {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(failure.code)
        }
    }
}

fn run(tokens: &[String]) -> Result<(), Failure> {
    let args = Args::parse(tokens)?;
    if let Some(threads) = args.parse_opt::<usize>("threads")? {
        if threads == 0 {
            return Err(Failure::usage("--threads must be >= 1"));
        }
        leaps::core::par::set_thread_override(Some(threads));
    }
    match args.command.as_str() {
        "list" => cmd_list(),
        "gen" => cmd_gen(&args),
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "detect" => cmd_detect(&args),
        "cfg" => cmd_cfg(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "health" => cmd_health(&args),
        "metrics" => cmd_metrics(&args),
        "top" => cmd_top(&args),
        "shutdown" => cmd_shutdown(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::usage(format!("unknown subcommand {other:?}"))),
    }
}

fn method_of(args: &Args) -> Result<Method, Failure> {
    match args.get("method").unwrap_or("wsvm") {
        "cgraph" => Ok(Method::CGraph),
        "svm" => Ok(Method::Svm),
        "wsvm" => Ok(Method::Wsvm),
        "hmm" => Ok(Method::Hmm),
        other => Err(Failure::usage(format!("unknown method {other:?} (cgraph|svm|wsvm|hmm)"))),
    }
}

fn gen_params(args: &Args) -> Result<GenParams, Failure> {
    let events = args.parse_or("events", 2000usize)?;
    let ratio = args.parse_or("ratio", 0.5f64)?;
    if !(0.0..=1.0).contains(&ratio) {
        return Err(Failure::usage("--ratio must be in [0,1]"));
    }
    Ok(GenParams {
        benign_events: events,
        mixed_events: events,
        malicious_events: events / 2,
        benign_ratio: ratio,
    })
}

fn scenario_of(args: &Args) -> Result<Scenario, Failure> {
    let name = args.required("scenario")?;
    Scenario::by_name(name)
        .ok_or_else(|| Failure::usage(format!("unknown scenario {name:?}; run `leaps list`")))
}

fn cmd_list() -> Result<(), Failure> {
    println!("Table I datasets:");
    for s in Scenario::table1() {
        println!("  {:<34} {}", s.name(), s.method.label());
    }
    println!("\nSource-level trojan extension datasets:");
    for s in Scenario::source_trojans() {
        println!("  {:<34} {}", s.name(), s.method.label());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), Failure> {
    let scenario = scenario_of(args)?;
    let out = args.required("out")?;
    let seed = args.parse_or("seed", 0x1ea5u64)?;
    let params = gen_params(args)?;
    let logs = scenario.generate(&params, seed);
    std::fs::create_dir_all(out).map_err(|e| LeapsError::io(out, &e))?;
    for (name, content) in [
        ("benign.log", &logs.benign),
        ("mixed.log", &logs.mixed),
        ("malicious.log", &logs.malicious),
    ] {
        let path = format!("{out}/{name}");
        std::fs::write(&path, content).map_err(|e| LeapsError::io(&path, &e))?;
        println!("wrote {path} ({} lines)", content.lines().count());
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), Failure> {
    let scenario = scenario_of(args)?;
    let method = method_of(args)?;
    let experiment = Experiment {
        gen: gen_params(args)?,
        runs: args.parse_or("runs", 3usize)?,
        seed: args.parse_or("seed", 0x1ea5u64)?,
        ..Experiment::default()
    };
    println!(
        "evaluating {} with {} ({} runs, {} events/log)...",
        scenario.name(),
        method.label(),
        experiment.runs,
        experiment.gen.benign_events
    );
    let metrics = experiment.run(scenario, method)?;
    println!("{metrics}");
    Ok(())
}

fn load_log(path: &str, lenient: bool) -> Result<Vec<PartitionedEvent>, Failure> {
    let raw = std::fs::read_to_string(path).map_err(|e| LeapsError::io(path, &e))?;
    let events = if lenient {
        let recovered = parse_log_lenient(&raw);
        if !recovered.stats.is_clean() {
            eprintln!("{path}: recovered degraded log: {}", recovered.stats);
        }
        recovered.events
    } else {
        parse_log(&raw)
            .map_err(|e| Failure { code: 3, message: format!("parsing {path}: {e}") })?
            .events
    };
    Ok(partition_events(&events))
}

fn train_from_logs(args: &Args) -> Result<leaps::core::pipeline::Classifier, Failure> {
    let lenient = args.enabled("lenient");
    let benign = load_log(args.required("benign")?, lenient)?;
    let mixed = load_log(args.required("mixed")?, lenient)?;
    let method = method_of(args)?;
    let seed = args.parse_or("seed", 0x1ea5u64)?;
    println!(
        "training {} on {} benign + {} mixed events...",
        method.label(),
        benign.len(),
        mixed.len()
    );
    let classifier =
        try_train_classifier(method, &benign, &mixed, &PipelineConfig::default(), seed)
            .map_err(LeapsError::from)?;
    Ok(classifier)
}

/// The checkpointed training path of `leaps train --checkpoint-dir`.
fn train_checkpointed(
    args: &Args,
    dir: &str,
) -> Result<leaps::core::pipeline::Classifier, Failure> {
    let lenient = args.enabled("lenient");
    let benign = load_log(args.required("benign")?, lenient)?;
    let mixed = load_log(args.required("mixed")?, lenient)?;
    let method = method_of(args)?;
    let seed = args.parse_or("seed", 0x1ea5u64)?;
    let every = args.parse_or("checkpoint-every", 200usize)?;
    if every == 0 {
        return Err(Failure::usage("--checkpoint-every must be >= 1"));
    }
    let spec = CheckpointSpec {
        resume: args.enabled("resume"),
        every,
        deadline: args
            .parse_opt::<u64>("deadline-secs")?
            .map(|secs| leaps::obs::now_micros().saturating_add(secs.saturating_mul(1_000_000))),
        ..CheckpointSpec::new(dir)
    };
    println!(
        "training {} on {} benign + {} mixed events (checkpoints in {dir}{})...",
        method.label(),
        benign.len(),
        mixed.len(),
        if spec.resume { ", resuming" } else { "" }
    );
    let run = try_train_classifier_checkpointed(
        method,
        &benign,
        &mixed,
        &PipelineConfig::default(),
        seed,
        &spec,
    )?;
    match run {
        TrainRun::Done(classifier) => Ok(*classifier),
        TrainRun::Paused { stage, progress } => Err(LeapsError::deadline(format!(
            "training {} (checkpointed {stage} at progress {progress})",
            method.label()
        ))
        .into()),
    }
}

fn cmd_train(args: &Args) -> Result<(), Failure> {
    let out = args.required("out")?;
    for flag in ["resume", "deadline-secs", "checkpoint-every"] {
        if args.get(flag).is_some() && args.get("checkpoint-dir").is_none() {
            return Err(Failure::usage(format!("--{flag} requires --checkpoint-dir")));
        }
    }
    let classifier = match args.get("checkpoint-dir") {
        Some(dir) => train_checkpointed(args, dir)?,
        None => train_from_logs(args)?,
    };
    let text = save_classifier(&classifier);
    // Crash-safe: a kill mid-save leaves the old model (or nothing),
    // never a torn file a later `detect`/`serve` would choke on.
    save_classifier_to(std::path::Path::new(out), &classifier)?;
    println!("wrote model to {out} ({} lines)", text.lines().count());
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), Failure> {
    let target_path = args.required("target")?;
    let target = load_log(target_path, args.enabled("lenient"))?;
    let classifier = match args.get("model") {
        Some(path) => {
            for conflicting in ["benign", "mixed", "method"] {
                if args.get(conflicting).is_some() {
                    return Err(Failure::usage(format!(
                        "--model conflicts with --{conflicting}: a saved model \
                         already fixes the method and training data"
                    )));
                }
            }
            let classifier = load_classifier_file(std::path::Path::new(path))?;
            println!("loaded model from {path}");
            classifier
        }
        None => train_from_logs(args)?,
    };
    let mut detector = StreamDetector::new(classifier);
    let verdicts = detector.push_all(target.iter().cloned());
    let flagged: Vec<_> = verdicts.iter().filter(|v| !v.benign).collect();
    println!(
        "{}: {} verdicts over {} events, {} flagged malicious ({:.1}%)",
        target_path,
        verdicts.len(),
        target.len(),
        flagged.len(),
        100.0 * flagged.len() as f64 / verdicts.len().max(1) as f64
    );
    let stats = detector.stats();
    if stats.gaps > 0 || stats.duplicates > 0 || stats.degraded_verdicts > 0 {
        println!(
            "telemetry quality: {} gaps ({} missing events), {} duplicates dropped, \
             {} reordered, {} degraded verdicts",
            stats.gaps, stats.missing, stats.duplicates, stats.reordered, stats.degraded_verdicts
        );
    }
    print_alerts(flagged.iter().copied(), flagged.len());
    Ok(())
}

#[cfg(unix)]
fn socket_endpoint(path: &str) -> Result<Endpoint, Failure> {
    Ok(Endpoint::Unix(path.into()))
}

#[cfg(not(unix))]
fn socket_endpoint(_path: &str) -> Result<Endpoint, Failure> {
    Err(Failure::usage("--socket needs a Unix platform; use --tcp ADDR"))
}

fn endpoint_of(args: &Args) -> Result<Endpoint, Failure> {
    match (args.get("socket"), args.get("tcp")) {
        (Some(path), None) => socket_endpoint(path),
        (None, Some(addr)) => Ok(Endpoint::Tcp(addr.to_owned())),
        _ => Err(Failure::usage("exactly one of --socket PATH or --tcp ADDR is required")),
    }
}

fn cmd_serve(args: &Args) -> Result<(), Failure> {
    let endpoint = endpoint_of(args)?;
    let models = args.required("models")?;
    let cap_mb = args.parse_or("cap-mb", 64u64)?;
    let queue = args.parse_or("queue", 1024usize)?;
    if queue == 0 {
        return Err(Failure::usage("--queue must be >= 1"));
    }
    let idle_secs = args.parse_or("idle-secs", 0u64)?;
    let config = ServerConfig {
        models_dir: models.into(),
        cache_cap_bytes: cap_mb << 20,
        queue_cap: queue,
        workers: args.parse_or("workers", 0usize)?,
        idle_ttl: (idle_secs > 0).then(|| std::time::Duration::from_secs(idle_secs)),
    };
    let server = Arc::new(Server::try_new(&config)?);
    let reaper = server.start_reaper();
    let flusher = match args.get("metrics-jsonl") {
        Some(path) => {
            let every = args.parse_or("metrics-every-secs", 5u64)?;
            if every == 0 {
                return Err(Failure::usage("--metrics-every-secs must be >= 1"));
            }
            Some(start_metrics_flusher(path, std::time::Duration::from_secs(every))?)
        }
        None => None,
    };
    let bound = endpoint.bind()?;
    let idle = if idle_secs == 0 { "off".to_owned() } else { format!("{idle_secs}s") };
    println!(
        "leaps-serve listening on {} (models {models}, {} workers, queue {queue}, \
         cache {cap_mb} MiB, idle TTL {idle})",
        bound.endpoint(),
        server.stats().workers
    );
    let drained = bound.run(&server)?;
    if let Some(handle) = reaper {
        let _ = handle.join();
    }
    if let Some((stop, handle)) = flusher {
        drop(stop); // disconnects the channel: final flush, then exit
        let _ = handle.join();
    }
    let stats = server.stats();
    println!(
        "leaps-serve shut down: {} sessions served ({} reaped idle), \
         {drained} drained at shutdown, {} worker respawns",
        stats.closed, stats.reaped, stats.respawns
    );
    Ok(())
}

/// Starts the `--metrics-jsonl` background flusher: every `every`, and
/// once more at shutdown, it appends one line
/// `{"unix_ms":<now>,"counters":...,"gauges":...,"hists":...}` to
/// `path`. The line is written with a single `write_all` on an
/// append-mode file, so concurrent readers (and a crash mid-run) see
/// whole records only. Dropping the returned sender stops the thread
/// after a final flush.
fn start_metrics_flusher(
    path: &str,
    every: std::time::Duration,
) -> Result<(std::sync::mpsc::Sender<()>, std::thread::JoinHandle<()>), Failure> {
    use std::io::Write;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| LeapsError::io(path, &e))?;
    let path = path.to_owned();
    let (stop, rx) = std::sync::mpsc::channel::<()>();
    // lint:allow(stray-spawn): the metrics flusher must outlive any one request and dies with the process via the stop channel; routing it through the supervised pool would deadlock shutdown
    let handle = std::thread::spawn(move || loop {
        let done = matches!(
            rx.recv_timeout(every),
            Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected)
        );
        // lint:allow(raw-clock): metrics lines carry epoch wall-clock timestamps for cross-host correlation; the swappable obs clock is monotonic-relative and cannot produce these
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        let body = leaps::obs::registry().snapshot().to_json();
        // Splice the timestamp into the snapshot object: `{"unix_ms":T,` + rest.
        let line = format!("{{\"unix_ms\":{unix_ms},{}\n", &body[1..]);
        if let Err(e) = file.write_all(line.as_bytes()) {
            eprintln!("metrics flusher: appending to {path}: {e}");
            return;
        }
        if done {
            return;
        }
    });
    Ok((stop, handle))
}

fn cmd_metrics(args: &Args) -> Result<(), Failure> {
    let endpoint = endpoint_of(args)?;
    let mut verdicts = Vec::new();
    let mut client = Client::connect(&endpoint)?;
    let snapshot = client.fetch_metrics(args.enabled("reset"), &mut verdicts)?;
    if args.enabled("json") {
        println!("{}", snapshot.to_json());
    } else {
        print!("{}", snapshot.encode());
    }
    Ok(())
}

/// Renders one `leaps top` frame: counters and gauges first, then the
/// latency histograms with log-bucket quantiles.
fn render_top(endpoint: &Endpoint, snapshot: &leaps::obs::Snapshot, iteration: u64) -> String {
    use leaps::obs::Value;
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "leaps top — {endpoint} — {} metrics (refresh {iteration})\n",
        snapshot.len()
    );
    let _ = writeln!(out, "{:<44} {:>14}", "METRIC", "VALUE");
    for entry in &snapshot.entries {
        match &entry.value {
            Value::Counter(v) => {
                let _ = writeln!(out, "{:<44} {v:>14}", entry.name);
            }
            Value::Gauge(v) => {
                let _ = writeln!(out, "{:<44} {v:>14} (gauge)", entry.name);
            }
            Value::Hist(_) => {}
        }
    }
    let hists: Vec<_> = snapshot
        .entries
        .iter()
        .filter_map(|e| match &e.value {
            Value::Hist(h) => Some((e.name.as_str(), h)),
            _ => None,
        })
        .collect();
    if !hists.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<34} {:>10} {:>9} {:>9} {:>9} {:>9}",
            "HISTOGRAM", "COUNT", "MEAN", "P50", "P95", "P99"
        );
        for (name, h) in hists {
            let _ = writeln!(
                out,
                "{name:<34} {:>10} {:>9} {:>9} {:>9} {:>9}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            );
        }
    }
    out
}

fn cmd_top(args: &Args) -> Result<(), Failure> {
    let endpoint = endpoint_of(args)?;
    let interval = args.parse_or("interval-secs", 2u64)?;
    if interval == 0 {
        return Err(Failure::usage("--interval-secs must be >= 1"));
    }
    let iterations = args.parse_or("iterations", 0u64)?;
    let clear_screen = std::io::IsTerminal::is_terminal(&std::io::stdout());
    let mut verdicts = Vec::new();
    let mut client = Client::connect(&endpoint)?;
    let mut iteration = 0u64;
    loop {
        iteration += 1;
        let snapshot = client.fetch_metrics(false, &mut verdicts)?;
        if clear_screen {
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_top(&endpoint, &snapshot, iteration));
        if iterations != 0 && iteration >= iterations {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs(interval));
    }
}

fn cmd_health(args: &Args) -> Result<(), Failure> {
    let endpoint = endpoint_of(args)?;
    let mut verdicts = Vec::new();
    let mut client = Client::connect(&endpoint)?;
    if args.enabled("inject-panic") {
        let shard = args.parse_or("shard", 0u32)?;
        let detail = client.expect_ok(&Command::Panic { shard }, &mut verdicts)?;
        println!("{detail}");
    }
    let detail = client.expect_ok(&Command::Health, &mut verdicts)?;
    println!("{detail}");
    Ok(())
}

fn print_alerts<'a>(flagged: impl IntoIterator<Item = &'a Verdict>, total: usize) {
    for v in flagged.into_iter().take(20) {
        let tag = if v.degraded { " [degraded]" } else { "" };
        match v.score {
            Some(score) => {
                println!("  ALERT window ending @{} (score {score:.3}){tag}", v.last_event);
            }
            None => println!("  ALERT event @{}{tag}", v.last_event),
        }
    }
    if total > 20 {
        println!("  ... {} more", total - 20);
    }
}

fn cmd_submit(args: &Args) -> Result<(), Failure> {
    let endpoint = endpoint_of(args)?;
    let model = args.required("model")?;
    let target_path = args.required("target")?;
    let events = load_log(target_path, args.enabled("lenient"))?;
    let pid = args.parse_or("pid", std::process::id())?;
    let name = args.get("client").unwrap_or("leaps-submit").to_owned();
    let mut verdicts: Vec<(u32, Verdict)> = Vec::new();
    let mut client = Client::connect(&endpoint)?;
    let hello = client.expect_ok(&Command::Hello { client: name }, &mut verdicts)?;
    println!("connected to {endpoint}: {hello}");
    client.expect_ok(&Command::Open { pid, model: model.to_owned() }, &mut verdicts)?;
    let mut busy = 0u64;
    for event in &events {
        match client.request(&Command::Event { pid, event: event.clone() }, &mut verdicts)? {
            Reply::Busy { .. } => busy += 1,
            Reply::Err { family, message } => {
                return Err(LeapsError::protocol(format!(
                    "event {} rejected ({family}): {message}",
                    event.num
                ))
                .into());
            }
            Reply::Ok { .. } | Reply::Verdict { .. } | Reply::Metric { .. } => {}
        }
    }
    let close = client.expect_ok(&Command::Close { pid }, &mut verdicts)?;
    let _ = client.request(&Command::Bye, &mut verdicts);
    let flagged: Vec<&Verdict> =
        verdicts.iter().filter(|(_, v)| !v.benign).map(|(_, v)| v).collect();
    println!(
        "{target_path}: {} events submitted ({busy} answered BUSY), {} verdicts, \
         {} flagged malicious",
        events.len(),
        verdicts.len(),
        flagged.len()
    );
    println!("session report: {close}");
    print_alerts(flagged.iter().copied(), flagged.len());
    Ok(())
}

fn cmd_shutdown(args: &Args) -> Result<(), Failure> {
    let endpoint = endpoint_of(args)?;
    let mut verdicts = Vec::new();
    let mut client = Client::connect(&endpoint)?;
    client.expect_ok(&Command::Hello { client: "leaps-shutdown".to_owned() }, &mut verdicts)?;
    client.expect_ok(&Command::Shutdown, &mut verdicts)?;
    println!("daemon at {endpoint} is shutting down");
    Ok(())
}

fn cmd_cfg(args: &Args) -> Result<(), Failure> {
    let lenient = args.enabled("lenient");
    let events = load_log(args.required("log")?, lenient)?;
    let dot_path = args.required("dot")?;
    let inferred = infer_cfg(&events);
    let reference = match args.get("reference") {
        Some(path) => Some(infer_cfg(&load_log(path, lenient)?).cfg),
        None => None,
    };
    let dot = to_dot(&inferred.cfg, "inferred_cfg", reference.as_ref());
    std::fs::write(dot_path, dot).map_err(|e| LeapsError::io(dot_path, &e))?;
    println!(
        "inferred CFG: {} nodes, {} edges -> {dot_path}",
        inferred.cfg.node_count(),
        inferred.cfg.edge_count()
    );
    Ok(())
}
