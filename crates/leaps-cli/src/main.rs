//! `leaps` — command-line front end for the LEAPS camouflaged-attack
//! detector.
//!
//! ```text
//! leaps list
//! leaps gen    --scenario vim_reverse_tcp --out ./data [--events 4000] [--seed 7]
//! leaps eval   --scenario vim_reverse_tcp [--method wsvm] [--runs 3] [--events 2000]
//! leaps detect --benign b.log --mixed m.log --target t.log [--method wsvm] [--lenient]
//! leaps cfg    --log m.log --dot out.dot [--reference b.log]
//! ```

mod args;

use args::{ArgError, Args};
use leaps::cfg::dot::to_dot;
use leaps::cfg::infer::infer_cfg;
use leaps::core::config::PipelineConfig;
use leaps::core::error::LeapsError;
use leaps::core::experiment::Experiment;
use leaps::core::persist::{load_classifier, save_classifier};
use leaps::core::pipeline::{try_train_classifier, Method};
use leaps::core::stream::StreamDetector;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::trace::parser::{parse_log, parse_log_lenient};
use leaps::trace::partition::{partition_events, PartitionedEvent};
use std::process::ExitCode;

const USAGE: &str = "\
leaps — detect camouflaged attacks (LEAPS, DSN 2015 reproduction)

USAGE:
  leaps list
      List every known dataset scenario.
  leaps gen --scenario NAME --out DIR [--events N] [--seed S] [--ratio R]
      Generate the benign/mixed/malicious raw logs of a scenario.
  leaps eval --scenario NAME [--method cgraph|svm|wsvm|hmm] [--runs N]
             [--events N] [--seed S]
      Train and evaluate on a scenario; prints ACC/PPV/TPR/TNR/NPV.
  leaps train --benign FILE --mixed FILE --out MODEL
              [--method cgraph|svm|wsvm|hmm] [--seed S] [--lenient]
      Train a classifier from a benign and a mixed raw log and save it.
  leaps detect --target FILE (--model MODEL | --benign FILE --mixed FILE)
               [--method cgraph|svm|wsvm|hmm] [--seed S] [--lenient]
      Stream-detect over a target log with a saved model (or train
      in-place from raw logs); prints flagged windows and a summary.
  leaps cfg --log FILE --dot FILE [--reference FILE] [--lenient]
      Infer the CFG of a raw log and write Graphviz; with --reference,
      highlight nodes absent from the reference log's CFG.

GLOBAL OPTIONS:
  --threads N
      Worker threads for training (kernel matrix, CV grid, clustering).
      Overrides the LEAPS_THREADS environment variable; default is the
      number of available cores. Results are identical at any setting;
      N=1 forces the serial path.
  --lenient
      Recover from damaged raw logs instead of failing: unparseable
      records are quarantined, parsing resynchronizes at the next EVENT
      header, and per-class skip statistics go to stderr.

EXIT CODES:
  0 success   2 usage error   3 parse error   4 model error
  5 data error (too little/degenerate data)   6 I/O error
";

/// A terminal CLI failure: one stderr line plus a process exit code.
/// Usage-class failures (code 2) also reprint the usage text.
struct Failure {
    code: u8,
    message: String,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Failure {
        Failure { code: 2, message: message.into() }
    }
}

impl From<ArgError> for Failure {
    fn from(e: ArgError) -> Failure {
        Failure::usage(e.to_string())
    }
}

impl From<LeapsError> for Failure {
    fn from(e: LeapsError) -> Failure {
        Failure { code: e.exit_code(), message: e.to_string() }
    }
}

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(&tokens) {
        Ok(()) => ExitCode::SUCCESS,
        Err(failure) => {
            eprintln!("error: {}", failure.message);
            if failure.code == 2 {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::from(failure.code)
        }
    }
}

fn run(tokens: &[String]) -> Result<(), Failure> {
    let args = Args::parse(tokens)?;
    if let Some(threads) = args.parse_opt::<usize>("threads")? {
        if threads == 0 {
            return Err(Failure::usage("--threads must be >= 1"));
        }
        leaps::core::par::set_thread_override(Some(threads));
    }
    match args.command.as_str() {
        "list" => cmd_list(),
        "gen" => cmd_gen(&args),
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "detect" => cmd_detect(&args),
        "cfg" => cmd_cfg(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(Failure::usage(format!("unknown subcommand {other:?}"))),
    }
}

fn method_of(args: &Args) -> Result<Method, Failure> {
    match args.get("method").unwrap_or("wsvm") {
        "cgraph" => Ok(Method::CGraph),
        "svm" => Ok(Method::Svm),
        "wsvm" => Ok(Method::Wsvm),
        "hmm" => Ok(Method::Hmm),
        other => Err(Failure::usage(format!("unknown method {other:?} (cgraph|svm|wsvm|hmm)"))),
    }
}

fn gen_params(args: &Args) -> Result<GenParams, Failure> {
    let events = args.parse_or("events", 2000usize)?;
    let ratio = args.parse_or("ratio", 0.5f64)?;
    if !(0.0..=1.0).contains(&ratio) {
        return Err(Failure::usage("--ratio must be in [0,1]"));
    }
    Ok(GenParams {
        benign_events: events,
        mixed_events: events,
        malicious_events: events / 2,
        benign_ratio: ratio,
    })
}

fn scenario_of(args: &Args) -> Result<Scenario, Failure> {
    let name = args.required("scenario")?;
    Scenario::by_name(name)
        .ok_or_else(|| Failure::usage(format!("unknown scenario {name:?}; run `leaps list`")))
}

fn cmd_list() -> Result<(), Failure> {
    println!("Table I datasets:");
    for s in Scenario::table1() {
        println!("  {:<34} {}", s.name(), s.method.label());
    }
    println!("\nSource-level trojan extension datasets:");
    for s in Scenario::source_trojans() {
        println!("  {:<34} {}", s.name(), s.method.label());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), Failure> {
    let scenario = scenario_of(args)?;
    let out = args.required("out")?;
    let seed = args.parse_or("seed", 0x1ea5u64)?;
    let params = gen_params(args)?;
    let logs = scenario.generate(&params, seed);
    std::fs::create_dir_all(out).map_err(|e| LeapsError::io(out, &e))?;
    for (name, content) in [
        ("benign.log", &logs.benign),
        ("mixed.log", &logs.mixed),
        ("malicious.log", &logs.malicious),
    ] {
        let path = format!("{out}/{name}");
        std::fs::write(&path, content).map_err(|e| LeapsError::io(&path, &e))?;
        println!("wrote {path} ({} lines)", content.lines().count());
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), Failure> {
    let scenario = scenario_of(args)?;
    let method = method_of(args)?;
    let experiment = Experiment {
        gen: gen_params(args)?,
        runs: args.parse_or("runs", 3usize)?,
        seed: args.parse_or("seed", 0x1ea5u64)?,
        ..Experiment::default()
    };
    println!(
        "evaluating {} with {} ({} runs, {} events/log)...",
        scenario.name(),
        method.label(),
        experiment.runs,
        experiment.gen.benign_events
    );
    let metrics = experiment.run(scenario, method)?;
    println!("{metrics}");
    Ok(())
}

fn load_log(path: &str, lenient: bool) -> Result<Vec<PartitionedEvent>, Failure> {
    let raw = std::fs::read_to_string(path).map_err(|e| LeapsError::io(path, &e))?;
    let events = if lenient {
        let recovered = parse_log_lenient(&raw);
        if !recovered.stats.is_clean() {
            eprintln!("{path}: recovered degraded log: {}", recovered.stats);
        }
        recovered.events
    } else {
        parse_log(&raw)
            .map_err(|e| Failure { code: 3, message: format!("parsing {path}: {e}") })?
            .events
    };
    Ok(partition_events(&events))
}

fn train_from_logs(args: &Args) -> Result<leaps::core::pipeline::Classifier, Failure> {
    let lenient = args.enabled("lenient");
    let benign = load_log(args.required("benign")?, lenient)?;
    let mixed = load_log(args.required("mixed")?, lenient)?;
    let method = method_of(args)?;
    let seed = args.parse_or("seed", 0x1ea5u64)?;
    println!(
        "training {} on {} benign + {} mixed events...",
        method.label(),
        benign.len(),
        mixed.len()
    );
    let classifier =
        try_train_classifier(method, &benign, &mixed, &PipelineConfig::default(), seed)
            .map_err(LeapsError::from)?;
    Ok(classifier)
}

fn cmd_train(args: &Args) -> Result<(), Failure> {
    let out = args.required("out")?;
    let classifier = train_from_logs(args)?;
    let text = save_classifier(&classifier);
    std::fs::write(out, &text).map_err(|e| LeapsError::io(out, &e))?;
    println!("wrote model to {out} ({} lines)", text.lines().count());
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), Failure> {
    let target_path = args.required("target")?;
    let target = load_log(target_path, args.enabled("lenient"))?;
    let classifier = match args.get("model") {
        Some(path) => {
            for conflicting in ["benign", "mixed", "method"] {
                if args.get(conflicting).is_some() {
                    return Err(Failure::usage(format!(
                        "--model conflicts with --{conflicting}: a saved model \
                         already fixes the method and training data"
                    )));
                }
            }
            let text = std::fs::read_to_string(path).map_err(|e| LeapsError::io(path, &e))?;
            let classifier = load_classifier(&text).map_err(LeapsError::from)?;
            println!("loaded model from {path}");
            classifier
        }
        None => train_from_logs(args)?,
    };
    let mut detector = StreamDetector::new(classifier);
    let verdicts = detector.push_all(target.iter().cloned());
    let flagged: Vec<_> = verdicts.iter().filter(|v| !v.benign).collect();
    println!(
        "{}: {} verdicts over {} events, {} flagged malicious ({:.1}%)",
        target_path,
        verdicts.len(),
        target.len(),
        flagged.len(),
        100.0 * flagged.len() as f64 / verdicts.len().max(1) as f64
    );
    let stats = detector.stats();
    if stats.gaps > 0 || stats.duplicates > 0 || stats.degraded_verdicts > 0 {
        println!(
            "telemetry quality: {} gaps ({} missing events), {} duplicates dropped, \
             {} reordered, {} degraded verdicts",
            stats.gaps, stats.missing, stats.duplicates, stats.reordered, stats.degraded_verdicts
        );
    }
    for v in flagged.iter().take(20) {
        let tag = if v.degraded { " [degraded]" } else { "" };
        match v.score {
            Some(score) => {
                println!("  ALERT window ending @{} (score {score:.3}){tag}", v.last_event);
            }
            None => println!("  ALERT event @{}{tag}", v.last_event),
        }
    }
    if flagged.len() > 20 {
        println!("  ... {} more", flagged.len() - 20);
    }
    Ok(())
}

fn cmd_cfg(args: &Args) -> Result<(), Failure> {
    let lenient = args.enabled("lenient");
    let events = load_log(args.required("log")?, lenient)?;
    let dot_path = args.required("dot")?;
    let inferred = infer_cfg(&events);
    let reference = match args.get("reference") {
        Some(path) => Some(infer_cfg(&load_log(path, lenient)?).cfg),
        None => None,
    };
    let dot = to_dot(&inferred.cfg, "inferred_cfg", reference.as_ref());
    std::fs::write(dot_path, dot).map_err(|e| LeapsError::io(dot_path, &e))?;
    println!(
        "inferred CFG: {} nodes, {} edges -> {dot_path}",
        inferred.cfg.node_count(),
        inferred.cfg.edge_count()
    );
    Ok(())
}
