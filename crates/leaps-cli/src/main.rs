//! `leaps` — command-line front end for the LEAPS camouflaged-attack
//! detector.
//!
//! ```text
//! leaps list
//! leaps gen    --scenario vim_reverse_tcp --out ./data [--events 4000] [--seed 7]
//! leaps eval   --scenario vim_reverse_tcp [--method wsvm] [--runs 3] [--events 2000]
//! leaps detect --benign b.log --mixed m.log --target t.log [--method wsvm]
//! leaps cfg    --log m.log --dot out.dot [--reference b.log]
//! ```

mod args;

use args::Args;
use leaps::cfg::dot::to_dot;
use leaps::cfg::infer::infer_cfg;
use leaps::core::config::PipelineConfig;
use leaps::core::experiment::Experiment;
use leaps::core::persist::{load_classifier, save_classifier};
use leaps::core::pipeline::{train_classifier, Method};
use leaps::core::stream::StreamDetector;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::trace::parser::parse_log;
use leaps::trace::partition::{partition_events, PartitionedEvent};
use std::process::ExitCode;

const USAGE: &str = "\
leaps — detect camouflaged attacks (LEAPS, DSN 2015 reproduction)

USAGE:
  leaps list
      List every known dataset scenario.
  leaps gen --scenario NAME --out DIR [--events N] [--seed S] [--ratio R]
      Generate the benign/mixed/malicious raw logs of a scenario.
  leaps eval --scenario NAME [--method cgraph|svm|wsvm|hmm] [--runs N]
             [--events N] [--seed S]
      Train and evaluate on a scenario; prints ACC/PPV/TPR/TNR/NPV.
  leaps train --benign FILE --mixed FILE --out MODEL
              [--method cgraph|svm|wsvm|hmm] [--seed S]
      Train a classifier from a benign and a mixed raw log and save it.
  leaps detect --target FILE (--model MODEL | --benign FILE --mixed FILE)
               [--method cgraph|svm|wsvm|hmm] [--seed S]
      Stream-detect over a target log with a saved model (or train
      in-place from raw logs); prints flagged windows and a summary.
  leaps cfg --log FILE --dot FILE [--reference FILE]
      Infer the CFG of a raw log and write Graphviz; with --reference,
      highlight nodes absent from the reference log's CFG.

GLOBAL OPTIONS:
  --threads N
      Worker threads for training (kernel matrix, CV grid, clustering).
      Overrides the LEAPS_THREADS environment variable; default is the
      number of available cores. Results are identical at any setting;
      N=1 forces the serial path.
";

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    match run(&tokens) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(tokens: &[String]) -> Result<(), String> {
    let args = Args::parse(tokens).map_err(|e| e.to_string())?;
    if let Some(threads) = args.parse_opt::<usize>("threads").map_err(|e| e.to_string())? {
        if threads == 0 {
            return Err("--threads must be >= 1".to_owned());
        }
        leaps::core::par::set_thread_override(Some(threads));
    }
    match args.command.as_str() {
        "list" => cmd_list(),
        "gen" => cmd_gen(&args),
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "detect" => cmd_detect(&args),
        "cfg" => cmd_cfg(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn method_of(args: &Args) -> Result<Method, String> {
    match args.get("method").unwrap_or("wsvm") {
        "cgraph" => Ok(Method::CGraph),
        "svm" => Ok(Method::Svm),
        "wsvm" => Ok(Method::Wsvm),
        "hmm" => Ok(Method::Hmm),
        other => Err(format!("unknown method {other:?} (cgraph|svm|wsvm|hmm)")),
    }
}

fn gen_params(args: &Args) -> Result<GenParams, String> {
    let events = args.parse_or("events", 2000usize).map_err(|e| e.to_string())?;
    let ratio = args.parse_or("ratio", 0.5f64).map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&ratio) {
        return Err("--ratio must be in [0,1]".to_owned());
    }
    Ok(GenParams {
        benign_events: events,
        mixed_events: events,
        malicious_events: events / 2,
        benign_ratio: ratio,
    })
}

fn scenario_of(args: &Args) -> Result<Scenario, String> {
    let name = args.required("scenario").map_err(|e| e.to_string())?;
    Scenario::by_name(name).ok_or_else(|| format!("unknown scenario {name:?}; run `leaps list`"))
}

fn cmd_list() -> Result<(), String> {
    println!("Table I datasets:");
    for s in Scenario::table1() {
        println!("  {:<34} {}", s.name(), s.method.label());
    }
    println!("\nSource-level trojan extension datasets:");
    for s in Scenario::source_trojans() {
        println!("  {:<34} {}", s.name(), s.method.label());
    }
    Ok(())
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let scenario = scenario_of(args)?;
    let out = args.required("out").map_err(|e| e.to_string())?;
    let seed = args.parse_or("seed", 0x1ea5u64).map_err(|e| e.to_string())?;
    let params = gen_params(args)?;
    let logs = scenario.generate(&params, seed);
    std::fs::create_dir_all(out).map_err(|e| format!("creating {out}: {e}"))?;
    for (name, content) in [
        ("benign.log", &logs.benign),
        ("mixed.log", &logs.mixed),
        ("malicious.log", &logs.malicious),
    ] {
        let path = format!("{out}/{name}");
        std::fs::write(&path, content).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path} ({} lines)", content.lines().count());
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let scenario = scenario_of(args)?;
    let method = method_of(args)?;
    let experiment = Experiment {
        gen: gen_params(args)?,
        runs: args.parse_or("runs", 3usize).map_err(|e| e.to_string())?,
        seed: args.parse_or("seed", 0x1ea5u64).map_err(|e| e.to_string())?,
        ..Experiment::default()
    };
    println!(
        "evaluating {} with {} ({} runs, {} events/log)...",
        scenario.name(),
        method.label(),
        experiment.runs,
        experiment.gen.benign_events
    );
    let metrics =
        experiment.run(scenario, method).map_err(|e| format!("evaluation failed: {e}"))?;
    println!("{metrics}");
    Ok(())
}

fn load_log(path: &str) -> Result<Vec<PartitionedEvent>, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let parsed = parse_log(&raw).map_err(|e| format!("parsing {path}: {e}"))?;
    Ok(partition_events(&parsed.events))
}

fn train_from_logs(args: &Args) -> Result<leaps::core::pipeline::Classifier, String> {
    let benign = load_log(args.required("benign").map_err(|e| e.to_string())?)?;
    let mixed = load_log(args.required("mixed").map_err(|e| e.to_string())?)?;
    let method = method_of(args)?;
    let seed = args.parse_or("seed", 0x1ea5u64).map_err(|e| e.to_string())?;
    println!(
        "training {} on {} benign + {} mixed events...",
        method.label(),
        benign.len(),
        mixed.len()
    );
    Ok(train_classifier(method, &benign, &mixed, &PipelineConfig::default(), seed))
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.required("out").map_err(|e| e.to_string())?;
    let classifier = train_from_logs(args)?;
    let text = save_classifier(&classifier);
    std::fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote model to {out} ({} lines)", text.lines().count());
    Ok(())
}

fn cmd_detect(args: &Args) -> Result<(), String> {
    let target_path = args.required("target").map_err(|e| e.to_string())?;
    let target = load_log(target_path)?;
    let classifier = match args.get("model") {
        Some(path) => {
            for conflicting in ["benign", "mixed", "method"] {
                if args.get(conflicting).is_some() {
                    return Err(format!(
                        "--model conflicts with --{conflicting}: a saved model \
                         already fixes the method and training data"
                    ));
                }
            }
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let classifier = load_classifier(&text).map_err(|e| e.to_string())?;
            println!("loaded model from {path}");
            classifier
        }
        None => train_from_logs(args)?,
    };
    let mut detector = StreamDetector::new(classifier);
    let verdicts = detector.push_all(target.iter().cloned());
    let flagged: Vec<_> = verdicts.iter().filter(|v| !v.benign).collect();
    println!(
        "{}: {} verdicts over {} events, {} flagged malicious ({:.1}%)",
        target_path,
        verdicts.len(),
        target.len(),
        flagged.len(),
        100.0 * flagged.len() as f64 / verdicts.len().max(1) as f64
    );
    for v in flagged.iter().take(20) {
        match v.score {
            Some(score) => println!("  ALERT window ending @{} (score {score:.3})", v.last_event),
            None => println!("  ALERT event @{}", v.last_event),
        }
    }
    if flagged.len() > 20 {
        println!("  ... {} more", flagged.len() - 20);
    }
    Ok(())
}

fn cmd_cfg(args: &Args) -> Result<(), String> {
    let events = load_log(args.required("log").map_err(|e| e.to_string())?)?;
    let dot_path = args.required("dot").map_err(|e| e.to_string())?;
    let inferred = infer_cfg(&events);
    let reference = match args.get("reference") {
        Some(path) => Some(infer_cfg(&load_log(path)?).cfg),
        None => None,
    };
    let dot = to_dot(&inferred.cfg, "inferred_cfg", reference.as_ref());
    std::fs::write(dot_path, dot).map_err(|e| format!("writing {dot_path}: {e}"))?;
    println!(
        "inferred CFG: {} nodes, {} edges -> {dot_path}",
        inferred.cfg.node_count(),
        inferred.cfg.edge_count()
    );
    Ok(())
}
