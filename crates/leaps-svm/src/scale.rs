//! Min–max feature scaling.
//!
//! The LEAPS pipeline's discretized features are already normalized to
//! `[0, 1]`; this scaler exists for users feeding raw feature vectors to
//! the SVM (e.g. the Figure 5 illustration uses raw 2-D coordinates) so
//! the Gaussian kernel's radius stays comparable across dimensions.

/// A fitted min–max scaler mapping each dimension to `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on rows of equal dimensionality.
    ///
    /// Constant dimensions map to `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows differ in dimensionality.
    #[must_use]
    pub fn fit(rows: &[Vec<f64>]) -> MinMaxScaler {
        let first = rows.first().expect("cannot fit scaler on empty data");
        let dim = first.len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "row dimensionality mismatch");
            for (d, &v) in row.iter().enumerate() {
                mins[d] = mins[d].min(v);
                maxs[d] = maxs[d].max(v);
            }
        }
        let ranges =
            mins.iter().zip(&maxs).map(|(&lo, &hi)| if hi > lo { hi - lo } else { 1.0 }).collect();
        MinMaxScaler { mins, ranges }
    }

    /// Scales one row (values outside the fitted range are clamped).
    #[must_use]
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.mins.iter().zip(&self.ranges))
            .map(|(&v, (&lo, &range))| ((v - lo) / range).clamp(0.0, 1.0))
            .collect()
    }

    /// Fits on `rows` and scales them all.
    #[must_use]
    pub fn fit_transform(rows: &[Vec<f64>]) -> (MinMaxScaler, Vec<Vec<f64>>) {
        let scaler = MinMaxScaler::fit(rows);
        let scaled = rows.iter().map(|r| scaler.transform(r)).collect();
        (scaler, scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let (scaler, scaled) = MinMaxScaler::fit_transform(&rows);
        assert_eq!(scaled[0], vec![0.0, 0.0]);
        assert_eq!(scaled[2], vec![1.0, 1.0]);
        assert_eq!(scaled[1], vec![0.5, 0.5]);
        assert_eq!(scaler.transform(&[2.5, 15.0]), vec![0.25, 0.25]);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let scaler = MinMaxScaler::fit(&[vec![0.0], vec![1.0]]);
        assert_eq!(scaler.transform(&[-5.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[9.0]), vec![1.0]);
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let scaler = MinMaxScaler::fit(&[vec![7.0], vec![7.0]]);
        assert_eq!(scaler.transform(&[7.0]), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }
}
