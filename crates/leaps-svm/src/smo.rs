//! Sequential minimal optimization for the weighted C-SVC dual (Eq. 4).
//!
//! We solve the LIBSVM-form dual
//!
//! ```text
//! min  ½ αᵀQα − eᵀα      Q_ij = yᵢ yⱼ k(xᵢ, xⱼ)
//! s.t. yᵀα = 0,   0 ≤ αᵢ ≤ Cᵢ        (Cᵢ = λ·cᵢ — per-sample box)
//! ```
//!
//! with maximal-violating-pair working-set selection (LIBSVM's WSS1) and
//! the standard two-variable analytic update. The per-sample upper bounds
//! `Cᵢ` are exactly how a weighted SVM differs from the ordinary C-SVC:
//! a training point with small `cᵢ` can contribute at most a small `αᵢ`,
//! so mislabeled mixed-log points (high benignity → low maliciousness
//! weight) cannot drag the decision boundary.

use crate::data::TrainSet;
use crate::kernel::Kernel;
use crate::model::SvmModel;

/// Numerical floor for the pair curvature.
const TAU: f64 = 1e-12;

/// Solver hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoParams {
    /// Trade-off parameter λ of Eq. 2 (global scale of the per-sample box).
    pub lambda: f64,
    /// KKT-violation stopping tolerance.
    pub eps: f64,
    /// Hard iteration cap (the solver also stops on convergence).
    pub max_iter: usize,
}

impl Default for SmoParams {
    fn default() -> Self {
        SmoParams { lambda: 10.0, eps: 1e-3, max_iter: 100_000 }
    }
}

/// Resumable solver state at an iteration boundary: the dual variables,
/// the gradient (error) cache and the number of completed iterations.
/// Everything else the solver touches (the kernel matrix, labels, box
/// caps) is recomputed deterministically from the training set, so a run
/// resumed from this state is bit-identical to one that never stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoState {
    /// Dual variables α, one per training sample.
    pub alpha: Vec<f64>,
    /// Gradient cache `G_i = Σ_j Q_ij α_j − 1`.
    pub grad: Vec<f64>,
    /// Completed SMO iterations.
    pub iterations: usize,
}

/// Trains a (weighted) SVM on `set` with the given kernel.
///
/// Samples with `cᵢ = 0` have an empty feasible box and are effectively
/// excluded. If one class is entirely zero-weighted the solver returns a
/// degenerate constant model rather than looping.
///
/// # Panics
///
/// Panics if `params.lambda <= 0` or `params.eps <= 0`.
#[must_use]
pub fn train(set: &TrainSet, kernel: Kernel, params: &SmoParams) -> SvmModel {
    train_resumable(set, kernel, params, None, 0, &mut |_| true)
        .expect("non-checkpointing SMO cannot pause")
}

/// [`train`] with iteration-level checkpoint hooks.
///
/// When `every > 0`, `checkpoint` is called at every `every`-th iteration
/// boundary with the current [`SmoState`]; returning `false` pauses the
/// solver (the function returns `None`). Passing the captured state back
/// as `resume` continues the run exactly where it stopped: the kernel
/// matrix is recomputed (it is a pure function of `set`), the α vector
/// and gradient cache are restored bitwise, and every subsequent
/// iteration performs the identical arithmetic — so pause/resume at any
/// boundary yields a model bit-identical to an uninterrupted run.
///
/// # Panics
///
/// Panics if `params` is invalid or `resume` does not match `set`'s size.
#[allow(clippy::needless_range_loop)] // SMO index arithmetic reads best indexed
pub fn train_resumable(
    set: &TrainSet,
    kernel: Kernel,
    params: &SmoParams,
    resume: Option<SmoState>,
    every: usize,
    checkpoint: &mut dyn FnMut(&SmoState) -> bool,
) -> Option<SvmModel> {
    assert!(params.lambda > 0.0, "lambda must be positive");
    assert!(params.eps > 0.0, "eps must be positive");
    let samples = set.samples();
    let n = samples.len();
    let y: Vec<f64> = samples.iter().map(|s| s.y).collect();
    let cap: Vec<f64> = samples.iter().map(|s| params.lambda * s.c).collect();

    // Dense kernel matrix (training sets here are small enough; the
    // caller controls size via sampling). Rows of the upper triangle are
    // independent, so they fan out across threads; every entry is the
    // same `kernel.eval` the serial loop would compute, and assembly is
    // by row index, so the matrix is bit-identical at any thread count.
    // The SMO iteration below stays strictly serial.
    let row_tails = leaps_par::par_map_indexed(n, |i| {
        (i..n).map(|j| kernel.eval(&samples[i].x, &samples[j].x)).collect::<Vec<f64>>()
    });
    let mut k = vec![0.0f64; n * n];
    for (i, tail) in row_tails.iter().enumerate() {
        for (offset, &v) in tail.iter().enumerate() {
            let j = i + offset;
            k[i * n + j] = v;
            k[j * n + i] = v;
        }
    }
    let q = |i: usize, j: usize| y[i] * y[j] * k[i * n + j];

    let (mut alpha, mut grad, mut iterations) = match resume {
        Some(state) => {
            assert_eq!(state.alpha.len(), n, "resume state alpha length mismatch");
            assert_eq!(state.grad.len(), n, "resume state gradient length mismatch");
            (state.alpha, state.grad, state.iterations)
        }
        // Gradient of the dual objective: G_i = Σ_j Q_ij α_j − 1 = −1 at α = 0.
        None => (vec![0.0f64; n], vec![-1.0f64; n], 0usize),
    };

    loop {
        iterations += 1;
        if iterations > params.max_iter {
            break;
        }
        leaps_obs::counter!("train.smo.passes").inc();
        // WSS1: maximal violating pair.
        let mut m_val = f64::NEG_INFINITY;
        let mut m_idx = usize::MAX;
        let mut big_m_val = f64::INFINITY;
        let mut big_m_idx = usize::MAX;
        for t in 0..n {
            let in_up = (y[t] > 0.0 && alpha[t] < cap[t]) || (y[t] < 0.0 && alpha[t] > 0.0);
            let in_low = (y[t] < 0.0 && alpha[t] < cap[t]) || (y[t] > 0.0 && alpha[t] > 0.0);
            let v = -y[t] * grad[t];
            if in_up && v > m_val {
                m_val = v;
                m_idx = t;
            }
            if in_low && v < big_m_val {
                big_m_val = v;
                big_m_idx = t;
            }
        }
        if m_idx == usize::MAX || big_m_idx == usize::MAX || m_val - big_m_val < params.eps {
            break;
        }
        let (i, j) = (m_idx, big_m_idx);

        // Two-variable analytic update (LIBSVM).
        let old_ai = alpha[i];
        let old_aj = alpha[j];
        if y[i] != y[j] {
            let mut quad = q(i, i) + q(j, j) + 2.0 * q(i, j);
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (-grad[i] - grad[j]) / quad;
            let diff = alpha[i] - alpha[j];
            alpha[i] += delta;
            alpha[j] += delta;
            if diff > 0.0 {
                if alpha[j] < 0.0 {
                    alpha[j] = 0.0;
                    alpha[i] = diff;
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = -diff;
            }
            if diff > cap[i] - cap[j] {
                if alpha[i] > cap[i] {
                    alpha[i] = cap[i];
                    alpha[j] = cap[i] - diff;
                }
            } else if alpha[j] > cap[j] {
                alpha[j] = cap[j];
                alpha[i] = cap[j] + diff;
            }
        } else {
            let mut quad = q(i, i) + q(j, j) - 2.0 * q(i, j);
            if quad <= 0.0 {
                quad = TAU;
            }
            let delta = (grad[i] - grad[j]) / quad;
            let sum = alpha[i] + alpha[j];
            alpha[i] -= delta;
            alpha[j] += delta;
            if sum > cap[i] {
                if alpha[i] > cap[i] {
                    alpha[i] = cap[i];
                    alpha[j] = sum - cap[i];
                }
            } else if alpha[j] < 0.0 {
                alpha[j] = 0.0;
                alpha[i] = sum;
            }
            if sum > cap[j] {
                if alpha[j] > cap[j] {
                    alpha[j] = cap[j];
                    alpha[i] = sum - cap[j];
                }
            } else if alpha[i] < 0.0 {
                alpha[i] = 0.0;
                alpha[j] = sum;
            }
        }

        // Gradient update.
        let di = alpha[i] - old_ai;
        let dj = alpha[j] - old_aj;
        if di != 0.0 || dj != 0.0 {
            for t in 0..n {
                grad[t] += q(t, i) * di + q(t, j) * dj;
            }
        }

        // Iteration boundary: everything the solver will ever read again
        // lives in (alpha, grad, iterations) — offer it as a checkpoint.
        if every > 0 && iterations % every == 0 {
            let state = SmoState { alpha: alpha.clone(), grad: grad.clone(), iterations };
            if !checkpoint(&state) {
                return None;
            }
        }
    }

    let rho = compute_rho(&alpha, &grad, &y, &cap, params.eps);
    Some(SvmModel::from_training(samples, &alpha, -rho, kernel, iterations))
}

/// LIBSVM `calculate_rho`: average `y_i·G_i` over free support vectors,
/// falling back to the midpoint of the feasible interval.
fn compute_rho(alpha: &[f64], grad: &[f64], y: &[f64], cap: &[f64], _eps: f64) -> f64 {
    let mut n_free = 0usize;
    let mut sum_free = 0.0f64;
    let mut ub = f64::INFINITY;
    let mut lb = f64::NEG_INFINITY;
    for t in 0..alpha.len() {
        let yg = y[t] * grad[t];
        if alpha[t] <= 0.0 {
            if y[t] > 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else if alpha[t] >= cap[t] {
            if y[t] < 0.0 {
                ub = ub.min(yg);
            } else {
                lb = lb.max(yg);
            }
        } else {
            n_free += 1;
            sum_free += yg;
        }
    }
    if n_free > 0 {
        sum_free / n_free as f64
    } else {
        (ub + lb) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Sample;

    fn set(samples: Vec<Sample>) -> TrainSet {
        TrainSet::new(samples).unwrap()
    }

    #[test]
    fn separable_linear_problem_is_solved() {
        let s = set(vec![
            Sample::new(vec![0.0, 0.0], 1.0, 1.0),
            Sample::new(vec![0.5, 0.0], 1.0, 1.0),
            Sample::new(vec![0.0, 0.5], 1.0, 1.0),
            Sample::new(vec![3.0, 3.0], -1.0, 1.0),
            Sample::new(vec![3.5, 3.0], -1.0, 1.0),
            Sample::new(vec![3.0, 3.5], -1.0, 1.0),
        ]);
        let model = train(&s, Kernel::Linear, &SmoParams::default());
        for sample in s.samples() {
            assert_eq!(model.predict(&sample.x), sample.y, "{:?}", sample.x);
        }
        // Margin property: decision magnitude ≥ ~1 on the support side.
        assert!(model.decision(&[0.0, 0.0]) >= 0.9);
        assert!(model.decision(&[3.5, 3.5]) <= -0.9);
    }

    #[test]
    fn xor_needs_gaussian_kernel() {
        let xor = set(vec![
            Sample::new(vec![0.0, 0.0], 1.0, 1.0),
            Sample::new(vec![1.0, 1.0], 1.0, 1.0),
            Sample::new(vec![0.0, 1.0], -1.0, 1.0),
            Sample::new(vec![1.0, 0.0], -1.0, 1.0),
        ]);
        let model = train(
            &xor,
            Kernel::Gaussian { sigma2: 0.5 },
            &SmoParams { lambda: 100.0, ..Default::default() },
        );
        for sample in xor.samples() {
            assert_eq!(model.predict(&sample.x), sample.y, "{:?}", sample.x);
        }
    }

    #[test]
    fn dual_feasibility_holds() {
        let s = set(vec![
            Sample::new(vec![0.1], 1.0, 1.0),
            Sample::new(vec![0.2], 1.0, 0.3),
            Sample::new(vec![0.9], -1.0, 1.0),
            Sample::new(vec![0.8], -1.0, 0.7),
        ]);
        let params = SmoParams { lambda: 5.0, ..Default::default() };
        let model = train(&s, Kernel::Gaussian { sigma2: 1.0 }, &params);
        // Σ αᵢ yᵢ = 0 and 0 ≤ αᵢ ≤ λ·cᵢ.
        let mut balance = 0.0;
        for (alpha_y, sample) in model.dual_coefficients() {
            balance += alpha_y;
            let alpha = alpha_y.abs();
            let c = s.samples().iter().find(|t| t.x == *sample).map(|t| t.c).unwrap();
            assert!(alpha <= params.lambda * c + 1e-9, "box violated: {alpha} > λ·{c}");
        }
        assert!(balance.abs() < 1e-9, "equality constraint violated: {balance}");
    }

    #[test]
    fn zero_weight_samples_are_excluded_from_the_solution() {
        // The mislabeled point (benign feature labeled −1) has weight 0:
        // the boundary must ignore it.
        let s = set(vec![
            Sample::new(vec![0.0], 1.0, 1.0),
            Sample::new(vec![0.1], 1.0, 1.0),
            Sample::new(vec![0.05], -1.0, 0.0), // mislabeled, zero weight
            Sample::new(vec![1.0], -1.0, 1.0),
            Sample::new(vec![0.9], -1.0, 1.0),
        ]);
        let model = train(&s, Kernel::Gaussian { sigma2: 0.5 }, &SmoParams::default());
        assert_eq!(model.predict(&[0.05]), 1.0);
        // No support vector at the zero-weight point.
        assert!(model.dual_coefficients().all(|(a, x)| x[0] != 0.05 || a.abs() < 1e-12));
    }

    #[test]
    fn weighted_beats_unweighted_under_label_noise() {
        // Negative class contaminated with points that are actually from
        // the positive cluster. Downweighting them (as CFG guidance would)
        // must recover the clean boundary.
        let mut noisy = Vec::new();
        let mut weighted = Vec::new();
        for i in 0..10 {
            let x = 0.05 * f64::from(i);
            noisy.push(Sample::new(vec![x], 1.0, 1.0));
            weighted.push(Sample::new(vec![x], 1.0, 1.0));
        }
        for i in 0..10 {
            let x = 2.0 + 0.05 * f64::from(i);
            noisy.push(Sample::new(vec![x], -1.0, 1.0));
            weighted.push(Sample::new(vec![x], -1.0, 1.0));
        }
        // Contamination: positive-cluster points labeled negative,
        // outnumbering the true positives (a heavily noisy mixed log).
        for i in 0..16 {
            let x = 0.012 + 0.028 * f64::from(i);
            noisy.push(Sample::new(vec![x], -1.0, 1.0));
            weighted.push(Sample::new(vec![x], -1.0, 0.02));
        }
        let params = SmoParams { lambda: 10.0, ..Default::default() };
        let kernel = Kernel::Gaussian { sigma2: 0.5 };
        let plain = train(&set(noisy), kernel, &params);
        let guided = train(&set(weighted), kernel, &params);

        let probe: Vec<f64> = (0..10).map(|i| 0.025 + 0.05 * f64::from(i)).collect();
        let plain_correct = probe.iter().filter(|&&x| plain.predict(&[x]) == 1.0).count();
        let guided_correct = probe.iter().filter(|&&x| guided.predict(&[x]) == 1.0).count();
        assert!(guided_correct > plain_correct, "guided {guided_correct} vs plain {plain_correct}");
        assert_eq!(guided_correct, probe.len());
    }

    #[test]
    fn solver_reports_iterations_and_terminates() {
        let s = set(vec![Sample::new(vec![0.0], 1.0, 1.0), Sample::new(vec![1.0], -1.0, 1.0)]);
        let model = train(&s, Kernel::Linear, &SmoParams::default());
        assert!(model.iterations() >= 1);
        assert!(model.iterations() < 1000);
    }

    fn overlapping_set() -> TrainSet {
        // Overlapping classes so the solver needs many iterations.
        let mut samples = Vec::new();
        for i in 0..24 {
            let x = 0.04 * f64::from(i);
            samples.push(Sample::new(vec![x, 1.0 - x], 1.0, 1.0));
            samples.push(Sample::new(vec![x + 0.3, 0.8 - x], -1.0, 0.2 + 0.02 * f64::from(i)));
        }
        set(samples)
    }

    #[test]
    fn pause_and_resume_is_bit_identical() {
        let s = overlapping_set();
        let kernel = Kernel::Gaussian { sigma2: 0.5 };
        let params = SmoParams { lambda: 50.0, ..Default::default() };
        let reference = train(&s, kernel, &params);
        assert!(reference.iterations() > 10, "need a long run: {}", reference.iterations());

        for pause_at in [1usize, 2, 5, 9] {
            // Pause at the `pause_at`-th checkpoint...
            let mut captured = None;
            let mut seen = 0usize;
            let paused = train_resumable(&s, kernel, &params, None, 1, &mut |state| {
                seen += 1;
                if seen == pause_at {
                    captured = Some(state.clone());
                    false
                } else {
                    true
                }
            });
            assert!(paused.is_none());
            let state = captured.expect("checkpoint captured");
            assert_eq!(state.iterations, pause_at);
            // ...and resume: the final model must match bit for bit.
            let resumed =
                train_resumable(&s, kernel, &params, Some(state), 1, &mut |_| true).unwrap();
            assert_eq!(resumed, reference, "paused at {pause_at}");
        }
    }

    #[test]
    fn zero_every_never_checkpoints() {
        let s = overlapping_set();
        let mut calls = 0usize;
        let model =
            train_resumable(&s, Kernel::Linear, &SmoParams::default(), None, 0, &mut |_| {
                calls += 1;
                true
            })
            .unwrap();
        assert_eq!(calls, 0);
        assert_eq!(model, train(&s, Kernel::Linear, &SmoParams::default()));
    }

    #[test]
    #[should_panic(expected = "alpha length mismatch")]
    fn resume_state_must_match_set() {
        let s = overlapping_set();
        let bogus = SmoState { alpha: vec![0.0; 3], grad: vec![-1.0; 3], iterations: 1 };
        let _ =
            train_resumable(&s, Kernel::Linear, &SmoParams::default(), Some(bogus), 0, &mut |_| {
                true
            });
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn rejects_nonpositive_lambda() {
        let s = set(vec![Sample::new(vec![0.0], 1.0, 1.0), Sample::new(vec![1.0], -1.0, 1.0)]);
        let _ = train(&s, Kernel::Linear, &SmoParams { lambda: 0.0, ..Default::default() });
    }
}
