//! The trained SVM model: support vectors, dual coefficients and bias.

use crate::data::Sample;
use crate::kernel::Kernel;

/// A trained binary SVM classifier.
///
/// The decision function is Eq. 5 of the paper (plus the bias term the
/// solver computes):
///
/// ```text
/// f(x) = Σᵢ αᵢ yᵢ k(xᵢ, x) + b
/// ```
///
/// `x` is classified positive (benign) if `f(x) ≥ 0` and negative
/// (malicious) if `f(x) < 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    support_x: Vec<Vec<f64>>,
    /// `αᵢ·yᵢ` per support vector.
    alpha_y: Vec<f64>,
    bias: f64,
    kernel: Kernel,
    iterations: usize,
}

impl SvmModel {
    /// Builds the model from a completed SMO solution, keeping only
    /// support vectors (`αᵢ > 0`).
    #[must_use]
    pub fn from_training(
        samples: &[Sample],
        alpha: &[f64],
        bias: f64,
        kernel: Kernel,
        iterations: usize,
    ) -> SvmModel {
        let mut support_x = Vec::new();
        let mut alpha_y = Vec::new();
        for (sample, &a) in samples.iter().zip(alpha) {
            if a > 0.0 {
                support_x.push(sample.x.clone());
                alpha_y.push(a * sample.y);
            }
        }
        SvmModel { support_x, alpha_y, bias, kernel, iterations }
    }

    /// Reassembles a model from persisted parts. `support_x` and
    /// `alpha_y` must be parallel.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn from_parts(
        support_x: Vec<Vec<f64>>,
        alpha_y: Vec<f64>,
        bias: f64,
        kernel: Kernel,
    ) -> SvmModel {
        assert_eq!(support_x.len(), alpha_y.len(), "parts length mismatch");
        SvmModel { support_x, alpha_y, bias, kernel, iterations: 0 }
    }

    /// The raw decision value `f(x)`.
    #[must_use]
    pub fn decision(&self, x: &[f64]) -> f64 {
        let mut sum = self.bias;
        for (sv, &ay) in self.support_x.iter().zip(&self.alpha_y) {
            sum += ay * self.kernel.eval(sv, x);
        }
        sum
    }

    /// The predicted label: `+1.0` if `f(x) ≥ 0`, else `-1.0`
    /// ("`x` is classified as malicious if `f(x) < 0`").
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors.
    #[must_use]
    pub fn support_vector_count(&self) -> usize {
        self.support_x.len()
    }

    /// Iterates `(αᵢ·yᵢ, support vector)` pairs.
    pub fn dual_coefficients(&self) -> impl Iterator<Item = (f64, &Vec<f64>)> {
        self.alpha_y.iter().copied().zip(self.support_x.iter())
    }

    /// Bias term `b`.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The kernel the model was trained with.
    #[must_use]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// SMO iterations the training run took.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SvmModel {
        // Hand-built: two support vectors at ±1 with a linear kernel →
        // f(x) = α(k(1,x) − k(−1,x)) = α·2x.
        SvmModel::from_training(
            &[
                Sample::new(vec![1.0], 1.0, 1.0),
                Sample::new(vec![-1.0], -1.0, 1.0),
                Sample::new(vec![5.0], 1.0, 1.0), // α = 0 → not a support vector
            ],
            &[0.5, 0.5, 0.0],
            0.0,
            Kernel::Linear,
            7,
        )
    }

    #[test]
    fn zero_alpha_samples_are_dropped() {
        let m = model();
        assert_eq!(m.support_vector_count(), 2);
        assert_eq!(m.iterations(), 7);
    }

    #[test]
    fn decision_matches_hand_computation() {
        let m = model();
        // f(x) = 0.5·x − 0.5·(−x) = x.
        assert!((m.decision(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((m.decision(&[-3.0]) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn predict_uses_sign_with_zero_positive() {
        let m = model();
        assert_eq!(m.predict(&[0.0]), 1.0);
        assert_eq!(m.predict(&[1.0]), 1.0);
        assert_eq!(m.predict(&[-1e-9]), -1.0);
    }

    #[test]
    fn bias_shifts_decision() {
        let m = SvmModel::from_training(
            &[Sample::new(vec![1.0], 1.0, 1.0), Sample::new(vec![-1.0], -1.0, 1.0)],
            &[0.5, 0.5],
            1.5,
            Kernel::Linear,
            1,
        );
        assert!((m.decision(&[0.0]) - 1.5).abs() < 1e-12);
        assert_eq!(m.bias(), 1.5);
    }
}
