//! Training data types for the (weighted) SVM.

use std::error::Error;
use std::fmt;

/// One training point: feature vector, binary label and confidence weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector.
    pub x: Vec<f64>,
    /// Label, `+1.0` (benign/positive) or `-1.0` (malicious/negative).
    pub y: f64,
    /// Confidence weight `cᵢ ∈ [0, 1]` (Eq. 2). `1.0` for unweighted SVM.
    pub c: f64,
}

impl Sample {
    /// Creates a sample.
    #[must_use]
    pub fn new(x: Vec<f64>, y: f64, c: f64) -> Self {
        Sample { x, y, c }
    }
}

/// Errors constructing a [`TrainSet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// No samples were provided.
    Empty,
    /// Sample `index` has a different dimensionality than sample 0.
    DimensionMismatch {
        /// Offending sample index.
        index: usize,
        /// Expected dimensionality.
        expected: usize,
        /// Found dimensionality.
        found: usize,
    },
    /// Sample `index` has a label other than ±1.
    BadLabel {
        /// Offending sample index.
        index: usize,
    },
    /// Sample `index` has a weight outside `[0, 1]` or a non-finite
    /// feature value.
    BadValue {
        /// Offending sample index.
        index: usize,
    },
    /// All samples share one label; a binary classifier cannot be trained.
    SingleClass,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Empty => write!(f, "no training samples"),
            DataError::DimensionMismatch { index, expected, found } => {
                write!(f, "sample {index} has dimension {found}, expected {expected}")
            }
            DataError::BadLabel { index } => {
                write!(f, "sample {index} has a label other than +1/-1")
            }
            DataError::BadValue { index } => {
                write!(f, "sample {index} has a weight outside [0,1] or non-finite feature")
            }
            DataError::SingleClass => write!(f, "all samples share one label"),
        }
    }
}

impl Error for DataError {}

/// A validated training set: non-empty, consistent dimensionality, labels
/// in {−1, +1}, weights in `[0, 1]`, both classes present.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSet {
    samples: Vec<Sample>,
    dim: usize,
}

impl TrainSet {
    /// Validates and wraps the samples.
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] describing the first violated invariant.
    pub fn new(samples: Vec<Sample>) -> Result<TrainSet, DataError> {
        let Some(first) = samples.first() else {
            return Err(DataError::Empty);
        };
        let dim = first.x.len();
        let mut pos = false;
        let mut neg = false;
        for (index, s) in samples.iter().enumerate() {
            if s.x.len() != dim {
                return Err(DataError::DimensionMismatch {
                    index,
                    expected: dim,
                    found: s.x.len(),
                });
            }
            if s.y == 1.0 {
                pos = true;
            } else if s.y == -1.0 {
                neg = true;
            } else {
                return Err(DataError::BadLabel { index });
            }
            if !(0.0..=1.0).contains(&s.c) || s.x.iter().any(|v| !v.is_finite()) {
                return Err(DataError::BadValue { index });
            }
        }
        if !(pos && neg) {
            return Err(DataError::SingleClass);
        }
        Ok(TrainSet { samples, dim })
    }

    /// The validated samples.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Always false (a `TrainSet` is non-empty by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_samples() -> Vec<Sample> {
        vec![Sample::new(vec![0.0, 1.0], 1.0, 1.0), Sample::new(vec![2.0, 3.0], -1.0, 0.5)]
    }

    #[test]
    fn valid_set_constructs() {
        let set = TrainSet::new(ok_samples()).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.dim(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(TrainSet::new(vec![]), Err(DataError::Empty));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut s = ok_samples();
        s.push(Sample::new(vec![1.0], 1.0, 1.0));
        assert_eq!(
            TrainSet::new(s),
            Err(DataError::DimensionMismatch { index: 2, expected: 2, found: 1 })
        );
    }

    #[test]
    fn bad_label_rejected() {
        let mut s = ok_samples();
        s[0].y = 0.5;
        assert_eq!(TrainSet::new(s), Err(DataError::BadLabel { index: 0 }));
    }

    #[test]
    fn bad_weight_and_nan_rejected() {
        let mut s = ok_samples();
        s[1].c = 1.5;
        assert_eq!(TrainSet::new(s), Err(DataError::BadValue { index: 1 }));
        let mut s = ok_samples();
        s[0].x[0] = f64::NAN;
        assert_eq!(TrainSet::new(s), Err(DataError::BadValue { index: 0 }));
    }

    #[test]
    fn single_class_rejected() {
        let s = vec![Sample::new(vec![0.0], 1.0, 1.0), Sample::new(vec![1.0], 1.0, 1.0)];
        assert_eq!(TrainSet::new(s), Err(DataError::SingleClass));
    }

    #[test]
    fn errors_display() {
        assert!(DataError::SingleClass.to_string().contains("one label"));
        assert!(DataError::Empty.to_string().contains("no training samples"));
    }
}
