//! From-scratch (weighted) support vector machine with kernels, an SMO
//! solver and cross-validation — the paper's Supervised Statistical
//! Learning Module (Section III-D-2, Eq. 2–5).
//!
//! The paper trains a **Weighted SVM**: the usual soft-margin C-SVC where
//! each training point carries its own confidence `cᵢ ∈ [0, 1]`, giving
//! the per-sample box constraint `0 ≤ αᵢ ≤ λ·cᵢ` in the dual (Eq. 4).
//! Setting every `cᵢ = 1` recovers the ordinary SVM baseline. The solver
//! is a LIBSVM-style SMO with maximal-violating-pair working-set
//! selection — the same optimization LIBSVM performs for the paper's
//! implementation.
//!
//! # Example
//!
//! ```
//! use leaps_svm::data::{Sample, TrainSet};
//! use leaps_svm::kernel::Kernel;
//! use leaps_svm::smo::{SmoParams, train};
//!
//! // A tiny linearly separable problem.
//! let samples = vec![
//!     Sample::new(vec![0.0, 0.0], 1.0, 1.0),
//!     Sample::new(vec![0.0, 1.0], 1.0, 1.0),
//!     Sample::new(vec![3.0, 3.0], -1.0, 1.0),
//!     Sample::new(vec![3.0, 4.0], -1.0, 1.0),
//! ];
//! let set = TrainSet::new(samples)?;
//! let model = train(&set, Kernel::Linear, &SmoParams::default());
//! assert!(model.decision(&[0.0, 0.5]) > 0.0);
//! assert!(model.decision(&[3.0, 3.5]) < 0.0);
//! # Ok::<(), leaps_svm::data::DataError>(())
//! ```

pub mod cv;
pub mod data;
pub mod kernel;
pub mod model;
pub mod scale;
pub mod smo;

pub use cv::{GridSearch, GridSearchResult};
pub use data::{Sample, TrainSet};
pub use kernel::Kernel;
pub use model::SvmModel;
pub use smo::{train, SmoParams};
