//! Kernel functions for the SVM.

/// A kernel `k(a, b)` on the feature space.
///
/// The paper uses the Gaussian (RBF) kernel
/// `k(xᵢ, xⱼ) = exp(−‖xᵢ − xⱼ‖² / σ²)`; linear and polynomial kernels are
/// provided for baselines and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `k(a, b) = a · b`.
    Linear,
    /// `k(a, b) = exp(−‖a − b‖² / σ²)` with radius parameter `σ²`.
    Gaussian {
        /// The radius parameter `σ²` (must be positive).
        sigma2: f64,
    },
    /// `k(a, b) = (a · b + coef0)^degree`.
    Polynomial {
        /// Polynomial degree.
        degree: u32,
        /// Additive constant.
        coef0: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the vectors differ in length, or if a Gaussian
    /// kernel was constructed with `sigma2 <= 0`.
    #[must_use]
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "kernel arguments differ in dimension");
        match *self {
            Kernel::Linear => dot(a, b),
            Kernel::Gaussian { sigma2 } => {
                assert!(sigma2 > 0.0, "Gaussian kernel requires sigma2 > 0");
                let mut d2 = 0.0;
                for (x, y) in a.iter().zip(b) {
                    let d = x - y;
                    d2 += d * d;
                }
                (-d2 / sigma2).exp()
            }
            Kernel::Polynomial { degree, coef0 } => (dot(a, b) + coef0).powi(degree as i32),
        }
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }

    #[test]
    fn gaussian_is_one_at_zero_distance_and_decays() {
        let k = Kernel::Gaussian { sigma2: 2.0 };
        assert_eq!(k.eval(&[1.0, 1.0], &[1.0, 1.0]), 1.0);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[1.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
        // exp(-1/2) at distance² = 1.
        assert!((far - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn gaussian_is_symmetric() {
        let k = Kernel::Gaussian { sigma2: 0.7 };
        let a = [0.2, 0.9, 0.4];
        let b = [0.8, 0.1, 0.5];
        assert_eq!(k.eval(&a, &b), k.eval(&b, &a));
    }

    #[test]
    fn polynomial_kernel() {
        let k = Kernel::Polynomial { degree: 2, coef0: 1.0 };
        // (1*1 + 1)² = 4
        assert_eq!(k.eval(&[1.0], &[1.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "sigma2 > 0")]
    fn gaussian_rejects_nonpositive_radius() {
        let _ = Kernel::Gaussian { sigma2: 0.0 }.eval(&[0.0], &[0.0]);
    }
}
