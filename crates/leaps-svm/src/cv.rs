//! Stratified k-fold cross-validation and (λ, σ²) grid search
//! ("we use 10-fold cross validation to tune the model parameter λ and σ²
//! on the training set").

use crate::data::{Sample, TrainSet};
use crate::kernel::Kernel;
use crate::smo::{train, SmoParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Model-selection criterion for the grid search.
///
/// LEAPS's training negatives are *noisy*: the mixed log contains benign
/// events labeled −1. Selecting hyper-parameters by raw validation
/// accuracy therefore degenerates — the best way to "fit" the noise is to
/// predict everything negative. [`Scoring::WeightedBalanced`] scores each
/// class separately, weighting every validation sample by its confidence
/// `cᵢ`, so mislabeled low-confidence points cannot dominate model
/// selection. With uniform weights it reduces to balanced accuracy, which
/// is the standard guard against one-class degeneration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scoring {
    /// Plain validation accuracy.
    Accuracy,
    /// Mean of per-class, confidence-weighted accuracies (default).
    #[default]
    WeightedBalanced,
}

/// Grid-search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearch {
    /// Candidate λ values (Eq. 2 trade-off parameter).
    pub lambdas: Vec<f64>,
    /// Candidate σ² values for the Gaussian kernel.
    pub sigma2s: Vec<f64>,
    /// Number of folds (the paper uses 10).
    pub folds: usize,
    /// Shuffle seed for fold assignment.
    pub seed: u64,
    /// Selection criterion.
    pub scoring: Scoring,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch {
            lambdas: vec![1.0, 10.0, 100.0],
            sigma2s: vec![2.0, 8.0, 32.0],
            folds: 10,
            seed: 0,
            scoring: Scoring::default(),
        }
    }
}

/// Result of a grid search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSearchResult {
    /// Best λ.
    pub lambda: f64,
    /// Best σ².
    pub sigma2: f64,
    /// Cross-validated accuracy of the best configuration.
    pub accuracy: f64,
}

/// Resumable grid-search state: the scores of the completed cells, a
/// prefix of the (λ, σ², fold) lexicographic cell order. `None` entries
/// are legitimate results (empty or degenerate folds), not gaps. Cells
/// are evaluated and checkpointed one (λ, σ²) chunk (all folds) at a
/// time, so a valid state always holds a whole number of chunks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CvState {
    /// Per-cell scores in cell order; length = completed cells.
    pub scores: Vec<Option<f64>>,
}

impl GridSearch {
    /// Runs the grid search: for each (λ, σ²), stratified k-fold CV
    /// score; returns the best configuration (ties → first in grid
    /// order, so results are deterministic).
    ///
    /// Every (λ, σ², fold) cell is an independent SVM training run, so
    /// the cells fan out across threads (see `leaps_par`); fold scores
    /// are averaged in fold order and the best cell is selected in grid
    /// order, making the result — including tie-breaking — bit-identical
    /// to the serial loop at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or `folds < 2`.
    #[must_use]
    pub fn run(&self, set: &TrainSet) -> GridSearchResult {
        self.run_resumable(set, None, &mut |_| true).expect("non-checkpointing CV cannot pause")
    }

    /// [`GridSearch::run`] with chunk-level checkpoint hooks.
    ///
    /// Cells are evaluated one (λ, σ²) chunk at a time (all folds of a
    /// chunk fan out across threads); after each chunk `checkpoint` is
    /// called with the accumulated [`CvState`]. Returning `false` pauses
    /// the search (`None` is returned). Passing the captured state back
    /// as `resume` skips every completed cell — each cell is a pure
    /// function of `set` and the fold assignment (itself derived from
    /// `self.seed`), so the resumed search selects the exact same
    /// configuration as an uninterrupted one, tie-breaking included. A
    /// resume state from a mid-chunk crash is truncated down to the last
    /// whole chunk.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty, `folds < 2`, or `resume` holds more
    /// cells than the grid has.
    pub fn run_resumable(
        &self,
        set: &TrainSet,
        resume: Option<CvState>,
        checkpoint: &mut dyn FnMut(&CvState) -> bool,
    ) -> Option<GridSearchResult> {
        assert!(!self.lambdas.is_empty() && !self.sigma2s.is_empty(), "empty grid");
        assert!(self.folds >= 2, "need at least 2 folds");
        let fold_of = stratified_folds(set, self.folds, self.seed);
        let n_folds = fold_of.iter().copied().max().unwrap_or(0) + 1;

        // Flat cell list in (λ, σ², fold) lexicographic order.
        let mut cells = Vec::with_capacity(self.lambdas.len() * self.sigma2s.len() * n_folds);
        for li in 0..self.lambdas.len() {
            for si in 0..self.sigma2s.len() {
                for fold in 0..n_folds {
                    cells.push((li, si, fold));
                }
            }
        }
        let scoring = self.scoring;
        let mut fold_scores = match resume {
            Some(mut state) => {
                assert!(
                    state.scores.len() <= cells.len(),
                    "resume state has {} cells, grid only {}",
                    state.scores.len(),
                    cells.len()
                );
                // Realign to the last whole (λ, σ²) chunk.
                state.scores.truncate(state.scores.len() - state.scores.len() % n_folds);
                state.scores
            }
            None => Vec::new(),
        };
        while fold_scores.len() < cells.len() {
            let chunk = &cells[fold_scores.len()..fold_scores.len() + n_folds];
            fold_scores.extend(leaps_par::par_map(chunk, |&(li, si, fold)| {
                fold_score(set, &fold_of, self.lambdas[li], self.sigma2s[si], fold, scoring)
            }));
            leaps_obs::counter!("train.cv.cells").add(chunk.len() as u64);
            // Chunk boundary: offer the completed prefix as a checkpoint.
            // (The final chunk is offered too, so a deadline hit after the
            // last cell still leaves a complete state on disk.)
            if !checkpoint(&CvState { scores: fold_scores.clone() }) {
                return None;
            }
        }

        // Deterministic reduce: average per cell in fold order, select in
        // grid order with strict `>` so ties keep the first grid entry —
        // exactly the serial algorithm.
        let mut best =
            GridSearchResult { lambda: self.lambdas[0], sigma2: self.sigma2s[0], accuracy: -1.0 };
        for (li, &lambda) in self.lambdas.iter().enumerate() {
            for (si, &sigma2) in self.sigma2s.iter().enumerate() {
                let base = (li * self.sigma2s.len() + si) * n_folds;
                let scores: Vec<f64> =
                    fold_scores[base..base + n_folds].iter().copied().flatten().collect();
                let acc = if scores.is_empty() {
                    0.0
                } else {
                    scores.iter().sum::<f64>() / scores.len() as f64
                };
                if acc > best.accuracy {
                    best = GridSearchResult { lambda, sigma2, accuracy: acc };
                }
            }
        }
        Some(best)
    }
}

/// Assigns each sample to a fold, stratified by label so every fold sees
/// both classes.
fn stratified_folds(set: &TrainSet, folds: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assignment = vec![0usize; set.len()];
    for label in [1.0, -1.0] {
        let mut idx: Vec<usize> = set
            .samples()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.y == label)
            .map(|(i, _)| i)
            .collect();
        idx.shuffle(&mut rng);
        for (pos, &i) in idx.iter().enumerate() {
            assignment[i] = pos % folds;
        }
    }
    assignment
}

/// Validation score of one (λ, σ², fold) cell, or `None` if the fold is
/// empty or its training split degenerates to one class.
fn fold_score(
    set: &TrainSet,
    fold_of: &[usize],
    lambda: f64,
    sigma2: f64,
    fold: usize,
    scoring: Scoring,
) -> Option<f64> {
    let mut train_samples: Vec<Sample> = Vec::new();
    let mut val: Vec<&Sample> = Vec::new();
    for (sample, &f) in set.samples().iter().zip(fold_of) {
        if f == fold {
            val.push(sample);
        } else {
            train_samples.push(sample.clone());
        }
    }
    if val.is_empty() {
        return None;
    }
    let train_set = TrainSet::new(train_samples).ok()?;
    let model =
        train(&train_set, Kernel::Gaussian { sigma2 }, &SmoParams { lambda, ..Default::default() });
    Some(score_fold(&model, &val, scoring))
}

fn score_fold(model: &crate::model::SvmModel, val: &[&Sample], scoring: Scoring) -> f64 {
    match scoring {
        Scoring::Accuracy => {
            let correct = val.iter().filter(|s| model.predict(&s.x) == s.y).count();
            correct as f64 / val.len() as f64
        }
        Scoring::WeightedBalanced => {
            let mut class_scores = Vec::new();
            for label in [1.0, -1.0] {
                let mut weight_total = 0.0;
                let mut weight_correct = 0.0;
                for s in val.iter().filter(|s| s.y == label) {
                    weight_total += s.c;
                    if model.predict(&s.x) == s.y {
                        weight_correct += s.c;
                    }
                }
                if weight_total > 0.0 {
                    class_scores.push(weight_correct / weight_total);
                }
            }
            if class_scores.is_empty() {
                0.0
            } else {
                class_scores.iter().sum::<f64>() / class_scores.len() as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_set(n_per_class: usize) -> TrainSet {
        // Two well-separated 2-D blobs on a deterministic lattice.
        let mut samples = Vec::new();
        for i in 0..n_per_class {
            let dx = (i % 5) as f64 * 0.02;
            let dy = (i / 5) as f64 * 0.02;
            samples.push(Sample::new(vec![0.1 + dx, 0.1 + dy], 1.0, 1.0));
            samples.push(Sample::new(vec![0.8 + dx, 0.8 + dy], -1.0, 1.0));
        }
        TrainSet::new(samples).unwrap()
    }

    #[test]
    fn grid_search_finds_high_accuracy_on_separable_data() {
        let set = blob_set(25);
        let gs = GridSearch { folds: 5, ..Default::default() };
        let result = gs.run(&set);
        assert!(result.accuracy > 0.95, "{result:?}");
        assert!(gs.lambdas.contains(&result.lambda));
        assert!(gs.sigma2s.contains(&result.sigma2));
    }

    #[test]
    fn grid_search_is_deterministic() {
        let set = blob_set(20);
        let gs = GridSearch { folds: 4, ..Default::default() };
        assert_eq!(gs.run(&set), gs.run(&set));
    }

    #[test]
    fn stratified_folds_cover_both_classes() {
        let set = blob_set(20);
        let folds = stratified_folds(&set, 5, 1);
        for fold in 0..5 {
            let labels: Vec<f64> = set
                .samples()
                .iter()
                .zip(&folds)
                .filter(|(_, &f)| f == fold)
                .map(|(s, _)| s.y)
                .collect();
            assert!(labels.contains(&1.0), "fold {fold} lacks positives");
            assert!(labels.contains(&-1.0), "fold {fold} lacks negatives");
        }
    }

    #[test]
    fn pause_and_resume_matches_uninterrupted_run() {
        let set = blob_set(12);
        let gs = GridSearch {
            lambdas: vec![1.0, 10.0],
            sigma2s: vec![2.0, 8.0],
            folds: 3,
            ..Default::default()
        };
        let clean = gs.run(&set);
        let chunks = gs.lambdas.len() * gs.sigma2s.len();
        for pause_at in 1..chunks {
            let mut captured = None;
            let mut n = 0usize;
            let paused = gs.run_resumable(&set, None, &mut |state| {
                n += 1;
                captured = Some(state.clone());
                n < pause_at
            });
            assert!(paused.is_none(), "should have paused at chunk {pause_at}");
            let resumed =
                gs.run_resumable(&set, captured, &mut |_| true).expect("resumed run must complete");
            assert_eq!(resumed, clean, "resume after chunk {pause_at} diverged");
        }
    }

    #[test]
    fn resume_truncates_partial_chunk_to_boundary() {
        let set = blob_set(10);
        let gs = GridSearch {
            lambdas: vec![1.0, 10.0],
            sigma2s: vec![2.0],
            folds: 3,
            ..Default::default()
        };
        let clean = gs.run(&set);
        // Capture a full first chunk, then corrupt it with one extra cell
        // (simulating a mid-chunk crash artifact).
        let mut state = None;
        let _ = gs.run_resumable(&set, None, &mut |s| {
            state = Some(s.clone());
            false
        });
        let mut state = state.unwrap();
        state.scores.push(Some(0.0));
        let resumed = gs.run_resumable(&set, Some(state), &mut |_| true).unwrap();
        assert_eq!(resumed, clean);
    }

    #[test]
    #[should_panic(expected = "resume state has")]
    fn oversized_resume_state_rejected() {
        let set = blob_set(10);
        let gs =
            GridSearch { lambdas: vec![1.0], sigma2s: vec![2.0], folds: 2, ..Default::default() };
        let state = CvState { scores: vec![Some(0.5); 99] };
        let _ = gs.run_resumable(&set, Some(state), &mut |_| true);
    }

    #[test]
    #[should_panic(expected = "at least 2 folds")]
    fn rejects_single_fold() {
        let set = blob_set(5);
        let _ = GridSearch { folds: 1, ..Default::default() }.run(&set);
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn rejects_empty_grid() {
        let set = blob_set(5);
        let _ = GridSearch { lambdas: vec![], ..Default::default() }.run(&set);
    }
}
