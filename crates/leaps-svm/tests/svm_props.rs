//! Property tests for the SVM stack: kernels, the SMO solver and the
//! scaler must uphold their mathematical contracts on arbitrary inputs.

use leaps_svm::data::{Sample, TrainSet};
use leaps_svm::kernel::Kernel;
use leaps_svm::scale::MinMaxScaler;
use leaps_svm::smo::{train, SmoParams};
use proptest::prelude::*;

fn vec_f64(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Kernels are symmetric and Gaussian kernels are bounded in (0, 1].
    #[test]
    fn kernel_symmetry_and_bounds(
        a in vec_f64(4),
        b in vec_f64(4),
        sigma2 in 0.1f64..20.0,
    ) {
        for kernel in [
            Kernel::Linear,
            Kernel::Gaussian { sigma2 },
            Kernel::Polynomial { degree: 2, coef0: 1.0 },
        ] {
            let kab = kernel.eval(&a, &b);
            let kba = kernel.eval(&b, &a);
            prop_assert!((kab - kba).abs() < 1e-9, "{kernel:?}");
        }
        let g = Kernel::Gaussian { sigma2 };
        let kab = g.eval(&a, &b);
        // exp(-d²/σ²) underflows to exactly 0.0 for huge distances, so the
        // bound is [0, 1], open only in theory.
        prop_assert!((0.0..=1.0).contains(&kab));
        prop_assert!((g.eval(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// On well-separated data the solver classifies every training point
    /// correctly, regardless of λ.
    #[test]
    fn separable_data_is_fit_exactly(
        offsets in prop::collection::vec((0.0f64..0.2, 0.0f64..0.2), 3..12),
        lambda in 1.0f64..100.0,
    ) {
        let mut samples = Vec::new();
        for &(dx, dy) in &offsets {
            samples.push(Sample::new(vec![dx, dy], 1.0, 1.0));
            samples.push(Sample::new(vec![2.0 + dx, 2.0 + dy], -1.0, 1.0));
        }
        let set = TrainSet::new(samples).expect("valid");
        let model = train(
            &set,
            Kernel::Gaussian { sigma2: 2.0 },
            &SmoParams { lambda, ..Default::default() },
        );
        for s in set.samples() {
            prop_assert_eq!(model.predict(&s.x), s.y);
        }
    }

    /// The dual solution respects 0 ≤ αᵢ ≤ λ·cᵢ and Σ αᵢ yᵢ = 0 for any
    /// weights and any (mild) overlap.
    #[test]
    fn dual_constraints_hold_under_overlap(
        points in prop::collection::vec((0.0f64..1.0, 0.0f64..=1.0), 6..20),
        lambda in 0.5f64..50.0,
    ) {
        let n = points.len();
        let samples: Vec<Sample> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, c))| {
                let y = if i % 2 == 0 { 1.0 } else { -1.0 };
                Sample::new(vec![x, x * 0.5], y, c.max(0.01))
            })
            .collect();
        let set = TrainSet::new(samples).expect("both classes by parity");
        let model = train(
            &set,
            Kernel::Gaussian { sigma2: 1.0 },
            &SmoParams { lambda, ..Default::default() },
        );
        let mut balance = 0.0;
        for (ay, _) in model.dual_coefficients() {
            balance += ay;
        }
        prop_assert!(balance.abs() < 1e-6, "balance {balance} over {n} samples");
        prop_assert!(model.support_vector_count() <= n);
    }

    /// Scaler output is always in [0, 1] and members of the fitted data
    /// hit the bounds.
    #[test]
    fn scaler_bounds(rows in prop::collection::vec(vec_f64(3), 2..20)) {
        let (scaler, scaled) = MinMaxScaler::fit_transform(&rows);
        for row in &scaled {
            for &v in row {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        // Any new vector also lands in bounds (clamped).
        let probe = scaler.transform(&[100.0, -100.0, 0.0]);
        for &v in &probe {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    /// Zero-weight samples never appear as support vectors.
    #[test]
    fn zero_weight_never_supports(
        xs in prop::collection::vec(0.0f64..1.0, 6..16),
        lambda in 1.0f64..50.0,
    ) {
        let n = xs.len();
        let samples: Vec<Sample> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let y = if i < n / 2 { 1.0 } else { -1.0 };
                // Every odd sample gets weight 0.
                let c = if i % 2 == 1 { 0.0 } else { 1.0 };
                Sample::new(vec![x], y, c)
            })
            .collect();
        let Ok(set) = TrainSet::new(samples) else {
            return Ok(()); // single-class split; nothing to test
        };
        let model = train(
            &set,
            Kernel::Gaussian { sigma2: 1.0 },
            &SmoParams { lambda, ..Default::default() },
        );
        for (ay, sv) in model.dual_coefficients() {
            // Match the support vector back to samples; at least one
            // matching sample must have positive weight.
            let any_weighted = set
                .samples()
                .iter()
                .any(|s| &s.x == sv && s.c > 0.0);
            prop_assert!(any_weighted, "alpha_y {ay} on zero-weight point");
        }
    }
}
