//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API it actually consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded
//! via SplitMix64 — the same well-known construction as
//! `leaps_etw::rng::SimRng` — so streams are deterministic and stable
//! across platforms and releases. It makes no attempt to reproduce the
//! upstream `StdRng` (ChaCha12) byte stream; nothing in this workspace
//! depends on that, only on internal reproducibility from a `u64` seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index requires a positive bound");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// SplitMix64 step, used to expand the seed into the xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[0]
                .wrapping_add(self.state[3])
                .rotate_left(23)
                .wrapping_add(self.state[0]);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice utilities over an RNG.

    use super::Rng;

    /// Extension trait mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
