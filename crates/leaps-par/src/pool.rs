//! A persistent, sharded, **supervised** worker pool for long-running
//! services.
//!
//! The scoped `par_*` helpers in the crate root fan a *batch* out and
//! join before returning — the right shape for training loops, but not
//! for a daemon that must keep accepting work for its whole lifetime.
//! [`Pool`] keeps `n` worker threads alive with one FIFO queue each and
//! routes every job by a caller-chosen **shard key**:
//!
//! * jobs with the same shard key land on the same worker queue, so
//!   they execute in submission order (FIFO per shard) — the property a
//!   detection service needs to keep every session's event order, and
//!   therefore its verdict sequence, deterministic;
//! * jobs with different shard keys run concurrently on different
//!   workers;
//! * submission never blocks: queues are unbounded here, and callers
//!   that need backpressure bound their own per-session queues *before*
//!   submitting (see `leaps-serve`).
//!
//! # Supervision
//!
//! Every job runs under [`std::panic::catch_unwind`]. A panicking job is
//! consumed (its panic payload dropped after being counted), and the
//! worker that ran it **respawns itself**: the dying thread hands the
//! shard's queue receiver to a freshly spawned replacement and exits, so
//! the replacement starts with a clean stack and clean thread-locals.
//! The queue itself lives outside any worker thread, so the jobs behind
//! the panicking one are preserved and still run in submission order —
//! FIFO per shard survives the crash. Per-shard `panics`/`respawns`
//! counters ([`Pool::stats`], [`Pool::shard_panics`]) let a service
//! surface supervision activity through a health endpoint. If the OS
//! refuses to spawn a replacement, the surviving thread keeps draining
//! its shard itself (a panic is then counted without a respawn) — a
//! shard is never silently abandoned.
//!
//! Workers are marked as par workers, so a job that reaches one of the
//! scoped `par_*` helpers runs it serially instead of spawning a nested
//! pool.

use crate::lock_unpoisoned;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use leaps_obs::{counter, gauge, Gauge};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The pool could not be constructed (bad size or the OS refused to
/// spawn a worker thread).
#[derive(Debug)]
pub struct PoolError {
    message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PoolError {}

/// Supervision counters of a [`Pool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads (one per shard queue). Always live: a worker lost
    /// to a panic is respawned before the loss is observable.
    pub workers: usize,
    /// Jobs that panicked (caught and counted, never propagated).
    pub panics: u64,
    /// Workers respawned after a panic. Tracks `panics` except when a
    /// replacement spawn failed and the surviving thread kept draining.
    pub respawns: u64,
}

/// Per-shard supervision state, shared by the pool handle and every
/// worker generation of that shard. The queue receiver living here —
/// not in any worker thread — is what preserves per-shard FIFO order
/// across a respawn.
struct Shard {
    index: usize,
    /// The shard's job queue. Only the shard's single live worker ever
    /// holds this lock, so it is uncontended; it exists to move the
    /// receiver between worker generations.
    queue: Mutex<Receiver<Job>>,
    panics: AtomicU64,
    respawns: AtomicU64,
    /// Join handle of the newest worker generation. A dying worker
    /// stores its replacement's handle here before exiting, so shutdown
    /// can chase generations until one exits normally.
    worker: Mutex<Option<JoinHandle<()>>>,
    /// Global `pool.queue.<index>` depth gauge; shared when several
    /// pools exist, but increments and decrements stay balanced.
    depth: Gauge,
}

/// The supervised worker loop: one generation of one shard's worker.
///
/// Runs jobs under `catch_unwind`. On a caught panic the generation
/// retires: it spawns a successor on the same shard state and returns.
fn worker_loop(shard: &Arc<Shard>) {
    crate::mark_current_thread_as_worker();
    loop {
        // Holding the queue lock while blocked in `recv` is fine: the
        // only other contender is a successor generation, which by
        // construction does not exist while this one lives.
        let job = match lock_unpoisoned(&shard.queue).recv() {
            Ok(job) => job,
            Err(_) => return, // every sender dropped: graceful drain end
        };
        shard.depth.add(-1);
        counter!("pool.jobs").inc();
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shard.panics.fetch_add(1, Ordering::SeqCst);
            counter!("pool.panics").inc();
            // Count the respawn before the successor exists, so health
            // probes that observe the successor's work also observe it.
            shard.respawns.fetch_add(1, Ordering::SeqCst);
            if respawn(shard) {
                counter!("pool.respawns").inc();
                return; // successor owns the shard from here
            }
            // Spawn refused: keep draining on this thread rather than
            // abandoning the shard's queued jobs.
            shard.respawns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Spawns the next worker generation for `shard`, recording its handle
/// for shutdown. Returns false if the OS refused the thread.
fn respawn(shard: &Arc<Shard>) -> bool {
    let successor = Arc::clone(shard);
    let spawned = std::thread::Builder::new()
        .name(format!("leaps-pool-{}", shard.index))
        .spawn(move || worker_loop(&successor));
    match spawned {
        Ok(handle) => {
            *lock_unpoisoned(&shard.worker) = Some(handle);
            true
        }
        Err(_) => false,
    }
}

/// A fixed-size pool of long-lived, supervised worker threads with
/// per-worker FIFO queues and shard-keyed routing.
///
/// Dropping the pool (or calling [`Pool::shutdown`]) closes every queue,
/// lets each worker finish the jobs already submitted, and joins the
/// threads — a graceful drain, never an abort. Panicking jobs are caught
/// and counted (see the module docs); they never take the pool down and
/// never reorder the jobs queued behind them.
pub struct Pool {
    senders: Vec<Sender<Job>>,
    shards: Vec<Arc<Shard>>,
    /// How much this pool added to the global `pool.workers` gauge
    /// (zero for partially-built pools torn down by `try_new`).
    gauged_workers: i64,
}

impl Pool {
    /// Spawns a pool of exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or if the OS refuses to spawn a thread;
    /// services that must survive spawn failure use [`Pool::try_new`].
    #[must_use]
    pub fn new(threads: usize) -> Pool {
        Pool::try_new(threads).expect("spawning pool worker threads")
    }

    /// Fallible constructor: spawns a pool of exactly `threads` workers,
    /// reporting rather than panicking when the pool cannot be built.
    /// Workers spawned before a failure are drained and joined.
    ///
    /// # Errors
    ///
    /// [`PoolError`] if `threads == 0` or the OS refuses a thread.
    pub fn try_new(threads: usize) -> Result<Pool, PoolError> {
        if threads == 0 {
            return Err(PoolError { message: "pool needs at least one worker".to_owned() });
        }
        let mut senders = Vec::with_capacity(threads);
        let mut shards = Vec::with_capacity(threads);
        for index in 0..threads {
            let (tx, rx) = channel::<Job>();
            let shard = Arc::new(Shard {
                index,
                queue: Mutex::new(rx),
                panics: AtomicU64::new(0),
                respawns: AtomicU64::new(0),
                worker: Mutex::new(None),
                depth: leaps_obs::registry().gauge(&format!("pool.queue.{index}")),
            });
            let worker_shard = Arc::clone(&shard);
            let spawned = std::thread::Builder::new()
                .name(format!("leaps-pool-{index}"))
                .spawn(move || worker_loop(&worker_shard));
            match spawned {
                Ok(handle) => {
                    *lock_unpoisoned(&shard.worker) = Some(handle);
                    senders.push(tx);
                    shards.push(shard);
                }
                Err(e) => {
                    // `Pool` drop semantics clean up the partial pool.
                    drop(tx);
                    drop(Pool { senders, shards, gauged_workers: 0 });
                    return Err(PoolError {
                        message: format!("spawning pool worker {index}: {e}"),
                    });
                }
            }
        }
        let gauged_workers = i64::try_from(threads).unwrap_or(i64::MAX);
        gauge!("pool.workers").add(gauged_workers);
        Ok(Pool { senders, shards, gauged_workers })
    }

    /// Spawns a pool sized by the crate's thread policy
    /// ([`crate::thread_count`]: runtime override, `LEAPS_THREADS`, or
    /// available parallelism).
    #[must_use]
    pub fn with_default_threads() -> Pool {
        Pool::new(crate::thread_count())
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Supervision counters, aggregated across shards.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.shards.len(),
            panics: self.shards.iter().map(|s| s.panics.load(Ordering::SeqCst)).sum(),
            respawns: self.shards.iter().map(|s| s.respawns.load(Ordering::SeqCst)).sum(),
        }
    }

    /// Per-shard panic counts (index = `shard % threads`).
    #[must_use]
    pub fn shard_panics(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.panics.load(Ordering::SeqCst)).collect()
    }

    /// Submits `job` to the worker owning `shard % threads`.
    ///
    /// Jobs submitted with the same shard key run in submission order;
    /// the call itself never blocks.
    ///
    /// # Panics
    ///
    /// Panics if the shard queue is disconnected — impossible while
    /// `self` exists, because the pool itself keeps every receiver
    /// alive (supervision moves receivers between worker generations,
    /// it never drops them). A failure here is a bug, not load.
    pub fn submit<F>(&self, shard: usize, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let idx = shard % self.senders.len();
        self.shards[idx].depth.add(1);
        self.senders[idx]
            .send(Box::new(job))
            .expect("pool shard queue disconnected while the pool exists");
    }

    /// Closes the queues, drains every job already submitted and joins
    /// the workers.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        gauge!("pool.workers").add(-self.gauged_workers);
        self.senders.clear();
        for shard in &self.shards {
            // Chase worker generations: joining one may reveal a
            // successor it spawned while we waited.
            loop {
                let handle = lock_unpoisoned(&shard.worker).take();
                match handle {
                    Some(handle) => {
                        let _ = handle.join();
                    }
                    None => break,
                }
            }
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn runs_every_job_and_drains_on_shutdown() {
        let pool = Pool::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let count = Arc::clone(&count);
            pool.submit(i, move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn same_shard_preserves_submission_order() {
        let pool = Pool::new(3);
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..200 {
            let seen = Arc::clone(&seen);
            pool.submit(7, move || {
                lock_unpoisoned(&seen).push(i);
            });
        }
        pool.shutdown();
        let seen = lock_unpoisoned(&seen);
        assert_eq!(*seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_shards_map_to_stable_workers() {
        let pool = Pool::new(2);
        let names: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
        for shard in [0usize, 1, 2, 3] {
            let names = Arc::clone(&names);
            pool.submit(shard, move || {
                let name = std::thread::current().name().unwrap_or("?").to_owned();
                lock_unpoisoned(&names).push((shard, name));
            });
        }
        pool.shutdown();
        let names = lock_unpoisoned(&names);
        let worker_of =
            |shard: usize| names.iter().find(|(s, _)| *s == shard).map(|(_, n)| n.clone()).unwrap();
        assert_eq!(worker_of(0), worker_of(2), "shards 0 and 2 share a worker of 2");
        assert_eq!(worker_of(1), worker_of(3));
        assert_ne!(worker_of(0), worker_of(1));
    }

    #[test]
    fn nested_par_calls_inside_pool_jobs_run_serially() {
        let pool = Pool::new(2);
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        pool.submit(0, move || {
            // Must not deadlock or spawn a nested scoped pool.
            let values = crate::par_map_indexed(16, |i| i * i);
            lock_unpoisoned(&out2).extend(values);
        });
        pool.shutdown();
        let out = lock_unpoisoned(&out);
        assert_eq!(*out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn poisoned_shared_lock_does_not_wedge_the_pool() {
        // A job panics *while holding* a shared mutex, poisoning it.
        // `lock_unpoisoned` must shrug that off: later jobs on the
        // same pool still take the lock and the pool keeps serving.
        let pool = Pool::new(2);
        let shared: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let poisoner = Arc::clone(&shared);
        pool.submit(0, move || {
            let _guard = lock_unpoisoned(&poisoner);
            panic!("injected panic under the lock (expected in this test)");
        });
        for i in 0..32 {
            let shared = Arc::clone(&shared);
            pool.submit(0, move || {
                lock_unpoisoned(&shared).push(i);
            });
        }
        pool.shutdown();
        assert!(shared.is_poisoned(), "the panicking holder must have poisoned the lock");
        assert_eq!(*lock_unpoisoned(&shared), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn try_new_rejects_zero_workers() {
        let err = Pool::try_new(0).unwrap_err();
        assert!(err.to_string().contains("at least one"), "{err}");
    }

    #[test]
    fn panicking_jobs_are_caught_counted_and_fifo_survives() {
        let pool = Pool::new(2);
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        // Interleave panicking jobs between ordered jobs on one shard.
        for i in 0..50 {
            let seen = Arc::clone(&seen);
            pool.submit(4, move || {
                lock_unpoisoned(&seen).push(i);
            });
            if i % 10 == 3 {
                pool.submit(4, || panic!("injected pool panic (expected in this test)"));
            }
        }
        // The other shard stays untouched by the panics.
        let other = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let other = Arc::clone(&other);
            pool.submit(5, move || {
                other.fetch_add(1, Ordering::Relaxed);
            });
        }
        let stats_before_drop;
        {
            // Wait for the panicked shard to drain by watching the
            // ordered jobs complete.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
            while lock_unpoisoned(&seen).len() < 50 {
                assert!(std::time::Instant::now() < deadline, "shard 4 never drained");
                std::thread::yield_now();
            }
            stats_before_drop = pool.stats();
        }
        pool.shutdown();
        let seen = lock_unpoisoned(&seen);
        assert_eq!(*seen, (0..50).collect::<Vec<_>>(), "FIFO must survive respawns");
        assert_eq!(other.load(Ordering::Relaxed), 20);
        assert_eq!(stats_before_drop.panics, 5, "every injected panic is counted");
        assert_eq!(stats_before_drop.respawns, 5, "every panic respawned the worker");
        assert_eq!(stats_before_drop.workers, 2);
    }

    #[test]
    fn panic_as_final_job_still_drains_and_joins() {
        let pool = Pool::new(1);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let count = Arc::clone(&count);
            pool.submit(0, move || {
                count.fetch_add(1, Ordering::Relaxed);
                if i == 9 {
                    panic!("final job panics (expected in this test)");
                }
            });
        }
        // Shutdown must join the respawned generation, not hang.
        pool.shutdown();
        assert_eq!(count.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panics_and_respawns_flow_into_the_global_metrics_registry() {
        // The registry is process-global and other pool tests run in
        // parallel in this binary, so assert deltas, not exact values.
        let reg = leaps_obs::registry();
        let (jobs, panics, respawns) =
            (reg.counter("pool.jobs"), reg.counter("pool.panics"), reg.counter("pool.respawns"));
        let before = (jobs.value(), panics.value(), respawns.value());
        let pool = Pool::new(1);
        pool.submit(0, || panic!("metrics panic (expected in this test)"));
        pool.submit(0, || {});
        pool.shutdown();
        assert!(jobs.value() >= before.0 + 2, "both jobs counted, panicking or not");
        assert!(panics.value() > before.1, "the caught panic is counted");
        assert!(respawns.value() > before.2, "the respawned generation is counted");
    }

    #[test]
    fn shard_panics_are_reported_per_worker() {
        let pool = Pool::new(3);
        pool.submit(1, || panic!("shard 1 panic (expected in this test)"));
        pool.submit(1, || panic!("shard 1 panic again (expected in this test)"));
        pool.submit(2, || panic!("shard 2 panic (expected in this test)"));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while pool.stats().panics < 3 {
            assert!(std::time::Instant::now() < deadline, "panics never surfaced");
            std::thread::yield_now();
        }
        assert_eq!(pool.shard_panics(), vec![0, 2, 1]);
        pool.shutdown();
    }
}
