//! A persistent, sharded worker pool for long-running services.
//!
//! The scoped `par_*` helpers in the crate root fan a *batch* out and
//! join before returning — the right shape for training loops, but not
//! for a daemon that must keep accepting work for its whole lifetime.
//! [`Pool`] keeps `n` worker threads alive with one FIFO queue each and
//! routes every job by a caller-chosen **shard key**:
//!
//! * jobs with the same shard key land on the same worker queue, so
//!   they execute in submission order (FIFO per shard) — the property a
//!   detection service needs to keep every session's event order, and
//!   therefore its verdict sequence, deterministic;
//! * jobs with different shard keys run concurrently on different
//!   workers;
//! * submission never blocks: queues are unbounded here, and callers
//!   that need backpressure bound their own per-session queues *before*
//!   submitting (see `leaps-serve`).
//!
//! Workers are marked as par workers, so a job that reaches one of the
//! scoped `par_*` helpers runs it serially instead of spawning a nested
//! pool.

use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of long-lived worker threads with per-worker FIFO
/// queues and shard-keyed routing.
///
/// Dropping the pool (or calling [`Pool::shutdown`]) closes every queue,
/// lets each worker finish the jobs already submitted, and joins the
/// threads — a graceful drain, never an abort.
pub struct Pool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool of exactly `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or if the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(threads: usize) -> Pool {
        assert!(threads >= 1, "pool needs at least one worker");
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for i in 0..threads {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("leaps-pool-{i}"))
                .spawn(move || {
                    crate::mark_current_thread_as_worker();
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawning pool worker thread");
            handles.push(handle);
        }
        Pool { senders, handles }
    }

    /// Spawns a pool sized by the crate's thread policy
    /// ([`crate::thread_count`]: runtime override, `LEAPS_THREADS`, or
    /// available parallelism).
    #[must_use]
    pub fn with_default_threads() -> Pool {
        Pool::new(crate::thread_count())
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.senders.len()
    }

    /// Submits `job` to the worker owning `shard % threads`.
    ///
    /// Jobs submitted with the same shard key run in submission order;
    /// the call itself never blocks.
    pub fn submit<F>(&self, shard: usize, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let idx = shard % self.senders.len();
        // The receiver lives until shutdown/drop, so this cannot fail
        // while `self` exists.
        let _ = self.senders[idx].send(Box::new(job));
    }

    /// Closes the queues, drains every job already submitted and joins
    /// the workers.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn runs_every_job_and_drains_on_shutdown() {
        let pool = Pool::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..100 {
            let count = Arc::clone(&count);
            pool.submit(i, move || {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn same_shard_preserves_submission_order() {
        let pool = Pool::new(3);
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        for i in 0..200 {
            let seen = Arc::clone(&seen);
            pool.submit(7, move || {
                seen.lock().unwrap().push(i);
            });
        }
        pool.shutdown();
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_shards_map_to_stable_workers() {
        let pool = Pool::new(2);
        let names: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
        for shard in [0usize, 1, 2, 3] {
            let names = Arc::clone(&names);
            pool.submit(shard, move || {
                let name = std::thread::current().name().unwrap_or("?").to_owned();
                names.lock().unwrap().push((shard, name));
            });
        }
        pool.shutdown();
        let names = names.lock().unwrap();
        let worker_of =
            |shard: usize| names.iter().find(|(s, _)| *s == shard).map(|(_, n)| n.clone()).unwrap();
        assert_eq!(worker_of(0), worker_of(2), "shards 0 and 2 share a worker of 2");
        assert_eq!(worker_of(1), worker_of(3));
        assert_ne!(worker_of(0), worker_of(1));
    }

    #[test]
    fn nested_par_calls_inside_pool_jobs_run_serially() {
        let pool = Pool::new(2);
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = Arc::clone(&out);
        pool.submit(0, move || {
            // Must not deadlock or spawn a nested scoped pool.
            let values = crate::par_map_indexed(16, |i| i * i);
            out2.lock().unwrap().extend(values);
        });
        pool.shutdown();
        let out = out.lock().unwrap();
        assert_eq!(*out, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }
}
