//! Scoped-thread parallelism for the LEAPS training hot loops.
//!
//! The three dominant costs of the training path — the dense Gaussian
//! kernel matrix, the (λ, σ²) × fold cross-validation grid and the
//! O(n²) pairwise Jaccard distance matrix — are embarrassingly
//! parallel: every unit of work is independent and the reduction is a
//! plain index-ordered concatenation. This crate provides that fan-out
//! with three hard guarantees:
//!
//! 1. **Determinism.** Results are assembled strictly by work-item
//!    index, never by completion order, so every `par_*` call returns
//!    exactly what the serial loop would have returned — bit for bit —
//!    regardless of thread count or scheduling.
//! 2. **No dependencies.** Built on [`std::thread::scope`]; workers
//!    borrow the caller's data directly, no channels or arcs.
//! 3. **No nested oversubscription.** A worker thread that itself calls
//!    into a `par_*` helper runs the inner call serially (tracked by a
//!    thread-local), so parallel cross-validation cells don't each
//!    spawn their own kernel-matrix pool.
//!
//! The thread count comes from, in priority order: the runtime override
//! ([`set_thread_override`], used by the CLI's `--threads` flag), the
//! `LEAPS_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. A count of 1 short-circuits
//! to the plain serial loop with zero threading overhead.

pub mod pool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, shrugging off poisoning.
///
/// Poisoning marks that a holder panicked mid-critical-section; for
/// every lock in this workspace the protected state is kept
/// consistent at each await-free step, so the right response is to
/// keep serving, not to wedge every future holder behind a panic.
/// This is the *only* sanctioned way to take a `Mutex` here — the
/// `lock-unwrap` lint (see `leaps-lint`) rejects `.lock().unwrap()`
/// workspace-wide, precisely because a supervisor that unwraps a
/// poisoned lock turns one contained worker panic into a permanent
/// outage.
pub fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runtime thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True inside a `par_*` worker; forces nested calls serial.
    static IN_PAR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Overrides the worker-thread count for every subsequent `par_*` call
/// in this process (`None` restores env/hardware detection).
///
/// Because all reductions are index-ordered, changing the thread count
/// never changes any computed result — only wall-clock time.
///
/// # Panics
///
/// Panics if `Some(0)` is passed.
pub fn set_thread_override(threads: Option<usize>) {
    if let Some(n) = threads {
        assert!(n >= 1, "thread override must be at least 1");
        THREAD_OVERRIDE.store(n, Ordering::Relaxed);
    } else {
        THREAD_OVERRIDE.store(0, Ordering::Relaxed);
    }
}

/// The worker-thread count `par_*` calls will use right now:
/// the [`set_thread_override`] value if set, else `LEAPS_THREADS` if
/// set to a positive integer, else the machine's available parallelism.
#[must_use]
pub fn thread_count() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_thread_count().unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }),
        n => n,
    }
}

/// Marks the calling thread as a par worker: any scoped `par_*` call it
/// makes from now on runs serially instead of spawning a nested pool.
/// Used by [`pool::Pool`] workers.
pub(crate) fn mark_current_thread_as_worker() {
    IN_PAR_WORKER.with(|flag| flag.set(true));
}

fn env_thread_count() -> Option<usize> {
    std::env::var("LEAPS_THREADS").ok()?.trim().parse().ok().filter(|&n| n >= 1)
}

/// Maps `f` over `0..n`, returning results in index order.
///
/// Work items are distributed dynamically (an atomic cursor), so
/// heavily skewed per-item costs — e.g. triangular distance-matrix
/// rows — still balance across workers.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = thread_count().min(n);
    if threads <= 1 || IN_PAR_WORKER.with(Cell::get) {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_PAR_WORKER.with(|flag| flag.set(true));
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(value);
            }
        }
    });
    slots.into_iter().map(|slot| slot.expect("every index computed exactly once")).collect()
}

/// Maps `f` over every element of `items`, returning results in input
/// order. See [`par_map_indexed`] for the guarantees.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Splits `items` into at most `thread_count()` contiguous chunks of at
/// least `min_chunk` elements, maps `f` over each `(offset, chunk)` and
/// returns the per-chunk results in offset order.
///
/// Use this when per-element work is too small to amortize dynamic
/// scheduling and the caller wants to process runs of elements at once.
///
/// # Panics
///
/// Panics if `min_chunk == 0`; propagates panics from `f`.
pub fn par_chunks<T, U, F>(items: &[T], min_chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &[T]) -> U + Sync,
{
    assert!(min_chunk >= 1, "min_chunk must be at least 1");
    if items.is_empty() {
        return Vec::new();
    }
    let chunks = (items.len() / min_chunk).clamp(1, thread_count());
    let chunk_len = items.len().div_ceil(chunks);
    let bounds: Vec<usize> = (0..chunks).map(|c| c * chunk_len).collect();
    par_map(&bounds, |&start| {
        let end = (start + chunk_len).min(items.len());
        f(start, &items[start..end])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-global override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(par_map(&items, |x| x * x), serial);
    }

    #[test]
    fn par_map_indexed_handles_empty_and_single() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // Skewed work per item (triangular), like distance-matrix rows.
        let work = |i: usize| -> f64 { (i..1000).map(|j| (j as f64).sqrt()).sum() };
        let reference: Vec<f64> = (0..200).map(work).collect();
        assert_eq!(par_map_indexed(200, work), reference);
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let out = par_map_indexed(8, |i| {
            // Inner call must not spawn another pool.
            par_map_indexed(8, move |j| i * 8 + j)
        });
        for (i, row) in out.iter().enumerate() {
            assert_eq!(*row, (0..8).map(|j| i * 8 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_covers_every_element_once() {
        let items: Vec<u32> = (0..997).collect();
        let chunked = par_chunks(&items, 10, |offset, chunk| (offset, chunk.to_vec()));
        let mut flattened = Vec::new();
        let mut expected_offset = 0;
        for (offset, chunk) in chunked {
            assert_eq!(offset, expected_offset);
            expected_offset += chunk.len();
            flattened.extend(chunk);
        }
        assert_eq!(flattened, items);
    }

    #[test]
    fn par_chunks_empty_input() {
        let items: Vec<u32> = Vec::new();
        assert!(par_chunks(&items, 5, |_, c| c.len()).is_empty());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _guard = lock_unpoisoned(&OVERRIDE_LOCK);
        // Force the parallel path even on single-core CI machines.
        set_thread_override(Some(2));
        let result = std::panic::catch_unwind(|| {
            par_map_indexed(64, |i| {
                assert!(i != 32, "boom");
                i
            })
        });
        set_thread_override(None);
        match result {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(_) => panic!("expected worker panic"),
        }
    }

    #[test]
    fn override_and_env_precedence() {
        let _guard = lock_unpoisoned(&OVERRIDE_LOCK);
        set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_override(None);
        assert!(thread_count() >= 1);
    }
}
