//! Criterion benches for the individual pipeline stages: raw-log parsing,
//! stack partitioning, CFG inference (Algorithm 1), weight assessment
//! (Algorithm 2) and feature clustering/encoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use leaps::cfg::infer::infer_cfg;
use leaps::cfg::weight::{assess_weights, WeightConfig};
use leaps::cluster::features::{FeatureEncoder, PreprocessConfig};
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::trace::parser::parse_log;
use leaps::trace::partition::{partition_events, PartitionedEvent};
use std::hint::black_box;

fn gen_params() -> GenParams {
    GenParams { benign_events: 1500, mixed_events: 1500, malicious_events: 750, benign_ratio: 0.5 }
}

fn bench_stages(c: &mut Criterion) {
    let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
    let raw = scenario.generate(&gen_params(), 1);
    let parsed_benign = parse_log(&raw.benign).expect("parse");
    let parsed_mixed = parse_log(&raw.mixed).expect("parse");
    let benign = partition_events(&parsed_benign.events);
    let mixed = partition_events(&parsed_mixed.events);

    c.bench_function("parse_raw_log_1500_events", |b| {
        b.iter(|| parse_log(black_box(&raw.mixed)).expect("parse"))
    });

    c.bench_function("partition_1500_events", |b| {
        b.iter(|| partition_events(black_box(&parsed_mixed.events)))
    });

    c.bench_function("cfg_inference_1500_events", |b| b.iter(|| infer_cfg(black_box(&mixed))));

    let bcfg = infer_cfg(&benign);
    let mcfg = infer_cfg(&mixed);
    c.bench_function("weight_assessment", |b| {
        b.iter(|| assess_weights(black_box(&bcfg.cfg), black_box(&mcfg), WeightConfig::default()))
    });

    let refs: Vec<&PartitionedEvent> = benign.iter().chain(mixed.iter()).collect();
    c.bench_function("feature_encoder_fit", |b| {
        b.iter_batched(
            || refs.clone(),
            |refs| FeatureEncoder::fit(&refs, PreprocessConfig::default()),
            BatchSize::LargeInput,
        )
    });

    let encoder = FeatureEncoder::fit(&refs, PreprocessConfig::default());
    let mixed_refs: Vec<&PartitionedEvent> = mixed.iter().collect();
    c.bench_function("encode_sequence_1500_events", |b| {
        b.iter(|| encoder.encode_sequence(black_box(&mixed_refs)))
    });
}

criterion_group! {
    name = stages;
    config = Criterion::default().sample_size(10);
    targets = bench_stages
}
criterion_main!(stages);
