//! Criterion benches for the SMO solver: scaling with training-set size,
//! and weighted vs unweighted problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leaps::etw::rng::SimRng;
use leaps::svm::data::{Sample, TrainSet};
use leaps::svm::kernel::Kernel;
use leaps::svm::smo::{train, SmoParams};
use std::hint::black_box;

/// Two noisy 30-dimensional clusters, mimicking the pipeline's coalesced
/// feature vectors.
fn synthetic_set(n_per_class: usize, weighted: bool, seed: u64) -> TrainSet {
    let mut rng = SimRng::new(seed);
    let mut samples = Vec::with_capacity(2 * n_per_class);
    for _ in 0..n_per_class {
        let pos: Vec<f64> = (0..30).map(|_| 0.3 + 0.2 * rng.f64()).collect();
        samples.push(Sample::new(pos, 1.0, 1.0));
        let neg: Vec<f64> = (0..30).map(|_| 0.5 + 0.2 * rng.f64()).collect();
        let c = if weighted { 0.1 + 0.9 * rng.f64() } else { 1.0 };
        samples.push(Sample::new(neg, -1.0, c));
    }
    TrainSet::new(samples).expect("valid synthetic set")
}

fn bench_smo(c: &mut Criterion) {
    let mut group = c.benchmark_group("smo_train");
    group.sample_size(10);
    for &n in &[50usize, 150, 400] {
        let set = synthetic_set(n, false, 7);
        group.bench_with_input(BenchmarkId::new("unweighted", 2 * n), &set, |b, set| {
            b.iter(|| {
                train(black_box(set), Kernel::Gaussian { sigma2: 2.0 }, &SmoParams::default())
            })
        });
        let wset = synthetic_set(n, true, 7);
        group.bench_with_input(BenchmarkId::new("weighted", 2 * n), &wset, |b, set| {
            b.iter(|| {
                train(black_box(set), Kernel::Gaussian { sigma2: 2.0 }, &SmoParams::default())
            })
        });
    }
    group.finish();

    let set = synthetic_set(150, false, 7);
    let mut kernels = c.benchmark_group("smo_kernels");
    kernels.sample_size(10);
    for (name, kernel) in [
        ("linear", Kernel::Linear),
        ("gaussian", Kernel::Gaussian { sigma2: 2.0 }),
        ("poly2", Kernel::Polynomial { degree: 2, coef0: 1.0 }),
    ] {
        kernels.bench_function(name, |b| {
            b.iter(|| train(black_box(&set), kernel, &SmoParams::default()))
        });
    }
    kernels.finish();
}

criterion_group!(smo, bench_smo);
criterion_main!(smo);
