//! Criterion bench for the full training phase, per detection method —
//! the cost a deployment pays to (re)train an application-wise classifier.

use criterion::{criterion_group, criterion_main, Criterion};
use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::etw::scenario::{GenParams, Scenario};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let scenario = Scenario::by_name("putty_reverse_tcp").expect("known dataset");
    let params = GenParams {
        benign_events: 1200,
        mixed_events: 1200,
        malicious_events: 600,
        benign_ratio: 0.5,
    };
    let dataset = Dataset::materialize(scenario, &params, 1).expect("generation");
    let (train, _test) = dataset.split_benign(0.5, 1);
    // Keep the grid small so the bench measures one representative
    // training pass rather than the full CV sweep.
    let config = PipelineConfig::fast();

    let mut group = c.benchmark_group("train_classifier");
    group.sample_size(10);
    for method in Method::ALL {
        group.bench_function(method.label(), |b| {
            b.iter(|| {
                train_classifier(method, black_box(&train), black_box(&dataset.mixed), &config, 1)
            })
        });
    }
    group.finish();

    c.bench_function("dataset_materialize_1200_events", |b| {
        b.iter(|| Dataset::materialize(scenario, &params, 1).expect("generation"))
    });
}

criterion_group!(end_to_end, bench_training);
criterion_main!(end_to_end);
