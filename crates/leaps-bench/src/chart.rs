//! Terminal bar-chart rendering for the figure harnesses (the paper's
//! Figures 6 and 7 are grouped bar charts of the five measures).

/// Renders a horizontal grouped bar chart: one group per dataset, one bar
/// per series (method), values in `[0, 1]`.
///
/// ```
/// let chart = leaps_bench::chart::grouped_bars(
///     "ACC",
///     &[("vim".into(), vec![0.7, 0.8, 0.95])],
///     &["CGraph", "SVM", "WSVM"],
/// );
/// assert!(chart.contains("WSVM"));
/// assert!(chart.contains("0.950"));
/// ```
#[must_use]
pub fn grouped_bars(metric: &str, groups: &[(String, Vec<f64>)], series: &[&str]) -> String {
    const WIDTH: usize = 40;
    let mut out = String::new();
    out.push_str(&format!("{metric} (0 .. 1, bar width {WIDTH} cols)\n"));
    let name_width = series.iter().map(|s| s.len()).max().unwrap_or(0);
    for (label, values) in groups {
        out.push_str(&format!("{label}\n"));
        for (name, &value) in series.iter().zip(values) {
            let clamped = value.clamp(0.0, 1.0);
            let cells = clamped * WIDTH as f64;
            let full = cells.floor() as usize;
            // Unicode eighth-blocks for sub-cell resolution.
            let remainder = ((cells - full as f64) * 8.0).round() as usize;
            let partial = [' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉'][remainder.min(7)];
            let mut bar = "█".repeat(full);
            if full < WIDTH && remainder > 0 {
                bar.push(partial);
            }
            out.push_str(&format!("  {name:<name_width$} |{bar:<WIDTH$}| {clamped:.3}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_groups_and_series() {
        let chart = grouped_bars(
            "ACC",
            &[("a".into(), vec![0.5, 1.0]), ("b".into(), vec![0.0, 0.25])],
            &["SVM", "WSVM"],
        );
        assert!(chart.contains("a\n"));
        assert!(chart.contains("b\n"));
        assert_eq!(chart.matches("WSVM").count(), 2);
        assert!(chart.contains("1.000"));
        assert!(chart.contains("0.000"));
    }

    #[test]
    fn full_bar_is_exactly_width() {
        let chart = grouped_bars("X", &[("g".into(), vec![1.0])], &["m"]);
        let bar_line = chart.lines().find(|l| l.contains('█')).unwrap();
        assert_eq!(bar_line.matches('█').count(), 40);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let chart = grouped_bars("X", &[("g".into(), vec![1.7, -0.3])], &["a", "b"]);
        assert!(chart.contains("1.000"));
        assert!(chart.contains("0.000"));
    }
}
