//! Shared helpers for the LEAPS evaluation harness binaries and benches.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! * `table1` — Table I (21 datasets × five measures, WSVM);
//! * `fig6` / `fig7` — Figures 6/7 (CGraph vs SVM vs WSVM per dataset);
//! * `case_studies` — the three Section V-C case studies;
//! * `fig4_cfg` — benign vs mixed CFG DOT dumps (Figure 4);
//! * `fig2_clustering` — the clustering example of Figure 2;
//! * `fig5_boundary` — SVM vs WSVM boundary illustration (Figure 5);
//! * `ablations` — design-choice ablations (coalescing window, linkage,
//!   weight polarity, density interpolation).
//!
//! Environment overrides honoured by the binaries:
//! `LEAPS_RUNS` (averaging runs, default 10), `LEAPS_SEED` (master seed),
//! `LEAPS_EVENTS` (events per log, default 6000 benign/mixed).

pub mod chart;

use leaps::core::experiment::Experiment;
use leaps::etw::scenario::GenParams;

/// Builds the experiment configuration used by the harness binaries,
/// honouring the `LEAPS_*` environment overrides.
#[must_use]
pub fn harness_experiment() -> Experiment {
    let runs = env_usize("LEAPS_RUNS", 10);
    let seed = env_u64("LEAPS_SEED", 0x1ea5);
    let events = env_usize("LEAPS_EVENTS", 6000);
    Experiment {
        gen: GenParams {
            benign_events: events,
            mixed_events: events,
            malicious_events: events / 2,
            benign_ratio: 0.5,
        },
        runs,
        seed,
        ..Experiment::default()
    }
}

/// Reads a `usize` env var with a default.
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a `u64` env var with a default.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Formats a metric value the way the paper's table does.
#[must_use]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        assert_eq!(env_usize("LEAPS_NO_SUCH_VAR", 7), 7);
        assert_eq!(env_u64("LEAPS_NO_SUCH_VAR", 9), 9);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.9321), "0.932");
    }

    #[test]
    fn harness_experiment_has_paper_defaults() {
        // (Assumes the LEAPS_* vars are unset in the test environment.)
        let e = harness_experiment();
        assert!(e.runs >= 1);
        assert!(e.gen.benign_events >= 100);
    }
}
