//! Shared helpers for the LEAPS evaluation harness binaries and benches.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the experiment index):
//!
//! * `table1` — Table I (21 datasets × five measures, WSVM);
//! * `fig6` / `fig7` — Figures 6/7 (CGraph vs SVM vs WSVM per dataset);
//! * `case_studies` — the three Section V-C case studies;
//! * `fig4_cfg` — benign vs mixed CFG DOT dumps (Figure 4);
//! * `fig2_clustering` — the clustering example of Figure 2;
//! * `fig5_boundary` — SVM vs WSVM boundary illustration (Figure 5);
//! * `ablations` — design-choice ablations (coalescing window, linkage,
//!   weight polarity, density interpolation).
//!
//! Environment overrides honoured by the binaries:
//! `LEAPS_RUNS` (averaging runs, default 10), `LEAPS_SEED` (master seed),
//! `LEAPS_EVENTS` (events per log, default 6000 benign/mixed).
//!
//! The sweep binaries (`table1`, `fig6`, `fig7`, `case_studies`) run
//! under per-cell supervision ([`Experiment::run_sweep`]) and honour
//! four more: `LEAPS_DEADLINE_SECS` (wall-clock budget; remaining cells
//! are recorded as `deadline`, exit code 8), `LEAPS_SWEEP_MANIFEST`
//! (manifest path, rewritten atomically after every cell),
//! `LEAPS_RESUME=1` (skip cells the manifest records as ok) and
//! `LEAPS_CHAOS_CELL=scenario:METHOD` (fault injection: that cell's
//! first run panics — the harness must still finish the rest and exit 9).

pub mod chart;

use leaps::core::experiment::{CellOutcome, Experiment, SweepOptions, SweepReport};
use leaps::core::pipeline::Method;
use leaps::etw::scenario::{GenParams, Scenario};
use std::process::ExitCode;

/// Builds the experiment configuration used by the harness binaries,
/// honouring the `LEAPS_*` environment overrides.
#[must_use]
pub fn harness_experiment() -> Experiment {
    let runs = env_usize("LEAPS_RUNS", 10);
    let seed = env_u64("LEAPS_SEED", 0x1ea5);
    let events = env_usize("LEAPS_EVENTS", 6000);
    Experiment {
        gen: GenParams {
            benign_events: events,
            mixed_events: events,
            malicious_events: events / 2,
            benign_ratio: 0.5,
        },
        runs,
        seed,
        ..Experiment::default()
    }
}

/// Builds the sweep supervision options from the `LEAPS_DEADLINE_SECS`,
/// `LEAPS_SWEEP_MANIFEST`, `LEAPS_RESUME` and `LEAPS_CHAOS_CELL`
/// environment variables.
#[must_use]
pub fn sweep_options_from_env() -> SweepOptions {
    SweepOptions {
        deadline_secs: std::env::var("LEAPS_DEADLINE_SECS").ok().and_then(|v| v.parse().ok()),
        manifest: std::env::var("LEAPS_SWEEP_MANIFEST").ok().map(std::path::PathBuf::from),
        resume: env_flag("LEAPS_RESUME"),
        chaos_cell: std::env::var("LEAPS_CHAOS_CELL").ok(),
    }
}

/// Runs `scenarios × methods` under the environment's supervision
/// options ([`sweep_options_from_env`]) — the shared entry point of the
/// sweep binaries (`table1`, `fig6`, `fig7`, `case_studies`). A
/// harness-level failure (unwritable manifest, corrupt resume state,
/// ...) is printed as the binaries' common `error:` line and mapped to
/// the process exit code; per-cell failures land in the report instead
/// (see [`sweep_exit`]).
///
/// # Errors
///
/// The exit code to terminate with when the sweep itself could not run.
pub fn run_supervised_sweep(
    experiment: &Experiment,
    scenarios: &[Scenario],
    methods: &[Method],
) -> Result<SweepReport, ExitCode> {
    experiment.run_sweep(scenarios, methods, &sweep_options_from_env()).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::from(e.exit_code())
    })
}

/// Whether a boolean env var is set to a truthy value (`1`/`true`/`yes`).
#[must_use]
pub fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("yes"))
}

/// One-line status for a sweep cell that did not complete: the tag plus
/// the captured error/panic message.
#[must_use]
pub fn cell_status(outcome: &CellOutcome) -> String {
    match outcome {
        CellOutcome::Ok(_) => "ok".to_owned(),
        CellOutcome::Error(msg) => format!("ERROR: {msg}"),
        CellOutcome::Panicked(msg) => format!("PANICKED: {msg}"),
        CellOutcome::Deadline => "DEADLINE: not run (budget expired)".to_owned(),
    }
}

/// Prints the sweep summary to stderr and converts the report into the
/// process exit code: 0 all ok, 8 deadline-bounded, 9 failed cells.
#[must_use]
pub fn sweep_exit(report: &SweepReport) -> ExitCode {
    let (ok, errors, panics, deadlines) = report.counts();
    for cell in &report.cells {
        if !matches!(cell.outcome, CellOutcome::Ok(_)) {
            eprintln!(
                "sweep cell {}:{} -> {}",
                cell.scenario,
                cell.method.label(),
                cell_status(&cell.outcome)
            );
        }
    }
    eprintln!(
        "sweep: {} cells — {ok} ok, {errors} error, {panics} panicked, {deadlines} deadline",
        report.cells.len()
    );
    ExitCode::from(report.exit_code())
}

/// Reads a `usize` env var with a default.
#[must_use]
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Reads a `u64` env var with a default.
#[must_use]
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Formats a metric value the way the paper's table does.
#[must_use]
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_apply() {
        assert_eq!(env_usize("LEAPS_NO_SUCH_VAR", 7), 7);
        assert_eq!(env_u64("LEAPS_NO_SUCH_VAR", 9), 9);
    }

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(0.9321), "0.932");
    }

    #[test]
    fn harness_experiment_has_paper_defaults() {
        // (Assumes the LEAPS_* vars are unset in the test environment.)
        let e = harness_experiment();
        assert!(e.runs >= 1);
        assert!(e.gen.benign_events >= 100);
    }

    #[test]
    fn sweep_options_default_to_unsupervised() {
        // (Assumes the LEAPS_* vars are unset in the test environment.)
        let o = sweep_options_from_env();
        assert_eq!(o.deadline_secs, None);
        assert_eq!(o.manifest, None);
        assert!(!o.resume);
        assert_eq!(o.chaos_cell, None);
        assert!(!env_flag("LEAPS_NO_SUCH_VAR"));
    }

    #[test]
    fn cell_status_captures_messages() {
        assert_eq!(cell_status(&CellOutcome::Error("boom".into())), "ERROR: boom");
        assert!(cell_status(&CellOutcome::Deadline).starts_with("DEADLINE"));
    }
}
