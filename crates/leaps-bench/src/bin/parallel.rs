//! Serial-vs-parallel wall-time benchmark for the thread fan-out layer
//! (`leaps_par`): kernel-matrix construction inside SMO training, the
//! (λ, σ², fold) cross-validation grid, and pairwise Jaccard distances.
//!
//! Writes `results/BENCH_parallel.json` (override the path with
//! `LEAPS_BENCH_OUT`) and prints the same numbers to stdout.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin parallel
//! ```

use leaps::cluster::dissim::{jaccard_dissimilarity, DistanceMatrix};
use leaps::core::par;
use leaps::svm::cv::GridSearch;
use leaps::svm::data::{Sample, TrainSet};
use leaps::svm::kernel::Kernel;
use leaps::svm::smo::{train, SmoParams};
use std::time::Instant;

const REPS: usize = 3;

/// Best-of-`REPS` wall time of `f`, in seconds.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Times `f` at one thread and at the full pool.
fn stage(name: &str, threads: usize, mut f: impl FnMut()) -> StageResult {
    par::set_thread_override(Some(1));
    let serial = best_secs(&mut f);
    par::set_thread_override(Some(threads));
    let parallel = best_secs(&mut f);
    par::set_thread_override(None);
    let r = StageResult { name: name.to_owned(), serial_s: serial, parallel_s: parallel };
    println!(
        "{:<24} serial {:>8.3}s   parallel {:>8.3}s   speedup {:>5.2}x",
        r.name,
        r.serial_s,
        r.parallel_s,
        r.speedup()
    );
    r
}

struct StageResult {
    name: String,
    serial_s: f64,
    parallel_s: f64,
}

impl StageResult {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \
             \"speedup\": {:.3}}}",
            self.name,
            self.serial_s,
            self.parallel_s,
            self.speedup()
        )
    }
}

/// Deterministic lattice of 30-dimensional samples (the pipeline's
/// coalesced-window dimensionality) in two loosely separated classes.
fn synthetic_set(n_per_class: usize) -> TrainSet {
    let mut samples = Vec::new();
    for i in 0..n_per_class {
        for (base, label) in [(0.1, 1.0), (0.55, -1.0)] {
            let x: Vec<f64> =
                (0..30).map(|d| base + ((i * 31 + d * 7) % 97) as f64 / 300.0).collect();
            samples.push(Sample::new(x, label, 1.0));
        }
    }
    TrainSet::new(samples).unwrap()
}

/// Deterministic vocabulary-like string sets for the Jaccard stage.
fn synthetic_vocab(n: usize) -> Vec<Vec<String>> {
    (0..n)
        .map(|i| {
            let mut set: Vec<String> =
                (0..(3 + i % 9)).map(|k| format!("f{}", (i * 13 + k * 5) % 257)).collect();
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect()
}

fn main() {
    let threads = par::thread_count();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "parallel benchmark: {threads} worker threads on {cores} cores vs serial \
         (best of {REPS})"
    );
    if cores < 2 {
        println!("note: single-core runner — expect speedup ~1.0x regardless of threads");
    }

    let kernel_set = synthetic_set(400);
    let kernel = stage("kernel_matrix_train", threads, || {
        // Low iteration cap: the O(n²·d) kernel-matrix build is the
        // parallel stage under test, not the (serial) SMO loop.
        let model = train(
            &kernel_set,
            Kernel::Gaussian { sigma2: 8.0 },
            &SmoParams { lambda: 10.0, max_iter: 50, ..Default::default() },
        );
        let _ = model.support_vector_count();
    });

    let grid_set = synthetic_set(160);
    let gs = GridSearch { folds: 5, ..Default::default() };
    let grid = stage("cv_grid_search", threads, || {
        let best = gs.run(&grid_set);
        assert!(best.accuracy >= 0.0);
    });

    let vocab = synthetic_vocab(2000);
    let pairwise = stage("pairwise_jaccard", threads, || {
        let dm = DistanceMatrix::from_sets_parallel(&vocab, |a, b| {
            jaccard_dissimilarity(a.as_slice(), b.as_slice())
        });
        assert_eq!(dm.len(), vocab.len());
    });

    let out = std::env::var("LEAPS_BENCH_OUT")
        .unwrap_or_else(|_| "results/BENCH_parallel.json".to_owned());
    let stages = [kernel, grid, pairwise];
    let body: Vec<String> = stages.iter().map(StageResult::json).collect();
    let json = format!(
        "{{\n  \"threads\": {},\n  \"cores\": {},\n  \"reps\": {},\n  \"stages\": [\n{}\n  ]\n}}\n",
        threads,
        cores,
        REPS,
        body.join(",\n")
    );
    std::fs::write(&out, json).expect("writing benchmark output");
    println!("wrote {out}");
}
