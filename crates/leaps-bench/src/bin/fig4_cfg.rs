//! Regenerates **Figure 4**: the benign CFG of Vim vs the mixed CFG of a
//! trojaned Vim (Reverse TCP shell payload), with the anomalous payload
//! subgraph highlighted.
//!
//! Writes `fig4_vim_benign.dot` and `fig4_vim_mixed.dot` to the current
//! directory (render with `dot -Tsvg`), and prints overlap statistics.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin fig4_cfg
//! ```

use leaps::cfg::compare::overlap;
use leaps::cfg::dot::to_dot;
use leaps::cfg::infer::infer_cfg;
use leaps::core::dataset::Dataset;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps_bench::{env_u64, env_usize};

fn main() {
    let seed = env_u64("LEAPS_SEED", 0x1ea5);
    let events = env_usize("LEAPS_EVENTS", 1200);
    let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
    let params = GenParams {
        benign_events: events,
        mixed_events: events,
        malicious_events: events / 2,
        benign_ratio: 0.5,
    };
    let dataset = Dataset::materialize(scenario, &params, seed).expect("generation");

    let benign = infer_cfg(&dataset.benign).cfg;
    let mixed = infer_cfg(&dataset.mixed).cfg;

    std::fs::write("fig4_vim_benign.dot", to_dot(&benign, "vim_benign_cfg", None))
        .expect("write benign dot");
    std::fs::write("fig4_vim_mixed.dot", to_dot(&mixed, "vim_mixed_cfg", Some(&benign)))
        .expect("write mixed dot");

    let stats = overlap(&benign, &mixed);
    println!("FIGURE 4: Vim benign CFG vs trojaned-Vim mixed CFG");
    println!("  benign CFG: {} nodes, {} edges", benign.node_count(), benign.edge_count());
    println!("  mixed CFG:  {} nodes, {} edges", mixed.node_count(), mixed.edge_count());
    println!(
        "  shared nodes: {}   mixed-only nodes (payload subgraph): {}",
        stats.shared_nodes, stats.mixed_only_nodes
    );
    println!(
        "  shared edges: {}   mixed-only edges: {}",
        stats.shared_edges, stats.mixed_only_edges
    );
    println!("  wrote fig4_vim_benign.dot, fig4_vim_mixed.dot (red = anomalous subgraph)");
}
