//! Regenerates **Figure 2**: hierarchical clustering discretizing one
//! system event into its `{Event_Type, Lib, Func}` 3-tuple.
//!
//! Picks one `SysCallEnter` event from a WinSCP trace, shows its raw
//! system stack trace, the Lib/Func sets, and the discretized tuple the
//! trained encoder produces.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin fig2_clustering
//! ```

use leaps::cluster::features::{FeatureEncoder, PreprocessConfig};
use leaps::core::dataset::Dataset;
use leaps::etw::event::EventType;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::trace::partition::PartitionedEvent;
use leaps_bench::env_u64;

fn main() {
    let seed = env_u64("LEAPS_SEED", 0x1ea5);
    let scenario = Scenario::by_name("winscp_reverse_tcp").expect("known dataset");
    let dataset = Dataset::materialize(scenario, &GenParams::small(), seed).expect("generation");

    let refs: Vec<&PartitionedEvent> = dataset.benign.iter().collect();
    let encoder = FeatureEncoder::fit(&refs, PreprocessConfig::default());

    let event = dataset
        .benign
        .iter()
        .find(|e| e.etype == EventType::SysCallEnter)
        .expect("a SysCallEnter event");

    println!("FIGURE 2: Hierarchical clustering of a system event");
    println!("Event @{} type={}", event.num, event.etype);
    println!("  system stack trace:");
    for frame in &event.system_stack {
        println!("    {frame}");
    }
    println!("  Lib set:  {:?}", event.lib_set());
    println!("  Func set: {:?}", event.func_set());
    let (etype, lib, func) = encoder.tuple(event);
    println!(
        "  clustering: {} lib clusters, {} func clusters",
        encoder.lib_cluster_count(),
        encoder.func_cluster_count()
    );
    println!("  => 3-tuple {{Event_Type={etype}, Lib={lib}, Func={func}}}");
    println!("     (paper Fig. 2 shows e.g. Event_Num @107 -> Event_Type 7, Lib 2, Func 40)");
}
