//! The universal-classifier experiment of paper Section II-B-2: train
//! **one** classifier over several applications' pooled training data and
//! compare, per application, against the application-wise classifiers the
//! paper evaluates.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin universal
//! ```

use leaps::core::dataset::Dataset;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::core::universal::UniversalClassifier;
use leaps::etw::scenario::Scenario;
use leaps_bench::{fmt3, harness_experiment};

const DATASETS: [&str; 5] = [
    "winscp_reverse_tcp",
    "chrome_reverse_tcp",
    "notepad++_reverse_tcp",
    "putty_reverse_tcp",
    "vim_reverse_tcp",
];

fn main() {
    let experiment = harness_experiment();
    let seed = experiment.seed;
    println!(
        "UNIVERSAL CLASSIFIER (Section II-B-2, {} events/log, single split)",
        experiment.gen.benign_events
    );

    let datasets: Vec<Dataset> = DATASETS
        .iter()
        .map(|name| {
            Dataset::materialize(
                Scenario::by_name(name).expect("known dataset"),
                &experiment.gen,
                seed,
            )
            .expect("generation")
        })
        .collect();

    println!("training one WSVM over {} pooled datasets...", datasets.len());
    let universal = UniversalClassifier::train(&datasets, Method::Wsvm, &experiment.pipeline, seed);
    println!("tuned lambda={} sigma2={}\n", universal.tuned().0, universal.tuned().1);
    println!("{:<26} {:>18} {:>18}", "Dataset", "universal WSVM ACC", "per-app WSVM ACC");
    for d in &datasets {
        let u = universal.evaluate(d, &experiment.pipeline, seed);
        let (train, test) = d.split_benign(experiment.pipeline.benign_train_fraction, seed);
        let per_app = train_classifier(Method::Wsvm, &train, &d.mixed, &experiment.pipeline, seed)
            .evaluate(&test, &d.malicious)
            .metrics();
        println!("{:<26} {:>18} {:>18}", d.scenario.name(), fmt3(u.acc), fmt3(per_app.acc));
    }
}
