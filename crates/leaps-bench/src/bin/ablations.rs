//! Ablation studies for the design choices called out in DESIGN.md §5:
//!
//! * **coalescing window** — 1/5/10/20 events per data point (the paper
//!   fixes 10);
//! * **linkage criterion** — UPGMA (paper) vs single vs complete;
//! * **weight polarity** — maliciousness (`1 − benignity`, the paper's
//!   intent) vs raw benignity;
//! * **density interpolation** — Algorithm 2's `ESTIMATE_WEIGHT` on vs
//!   hard 0/1 edge scores.
//!
//! Each ablation reports WSVM accuracy on a representative scenario.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin ablations
//! ```
//!
//! Env overrides: `LEAPS_RUNS` (default 3 here), `LEAPS_SEED`,
//! `LEAPS_EVENTS`, `LEAPS_SCENARIO`.

use leaps::cfg::weight::WeightConfig;
use leaps::cluster::hier::Linkage;
use leaps::core::config::WeightPolarity;
use leaps::core::experiment::Experiment;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::{env_usize, fmt3, harness_experiment};

fn main() {
    let scenario_name =
        std::env::var("LEAPS_SCENARIO").unwrap_or_else(|_| "winscp_reverse_tcp".into());
    let scenario = Scenario::by_name(&scenario_name).expect("known dataset");
    let mut base = harness_experiment();
    base.runs = env_usize("LEAPS_RUNS", 3);
    println!(
        "ABLATIONS on {scenario_name} (WSVM, {} runs, {} events/log)\n",
        base.runs, base.gen.benign_events
    );

    let run = |label: &str, exp: &Experiment| {
        let m = exp.run(scenario, Method::Wsvm).expect("experiment");
        println!("  {label:<34} ACC={} TPR={} TNR={}", fmt3(m.acc), fmt3(m.tpr), fmt3(m.tnr));
    };

    println!("Coalescing window (paper: 10):");
    for window in [1usize, 5, 10, 20] {
        let mut exp = base.clone();
        exp.pipeline.preprocess.window = window;
        run(&format!("window = {window}"), &exp);
    }

    println!("\nLinkage criterion (paper: UPGMA/average):");
    for (name, linkage) in [
        ("average (UPGMA)", Linkage::Average),
        ("single", Linkage::Single),
        ("complete", Linkage::Complete),
    ] {
        let mut exp = base.clone();
        exp.pipeline.preprocess.linkage = linkage;
        run(name, &exp);
    }

    println!("\nWeight polarity (paper intent: maliciousness = 1 - benignity):");
    for (name, polarity) in [
        ("maliciousness (default)", WeightPolarity::Maliciousness),
        ("benignity (inverted)", WeightPolarity::Benignity),
    ] {
        let mut exp = base.clone();
        exp.pipeline.weight_polarity = polarity;
        run(name, &exp);
    }

    println!("\nDensity-array interpolation (Algorithm 2):");
    for (name, enabled) in [("interpolated (default)", true), ("hard 0/1 scores", false)] {
        let mut exp = base.clone();
        exp.pipeline.weight = WeightConfig { density_estimation: enabled };
        run(name, &exp);
    }
}
