//! Regenerates **Figure 5**: an illustration of the decision boundaries
//! learned by the original SVM vs the Weighted SVM on a 2-D dataset whose
//! negative class is contaminated with mislabeled benign points.
//!
//! Prints an ASCII rendering of both boundaries plus the misclassification
//! counts on the true labels, showing the original SVM bending around the
//! mislabeled points while the weighted SVM recovers the clean boundary.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin fig5_boundary
//! ```

use leaps::etw::rng::SimRng;
use leaps::svm::data::{Sample, TrainSet};
use leaps::svm::kernel::Kernel;
use leaps::svm::smo::{train, SmoParams};
use leaps_bench::env_u64;

fn gaussian_pair(rng: &mut SimRng) -> (f64, f64) {
    // Box–Muller.
    let u1 = rng.f64().max(1e-12);
    let u2 = rng.f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

fn main() {
    let mut rng = SimRng::new(env_u64("LEAPS_SEED", 0x1ea5));
    let mut plain = Vec::new();
    let mut weighted = Vec::new();

    // Benign cluster around (0.3, 0.3), malicious around (0.7, 0.7).
    for _ in 0..60 {
        let (dx, dy) = gaussian_pair(&mut rng);
        let x = vec![0.3 + 0.07 * dx, 0.3 + 0.07 * dy];
        plain.push(Sample::new(x.clone(), 1.0, 1.0));
        weighted.push(Sample::new(x, 1.0, 1.0));

        let (dx, dy) = gaussian_pair(&mut rng);
        let x = vec![0.7 + 0.07 * dx, 0.7 + 0.07 * dy];
        plain.push(Sample::new(x.clone(), -1.0, 1.0));
        weighted.push(Sample::new(x, -1.0, 1.0));
    }
    // Mislabeled mixed points: actually benign, labeled malicious. The
    // CFG guidance would assign them near-zero maliciousness.
    for _ in 0..45 {
        let (dx, dy) = gaussian_pair(&mut rng);
        let x = vec![0.33 + 0.08 * dx, 0.33 + 0.08 * dy];
        plain.push(Sample::new(x.clone(), -1.0, 1.0));
        weighted.push(Sample::new(x, -1.0, 0.05));
    }

    let params = SmoParams { lambda: 10.0, ..Default::default() };
    let kernel = Kernel::Gaussian { sigma2: 0.05 };
    let svm = train(&TrainSet::new(plain).expect("valid set"), kernel, &params);
    let wsvm = train(&TrainSet::new(weighted).expect("valid set"), kernel, &params);

    println!("FIGURE 5: original SVM vs Weighted SVM decision regions");
    println!("('+' classified benign, '-' classified malicious; B/M = true cluster centers)\n");
    for (label, model) in [("SVM", &svm), ("WSVM", &wsvm)] {
        println!("{label}:");
        for row in 0..16 {
            let y = 1.0 - (row as f64 + 0.5) / 16.0;
            let mut line = String::from("  ");
            for col in 0..32 {
                let x = (col as f64 + 0.5) / 32.0;
                let near_b = (x - 0.3).abs() < 0.02 && (y - 0.3).abs() < 0.04;
                let near_m = (x - 0.7).abs() < 0.02 && (y - 0.7).abs() < 0.04;
                let c = if near_b {
                    'B'
                } else if near_m {
                    'M'
                } else if model.predict(&[x, y]) > 0.0 {
                    '+'
                } else {
                    '-'
                };
                line.push(c);
            }
            println!("{line}");
        }
        // True-label error on the benign cluster center region.
        let mut errors = 0;
        let mut probes = 0;
        let mut probe_rng = SimRng::new(7);
        for _ in 0..400 {
            let (dx, dy) = gaussian_pair(&mut probe_rng);
            let p = [0.3 + 0.07 * dx, 0.3 + 0.07 * dy];
            probes += 1;
            if model.predict(&p) != 1.0 {
                errors += 1;
            }
        }
        println!(
            "  benign-region error rate: {:.1}%  (support vectors: {})\n",
            100.0 * f64::from(errors) / f64::from(probes),
            model.support_vector_count()
        );
    }
}
