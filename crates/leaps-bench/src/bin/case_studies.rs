//! Regenerates the three **Section V-C case studies**:
//!
//! * Case I — `winscp_reverse_tcp` (offline infection via Metasploit
//!   Meterpreter, shikata_ga_nai-encoded, embedded in WinSCP);
//! * Case II — `vim_codeinject` (password dialog injected into Vim's PE);
//! * Case III — `putty_reverse_https_online` (Meterpreter injected into a
//!   running Putty via `post/windows/manage/payload_inject`).
//!
//! For each, the paper reports how the five measures climb from the
//! call-graph model through plain SVM to the CFG-guided Weighted SVM.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin case_studies
//! ```

use leaps::etw::scenario::Scenario;
use leaps_bench::{fmt3, harness_experiment};

const CASES: [(&str, &str); 3] = [
    ("Case Study I", "winscp_reverse_tcp"),
    ("Case Study II", "vim_codeinject"),
    ("Case Study III", "putty_reverse_https_online"),
];

fn main() {
    let experiment = harness_experiment();
    for (title, name) in CASES {
        let scenario = Scenario::by_name(name).expect("known dataset");
        println!("{title} — {name} ({} runs)", experiment.runs);
        println!(
            "  {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "Method", "ACC", "PPV", "TPR", "TNR", "NPV"
        );
        for (method, m) in
            experiment.run_all_methods(scenario).expect("dataset generation/parsing failed")
        {
            println!(
                "  {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                method.label(),
                fmt3(m.acc),
                fmt3(m.ppv),
                fmt3(m.tpr),
                fmt3(m.tnr),
                fmt3(m.npv),
            );
        }
        println!();
    }
}
