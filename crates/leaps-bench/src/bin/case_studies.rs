//! Regenerates the three **Section V-C case studies**:
//!
//! * Case I — `winscp_reverse_tcp` (offline infection via Metasploit
//!   Meterpreter, shikata_ga_nai-encoded, embedded in WinSCP);
//! * Case II — `vim_codeinject` (password dialog injected into Vim's PE);
//! * Case III — `putty_reverse_https_online` (Meterpreter injected into a
//!   running Putty via `post/windows/manage/payload_inject`).
//!
//! For each, the paper reports how the five measures climb from the
//! call-graph model through plain SVM to the CFG-guided Weighted SVM.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin case_studies
//! ```
//!
//! Runs as a supervised sweep: honours `LEAPS_DEADLINE_SECS`,
//! `LEAPS_SWEEP_MANIFEST`, `LEAPS_RESUME` and `LEAPS_CHAOS_CELL`; a
//! failed cell is reported in place of its metrics row.

use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::{cell_status, fmt3, harness_experiment, run_supervised_sweep, sweep_exit};
use std::process::ExitCode;

const CASES: [(&str, &str); 3] = [
    ("Case Study I", "winscp_reverse_tcp"),
    ("Case Study II", "vim_codeinject"),
    ("Case Study III", "putty_reverse_https_online"),
];

fn main() -> ExitCode {
    let experiment = harness_experiment();
    let scenarios: Vec<Scenario> =
        CASES.iter().map(|(_, name)| Scenario::by_name(name).expect("known dataset")).collect();
    let report = match run_supervised_sweep(&experiment, &scenarios, &Method::ALL) {
        Ok(report) => report,
        Err(code) => return code,
    };
    for ((title, name), cells) in CASES.iter().zip(report.cells.chunks(Method::ALL.len())) {
        println!("{title} — {name} ({} runs)", experiment.runs);
        println!(
            "  {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "Method", "ACC", "PPV", "TPR", "TNR", "NPV"
        );
        for cell in cells {
            match cell.outcome.metrics() {
                Some(m) => println!(
                    "  {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                    cell.method.label(),
                    fmt3(m.acc),
                    fmt3(m.ppv),
                    fmt3(m.tpr),
                    fmt3(m.tnr),
                    fmt3(m.npv),
                ),
                None => {
                    println!("  {:<8} {}", cell.method.label(), cell_status(&cell.outcome));
                }
            }
        }
        println!();
    }
    sweep_exit(&report)
}
