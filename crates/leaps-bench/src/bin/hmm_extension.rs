//! The Section VI-B extension experiment: how does an HMM sequence model
//! (the learning technique the paper proposes to explore next) compare
//! with the paper's three methods on representative datasets?
//!
//! The HMM is trained like the SVM baseline — benign model vs noisy
//! mixed model — so it inherits the same noisy-negative handicap; the
//! question is whether modeling event *order* buys anything without CFG
//! guidance.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin hmm_extension
//! ```

use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::{fmt3, harness_experiment};

const DATASETS: [&str; 4] =
    ["winscp_reverse_tcp", "vim_codeinject", "putty_reverse_https_online", "chrome_reverse_tcp"];

fn main() {
    let experiment = harness_experiment();
    println!(
        "HMM EXTENSION (Section VI-B, {} runs, {} events/log)",
        experiment.runs, experiment.gen.benign_events
    );
    println!(
        "{:<30} {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Dataset", "Method", "ACC", "PPV", "TPR", "TNR", "NPV"
    );
    for name in DATASETS {
        let scenario = Scenario::by_name(name).expect("known dataset");
        for method in Method::EXTENDED {
            let m = experiment.run(scenario, method).expect("experiment");
            println!(
                "{:<30} {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                name,
                method.label(),
                fmt3(m.acc),
                fmt3(m.ppv),
                fmt3(m.tpr),
                fmt3(m.tnr),
                fmt3(m.npv),
            );
        }
        println!();
    }
}
