//! Throughput/latency benchmark for the `leaps-serve` detection service:
//! 1–64 concurrent sessions submitting a trained-WSVM workload through
//! the in-process [`Server`], measuring sustained events/sec, verdict
//! latency percentiles (submit → sink delivery), and shed/degraded
//! counts under backpressure. Every session count runs twice — with the
//! idle-session reaper off and on — to price the reaper's periodic
//! sessions-map sweep. A final pass reruns a fixed workload with the
//! metrics registry enabled vs disabled ([`leaps::obs::set_enabled`])
//! and records the observability overhead (target < 2%).
//!
//! Writes `results/BENCH_serve.json` (override the path with
//! `LEAPS_BENCH_OUT`) and prints the same numbers to stdout.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin serve
//! ```

use leaps::core::config::PipelineConfig;
use leaps::core::par;
use leaps::core::persist::save_classifier;
use leaps::core::pipeline::{train_classifier, Method};
use leaps::core::stream::Verdict;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::serve::{Server, ServerConfig, Submit, VerdictSink};
use leaps::trace::parser::parse_log;
use leaps::trace::partition::{partition_events, PartitionedEvent};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const EVENTS_PER_SESSION: usize = 400;
const SESSION_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A sink that timestamps verdict delivery against the submit time of
/// the verdict's last event (session event numbers are contiguous, so
/// `last_event` indexes the submit-time table directly).
struct LatencySink {
    submit_times: Vec<Mutex<Option<Instant>>>,
    latencies_us: Mutex<Vec<f64>>,
    degraded: AtomicU64,
}

impl LatencySink {
    fn new(events: usize) -> LatencySink {
        LatencySink {
            submit_times: (0..events).map(|_| Mutex::new(None)).collect(),
            latencies_us: Mutex::new(Vec::new()),
            degraded: AtomicU64::new(0),
        }
    }
}

impl VerdictSink for LatencySink {
    fn deliver(&self, _pid: u32, verdict: &Verdict) {
        let submitted = *par::lock_unpoisoned(&self.submit_times[verdict.last_event as usize]);
        if let Some(t) = submitted {
            let us = t.elapsed().as_secs_f64() * 1e6;
            par::lock_unpoisoned(&self.latencies_us).push(us);
        }
        if verdict.degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One contiguous per-session stream: the mixed production log, trimmed
/// and renumbered so sequence numbers are dense from 0.
fn session_stream(raw_events: &[PartitionedEvent]) -> Vec<PartitionedEvent> {
    raw_events
        .iter()
        .cycle()
        .take(EVENTS_PER_SESSION)
        .enumerate()
        .map(|(n, e)| {
            let mut e = e.clone();
            e.num = n as u64;
            e
        })
        .collect()
}

struct RunResult {
    sessions: usize,
    idle_reaper: bool,
    events_per_sec: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    shed: u64,
    degraded: u64,
    verdicts: u64,
}

impl RunResult {
    fn json(&self) -> String {
        format!(
            "    {{\"sessions\": {}, \"idle_reaper\": {}, \"events_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"shed\": {}, \
             \"degraded\": {}, \"verdicts\": {}}}",
            self.sessions,
            self.idle_reaper,
            self.events_per_sec,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.shed,
            self.degraded,
            self.verdicts
        )
    }
}

/// TTL for the reaper-on runs: far above any real inter-submit gap, so
/// the sweep runs at its fastest clamped cadence without ever reaping a
/// benchmark session out from under its submitter.
const REAPER_TTL: std::time::Duration = std::time::Duration::from_secs(30);

fn run(
    models_dir: &std::path::Path,
    stream: &[PartitionedEvent],
    sessions: usize,
    idle_reaper: bool,
) -> RunResult {
    let server = Arc::new(Server::new(&ServerConfig {
        idle_ttl: idle_reaper.then_some(REAPER_TTL),
        ..ServerConfig::new(models_dir)
    }));
    let reaper = server.start_reaper();
    let sinks: Vec<Arc<LatencySink>> =
        (0..sessions).map(|_| Arc::new(LatencySink::new(stream.len()))).collect();
    for (pid, sink) in sinks.iter().enumerate() {
        let sink = Arc::clone(sink) as Arc<dyn VerdictSink>;
        server.open("bench", pid as u32, "vim", sink).expect("open session");
    }

    let started = Instant::now();
    let mut submitters = Vec::new();
    for (pid, sink) in sinks.iter().enumerate() {
        let server = Arc::clone(&server);
        let sink = Arc::clone(sink);
        let events = stream.to_vec();
        // lint:allow(stray-spawn): load-generator client threads model N independent clients; their panics must abort the benchmark, not be absorbed by a supervisor
        submitters.push(std::thread::spawn(move || {
            for event in events {
                let num = event.num as usize;
                *par::lock_unpoisoned(&sink.submit_times[num]) = Some(Instant::now());
                let outcome = server.submit("bench", pid as u32, event).expect("submit");
                let _ = matches!(outcome, Submit::Busy { .. });
            }
        }));
    }
    for handle in submitters {
        handle.join().expect("submitter thread");
    }
    let reports = server.close_all();
    let elapsed = started.elapsed().as_secs_f64();
    server.begin_shutdown();
    if let Some(handle) = reaper {
        handle.join().expect("reaper thread");
    }

    let mut latencies: Vec<f64> = Vec::new();
    let mut degraded = 0u64;
    for sink in &sinks {
        latencies.extend(par::lock_unpoisoned(&sink.latencies_us).iter().copied());
        degraded += sink.degraded.load(Ordering::Relaxed);
    }
    latencies.sort_by(f64::total_cmp);
    let shed: u64 = reports.iter().map(|(_, r)| r.shed).sum();
    let verdicts: u64 = reports.iter().map(|(_, r)| r.verdicts).sum();
    let total_events = (sessions * stream.len()) as f64;
    RunResult {
        sessions,
        idle_reaper,
        events_per_sec: total_events / elapsed.max(1e-12),
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        shed,
        degraded,
        verdicts,
    }
}

/// Prices the observability layer on the hot path: the same fixed
/// workload with the global metrics registry enabled vs disabled,
/// interleaved over several rounds to decorrelate machine drift,
/// best-of each (the target in DESIGN.md §14 is < 2% overhead).
fn metrics_overhead(models_dir: &std::path::Path, stream: &[PartitionedEvent]) -> (f64, f64) {
    const ROUNDS: usize = 7;
    const SESSIONS: usize = 8;
    let mut best_on = 0.0f64;
    let mut best_off = 0.0f64;
    for _ in 0..ROUNDS {
        leaps::obs::set_enabled(false);
        best_off = best_off.max(run(models_dir, stream, SESSIONS, false).events_per_sec);
        leaps::obs::set_enabled(true);
        best_on = best_on.max(run(models_dir, stream, SESSIONS, false).events_per_sec);
    }
    (best_on, best_off)
}

fn main() {
    let threads = par::thread_count();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "serve benchmark: {threads} pool workers on {cores} cores, \
         {EVENTS_PER_SESSION} events/session"
    );
    let notes = if cores < 2 {
        "single-core runner: all sessions share one pool worker, so latency percentiles \
         include queueing behind other sessions; expect events/sec to stay flat and \
         shedding to start earlier than on multi-core hosts"
    } else {
        "multi-core runner: sessions are sharded across pool workers; single-core \
         containers will show flat events/sec and earlier shedding"
    };
    println!("note: {notes}");

    let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
    let logs = scenario.generate(&GenParams::small(), 0x1ea5);
    let benign = partition_events(&parse_log(&logs.benign).expect("benign log").events);
    let mixed = partition_events(&parse_log(&logs.mixed).expect("mixed log").events);
    println!("training WSVM model for the registry...");
    let classifier = train_classifier(Method::Wsvm, &benign, &mixed, &PipelineConfig::fast(), 7);
    let dir = std::env::temp_dir().join(format!("leaps-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench model dir");
    std::fs::write(dir.join("vim.model"), save_classifier(&classifier)).expect("write model");

    let production = scenario.generate(&GenParams::small(), 0x2026);
    let stream =
        session_stream(&partition_events(&parse_log(&production.mixed).expect("log").events));

    let mut results = Vec::new();
    for sessions in SESSION_COUNTS {
        for idle_reaper in [false, true] {
            let r = run(&dir, &stream, sessions, idle_reaper);
            println!(
                "{:>3} sessions (reaper {}): {:>9.0} events/s   p50 {:>8.1}us   \
                 p95 {:>8.1}us   p99 {:>8.1}us   shed {:>5}   degraded {:>5}",
                r.sessions,
                if idle_reaper { "on " } else { "off" },
                r.events_per_sec,
                r.p50_us,
                r.p95_us,
                r.p99_us,
                r.shed,
                r.degraded
            );
            results.push(r);
        }
    }
    let (metrics_on, metrics_off) = metrics_overhead(&dir, &stream);
    let overhead_pct = 100.0 * (metrics_off - metrics_on) / metrics_off.max(1e-12);
    println!(
        "metrics overhead (8 sessions, best of 7): {metrics_on:.0} events/s on vs \
         {metrics_off:.0} events/s off -> {overhead_pct:+.2}% (target < 2%)"
    );
    let _ = std::fs::remove_dir_all(&dir);

    let out =
        std::env::var("LEAPS_BENCH_OUT").unwrap_or_else(|_| "results/BENCH_serve.json".to_owned());
    let body: Vec<String> = results.iter().map(RunResult::json).collect();
    let json = format!(
        "{{\n  \"threads\": {},\n  \"cores\": {},\n  \"events_per_session\": {},\n  \
         \"notes\": \"{}\",\n  \"metrics_overhead\": {{\"events_per_sec_on\": {:.1}, \
         \"events_per_sec_off\": {:.1}, \"overhead_pct\": {:.2}}},\n  \"runs\": [\n{}\n  ]\n}}\n",
        threads,
        cores,
        EVENTS_PER_SESSION,
        notes,
        metrics_on,
        metrics_off,
        overhead_pct,
        body.join(",\n")
    );
    std::fs::write(&out, json).expect("writing benchmark output");
    println!("wrote {out}");
}
