//! The Section VI-A experiment the paper proposes as future work:
//! **source-level trojans**, where the payload is woven into the
//! application source and the binary recompiled, shuffling every
//! function's address.
//!
//! Compares, per source-trojan dataset:
//!
//! * plain SVM (no CFG guidance);
//! * WSVM with the published address-space Algorithm 2 (expected to
//!   degrade: the benign CFG oracle no longer matches the trojaned
//!   binary's addresses);
//! * WSVM with structural **CFG alignment** (`leaps-cfg::align`), the
//!   paper's proposed fix.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin source_trojan
//! ```

use leaps::core::config::WeightMode;
use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::{fmt3, harness_experiment};

fn main() {
    let base = harness_experiment();
    println!(
        "SOURCE-LEVEL TROJANS (Section VI-A extension, {} runs, {} events/log)",
        base.runs, base.gen.benign_events
    );
    println!("{:<30} {:<22} {:>6} {:>6} {:>6}", "Dataset", "Method", "ACC", "TPR", "TNR");
    for scenario in Scenario::source_trojans() {
        let svm = base.run(scenario, Method::Svm).expect("experiment");
        let mut address = base.clone();
        address.pipeline.weight_mode = WeightMode::AddressSpace;
        let wsvm_address = address.run(scenario, Method::Wsvm).expect("experiment");
        let mut aligned = base.clone();
        aligned.pipeline.weight_mode = WeightMode::Aligned;
        let wsvm_aligned = aligned.run(scenario, Method::Wsvm).expect("experiment");

        for (label, m) in [
            ("SVM", svm),
            ("WSVM (address-space)", wsvm_address),
            ("WSVM (aligned CFGs)", wsvm_aligned),
        ] {
            println!(
                "{:<30} {:<22} {:>6} {:>6} {:>6}",
                scenario.name(),
                label,
                fmt3(m.acc),
                fmt3(m.tpr),
                fmt3(m.tnr),
            );
        }
        println!();
    }
}
