//! Regenerates **Figure 7**: CGraph vs SVM vs WSVM on the five measures,
//! for every online-injection dataset.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin fig7
//! ```

use leaps::etw::scenario::Scenario;
use leaps_bench::chart::grouped_bars;
use leaps_bench::{fmt3, harness_experiment};

fn main() {
    let experiment = harness_experiment();
    let mut acc_groups: Vec<(String, Vec<f64>)> = Vec::new();
    println!(
        "FIGURE 7: LEAPS (WSVM) vs System-level Call Graph and SVM — \
         Online Injection ({} runs)",
        experiment.runs
    );
    println!(
        "{:<28} {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Dataset", "Method", "ACC", "PPV", "TPR", "TNR", "NPV"
    );
    for scenario in Scenario::online() {
        let results =
            experiment.run_all_methods(scenario).expect("dataset generation/parsing failed");
        acc_groups.push((scenario.name(), results.iter().map(|(_, m)| m.acc).collect()));
        for (method, metrics) in results {
            println!(
                "{:<28} {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                scenario.name(),
                method.label(),
                fmt3(metrics.acc),
                fmt3(metrics.ppv),
                fmt3(metrics.tpr),
                fmt3(metrics.tnr),
                fmt3(metrics.npv),
            );
        }
        println!();
    }
    println!("{}", grouped_bars("ACC", &acc_groups, &["CGraph", "SVM", "WSVM"]));
}
