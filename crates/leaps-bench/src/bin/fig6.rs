//! Regenerates **Figure 6**: CGraph vs SVM vs WSVM on the five measures,
//! for every offline-infection dataset.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin fig6
//! ```
//!
//! Runs as a supervised sweep: honours `LEAPS_DEADLINE_SECS`,
//! `LEAPS_SWEEP_MANIFEST`, `LEAPS_RESUME` and `LEAPS_CHAOS_CELL`; failed
//! cells are reported in place and the rest of the figure still renders.

use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::chart::grouped_bars;
use leaps_bench::{cell_status, fmt3, harness_experiment, run_supervised_sweep, sweep_exit};
use std::process::ExitCode;

fn main() -> ExitCode {
    let experiment = harness_experiment();
    println!(
        "FIGURE 6: LEAPS (WSVM) vs System-level Call Graph and SVM — \
         Offline Infection ({} runs)",
        experiment.runs
    );
    println!(
        "{:<28} {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Dataset", "Method", "ACC", "PPV", "TPR", "TNR", "NPV"
    );
    let scenarios = Scenario::offline();
    let report = match run_supervised_sweep(&experiment, &scenarios, &Method::ALL) {
        Ok(report) => report,
        Err(code) => return code,
    };
    let mut acc_groups: Vec<(String, Vec<f64>)> = Vec::new();
    for (scenario, cells) in scenarios.iter().zip(report.cells.chunks(Method::ALL.len())) {
        // Chart only fully-completed dataset groups.
        if let Some(accs) =
            cells.iter().map(|c| c.outcome.metrics().map(|m| m.acc)).collect::<Option<Vec<f64>>>()
        {
            acc_groups.push((scenario.name(), accs));
        }
        for cell in cells {
            match cell.outcome.metrics() {
                Some(m) => println!(
                    "{:<28} {:<8} {:>6} {:>6} {:>6} {:>6} {:>6}",
                    cell.scenario,
                    cell.method.label(),
                    fmt3(m.acc),
                    fmt3(m.ppv),
                    fmt3(m.tpr),
                    fmt3(m.tnr),
                    fmt3(m.npv),
                ),
                None => println!(
                    "{:<28} {:<8} {}",
                    cell.scenario,
                    cell.method.label(),
                    cell_status(&cell.outcome)
                ),
            }
        }
        println!();
    }
    println!("{}", grouped_bars("ACC", &acc_groups, &["CGraph", "SVM", "WSVM"]));
    sweep_exit(&report)
}
