//! Robustness matrix: accuracy of the detection pipeline versus injected
//! telemetry-fault rate, per fault class.
//!
//! For every (fault class, rate) cell the harness generates a scenario's
//! raw logs, damages the training *and* production logs with
//! `leaps-faults`, recovers them with the lenient parser, trains with
//! `try_train_classifier` (recording graceful failures instead of
//! crashing) and stream-detects over a faulted benign log and a faulted
//! malicious log. Writes `results/BENCH_faults.json` (override with
//! `LEAPS_BENCH_OUT`).
//!
//! ```text
//! cargo run -p leaps-bench --release --bin faults
//! ```
//!
//! Environment overrides: `LEAPS_EVENTS` (default 1200), `LEAPS_SEED`,
//! `LEAPS_FAULT_RATES` (default `0,0.1,0.25,0.5`), `LEAPS_FAULT_CLASSES`
//! (comma-separated labels, default every class plus `all`),
//! `LEAPS_FAULT_METHOD` (default `wsvm`).

use leaps::core::config::PipelineConfig;
use leaps::core::pipeline::{try_train_classifier, Method};
use leaps::core::stream::StreamDetector;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::faults::{inject, FaultClass, FaultPlan};
use leaps::trace::parser::{parse_log_lenient, RecoveryStats};
use leaps::trace::partition::{partition_events, PartitionedEvent};
use leaps_bench::{env_u64, env_usize};

const SCENARIO: &str = "vim_reverse_tcp";

struct Cell {
    class: String,
    rate: f64,
    trained: bool,
    train_error: Option<String>,
    accuracy: Option<f64>,
    verdicts: usize,
    faults_injected: u64,
    quarantined: usize,
    skipped_lines: usize,
    gaps: u64,
    missing: u64,
    duplicates: usize,
    degraded_verdicts: usize,
}

impl Cell {
    fn json(&self) -> String {
        let accuracy = self.accuracy.map_or_else(|| "null".to_owned(), |a| format!("{a:.4}"));
        let train_error = self
            .train_error
            .as_ref()
            .map_or_else(|| "null".to_owned(), |e| format!("{:?}", e.to_string()));
        format!(
            "    {{\"class\": \"{}\", \"rate\": {:.3}, \"trained\": {}, \
             \"train_error\": {}, \"accuracy\": {}, \"verdicts\": {}, \
             \"faults_injected\": {}, \"quarantined\": {}, \"skipped_lines\": {}, \
             \"gaps\": {}, \"missing\": {}, \"duplicates\": {}, \
             \"degraded_verdicts\": {}}}",
            self.class,
            self.rate,
            self.trained,
            train_error,
            accuracy,
            self.verdicts,
            self.faults_injected,
            self.quarantined,
            self.skipped_lines,
            self.gaps,
            self.missing,
            self.duplicates,
            self.degraded_verdicts,
        )
    }
}

/// Damages `raw` per `plan`, recovers it leniently and partitions it.
/// Returns the events plus the injection/recovery statistics.
fn damage_and_recover(
    raw: &str,
    plan: &FaultPlan,
    seed: u64,
) -> (Vec<PartitionedEvent>, u64, RecoveryStats) {
    let (damaged, inject_stats) = inject(raw, plan, seed);
    let recovered = parse_log_lenient(&damaged);
    (partition_events(&recovered.events), inject_stats.total_faults() as u64, recovered.stats)
}

fn run_cell(
    class: &str,
    plan: &FaultPlan,
    rate: f64,
    method: Method,
    params: &GenParams,
    seed: u64,
) -> Cell {
    let scenario = Scenario::by_name(SCENARIO).expect("known scenario");
    // Independent generations for training and production, as deployed.
    let train_logs = scenario.generate(params, seed);
    let prod_logs = scenario.generate(params, seed ^ 0x9e37);

    let mut faults = 0;
    let mut quarantined = 0;
    let mut skipped_lines = 0;
    let mut recover = |raw: &str, salt: u64| {
        let (events, f, stats) = damage_and_recover(raw, plan, seed ^ salt);
        faults += f;
        quarantined += stats.quarantined;
        skipped_lines += stats.skipped_lines;
        events
    };
    let benign_train = recover(&train_logs.benign, 0x01);
    let mixed_train = recover(&train_logs.mixed, 0x02);
    let benign_prod = recover(&prod_logs.benign, 0x03);
    let malicious_prod = recover(&prod_logs.malicious, 0x04);

    let mut cell = Cell {
        class: class.to_owned(),
        rate,
        trained: false,
        train_error: None,
        accuracy: None,
        verdicts: 0,
        faults_injected: faults,
        quarantined,
        skipped_lines,
        gaps: 0,
        missing: 0,
        duplicates: 0,
        degraded_verdicts: 0,
    };
    let classifier = match try_train_classifier(
        method,
        &benign_train,
        &mixed_train,
        &PipelineConfig::fast(),
        seed,
    ) {
        Ok(c) => c,
        Err(e) => {
            cell.train_error = Some(e.to_string());
            return cell;
        }
    };
    cell.trained = true;

    // Stream over faulted production telemetry: benign should stay
    // benign, standalone payload should be flagged.
    let mut detector = StreamDetector::new(classifier);
    let benign_verdicts = detector.push_all(benign_prod);
    detector.resync();
    let malicious_verdicts = detector.push_all(malicious_prod);
    let stats = detector.stats();
    cell.gaps = stats.gaps as u64;
    cell.missing = stats.missing;
    cell.duplicates = stats.duplicates;
    cell.degraded_verdicts = stats.degraded_verdicts;
    cell.verdicts = benign_verdicts.len() + malicious_verdicts.len();
    if cell.verdicts > 0 {
        let correct = benign_verdicts.iter().filter(|v| v.benign).count()
            + malicious_verdicts.iter().filter(|v| !v.benign).count();
        cell.accuracy = Some(correct as f64 / cell.verdicts as f64);
    }
    cell
}

fn parse_rates(spec: &str) -> Vec<f64> {
    spec.split(',')
        .filter_map(|t| t.trim().parse::<f64>().ok())
        .filter(|r| (0.0..=1.0).contains(r))
        .collect()
}

fn main() {
    let events = env_usize("LEAPS_EVENTS", 1200);
    let seed = env_u64("LEAPS_SEED", 0x1ea5);
    let rates = parse_rates(
        &std::env::var("LEAPS_FAULT_RATES").unwrap_or_else(|_| "0,0.1,0.25,0.5".to_owned()),
    );
    assert!(!rates.is_empty(), "LEAPS_FAULT_RATES yielded no valid rates");
    let classes: Vec<String> = match std::env::var("LEAPS_FAULT_CLASSES") {
        Ok(spec) => spec.split(',').map(|t| t.trim().to_owned()).collect(),
        Err(_) => FaultClass::ALL
            .iter()
            .map(|c| c.label().to_owned())
            .chain(std::iter::once("all".to_owned()))
            .collect(),
    };
    let method_name = std::env::var("LEAPS_FAULT_METHOD").unwrap_or_else(|_| "wsvm".to_owned());
    let method = match method_name.as_str() {
        "cgraph" => Method::CGraph,
        "svm" => Method::Svm,
        "wsvm" => Method::Wsvm,
        "hmm" => Method::Hmm,
        other => panic!("unknown LEAPS_FAULT_METHOD {other:?}"),
    };
    let params = GenParams {
        benign_events: events,
        mixed_events: events,
        malicious_events: events / 2,
        benign_ratio: 0.5,
    };

    println!(
        "fault matrix: {SCENARIO} / {method_name}, {events} events/log, \
         classes {classes:?}, rates {rates:?}"
    );
    let mut cells = Vec::new();
    for class in &classes {
        for &rate in &rates {
            let plan = if class == "all" {
                FaultPlan::uniform(rate)
            } else {
                let fc = FaultClass::from_label(class)
                    .unwrap_or_else(|| panic!("unknown fault class {class:?}"));
                FaultPlan::only(fc, rate)
            };
            let cell = run_cell(class, &plan, rate, method, &params, seed);
            println!(
                "{:<16} rate {:<5.2} trained={} accuracy={} quarantined={} gaps={} \
                 degraded={}{}",
                cell.class,
                cell.rate,
                cell.trained,
                cell.accuracy.map_or_else(|| "n/a".to_owned(), |a| format!("{a:.3}")),
                cell.quarantined,
                cell.gaps,
                cell.degraded_verdicts,
                cell.train_error.as_ref().map_or_else(String::new, |e| format!("  [train: {e}]")),
            );
            cells.push(cell);
        }
    }

    let out =
        std::env::var("LEAPS_BENCH_OUT").unwrap_or_else(|_| "results/BENCH_faults.json".to_owned());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("creating output directory");
    }
    let body: Vec<String> = cells.iter().map(Cell::json).collect();
    let json = format!(
        "{{\n  \"scenario\": \"{SCENARIO}\",\n  \"method\": \"{method_name}\",\n  \
         \"events\": {events},\n  \"seed\": {seed},\n  \"cells\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out, json).expect("writing benchmark output");
    println!("wrote {out}");
}
