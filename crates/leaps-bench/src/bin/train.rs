//! Wall-time benchmark for the two training stages parallelized on top
//! of `leaps_par` after the SMO/CV/pairwise fan-out: UPGMA dendrogram
//! merging (nearest-neighbor cache vs the retired O(n³) full rescan,
//! serial vs pool) and Baum–Welch HMM training (per-sequence E-step
//! fan-out, serial vs pool). Every timed run is checked bit-identical
//! against the serial reference before its time is reported.
//!
//! Writes `results/BENCH_train.json` (override the path with
//! `LEAPS_BENCH_OUT`) and prints the same numbers to stdout.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin train
//! ```
//!
//! Sizes are overridable for CI smoke runs:
//! `LEAPS_UPGMA_SIZES=24,48` (leaf counts, default `64,256,1024`),
//! `LEAPS_HMM_SEQS=2,4` (sequence counts, default `8,32,128`) and
//! `LEAPS_CKPT_EVENTS=600` (events/log for the checkpoint-overhead
//! section, default `2000`).
//!
//! The checkpoint section times a full WSVM pipeline train with
//! checkpointing off vs on (atomic CV/SMO state writes every 50
//! optimizer passes), after asserting the two produce byte-identical
//! models.

use leaps::cluster::dissim::DistanceMatrix;
use leaps::cluster::hier::{Dendrogram, Linkage};
use leaps::core::config::PipelineConfig;
use leaps::core::dataset::Dataset;
use leaps::core::par;
use leaps::core::persist::save_classifier;
use leaps::core::pipeline::{
    try_train_classifier, try_train_classifier_checkpointed, CheckpointSpec, Method, TrainRun,
};
use leaps::etw::rng::SimRng;
use leaps::etw::scenario::{GenParams, Scenario};
use leaps::hmm::hmm::{Hmm, HmmParams};
use std::time::Instant;

const REPS: usize = 3;
const HMM_SEQ_LEN: usize = 64;
const HMM_SYMBOLS: usize = 12;

/// Best-of-`REPS` wall time of `f`, in seconds.
fn best_secs(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn sizes_from_env(var: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(var) {
        Ok(s) => s
            .split(',')
            .map(|tok| tok.trim().parse().unwrap_or_else(|_| panic!("bad {var} entry {tok:?}")))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Deterministic pseudo-random distance matrix (condensed form).
fn synthetic_dm(n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = SimRng::new(seed);
    let data: Vec<f64> = (0..n * (n - 1) / 2).map(|_| rng.f64()).collect();
    DistanceMatrix::from_condensed(n, data)
}

struct UpgmaResult {
    n: usize,
    rescan_s: f64,
    cache_serial_s: f64,
    cache_parallel_s: f64,
}

impl UpgmaResult {
    fn json(&self) -> String {
        format!(
            "    {{\"n\": {}, \"rescan_s\": {:.6}, \"cache_serial_s\": {:.6}, \
             \"cache_parallel_s\": {:.6}, \"cache_speedup_vs_rescan\": {:.3}, \
             \"parallel_speedup\": {:.3}}}",
            self.n,
            self.rescan_s,
            self.cache_serial_s,
            self.cache_parallel_s,
            self.rescan_s / self.cache_serial_s.max(1e-12),
            self.cache_serial_s / self.cache_parallel_s.max(1e-12),
        )
    }
}

fn bench_upgma(n: usize, threads: usize) -> UpgmaResult {
    let dm = synthetic_dm(n, 0x5eed ^ n as u64);
    // Correctness gate: the cached build must equal the rescan oracle.
    par::set_thread_override(Some(threads));
    let cached = Dendrogram::build(&dm, Linkage::Average);
    par::set_thread_override(None);
    assert_eq!(cached, Dendrogram::build_rescan(&dm, Linkage::Average), "n = {n}");

    par::set_thread_override(Some(1));
    // The rescan baseline is O(n³); one rep is plenty at large n.
    let t = Instant::now();
    let _ = Dendrogram::build_rescan(&dm, Linkage::Average);
    let rescan_s = t.elapsed().as_secs_f64();
    let cache_serial_s = best_secs(|| {
        let _ = Dendrogram::build(&dm, Linkage::Average);
    });
    par::set_thread_override(Some(threads));
    let cache_parallel_s = best_secs(|| {
        let _ = Dendrogram::build(&dm, Linkage::Average);
    });
    par::set_thread_override(None);
    let r = UpgmaResult { n, rescan_s, cache_serial_s, cache_parallel_s };
    println!(
        "upgma n={:<5} rescan {:>8.3}s   cache-serial {:>8.3}s ({:>6.1}x)   \
         cache-parallel {:>8.3}s ({:>5.2}x)",
        r.n,
        r.rescan_s,
        r.cache_serial_s,
        r.rescan_s / r.cache_serial_s.max(1e-12),
        r.cache_parallel_s,
        r.cache_serial_s / r.cache_parallel_s.max(1e-12),
    );
    r
}

struct BaumWelchResult {
    sequences: usize,
    serial_s: f64,
    parallel_s: f64,
}

impl BaumWelchResult {
    fn json(&self) -> String {
        format!(
            "    {{\"sequences\": {}, \"seq_len\": {HMM_SEQ_LEN}, \"serial_s\": {:.6}, \
             \"parallel_s\": {:.6}, \"speedup\": {:.3}}}",
            self.sequences,
            self.serial_s,
            self.parallel_s,
            self.serial_s / self.parallel_s.max(1e-12),
        )
    }
}

fn bench_baum_welch(count: usize, threads: usize) -> BaumWelchResult {
    let mut rng = SimRng::new(0xbe11 ^ count as u64);
    let seqs: Vec<Vec<usize>> =
        (0..count).map(|_| (0..HMM_SEQ_LEN).map(|_| rng.below(HMM_SYMBOLS)).collect()).collect();
    let params = HmmParams { iterations: 10, ..HmmParams::default() };

    par::set_thread_override(Some(1));
    let reference = Hmm::train(&seqs, HMM_SYMBOLS, &params);
    let serial_s = best_secs(|| {
        let _ = Hmm::train(&seqs, HMM_SYMBOLS, &params);
    });
    par::set_thread_override(Some(threads));
    // Correctness gate: pooled training must be bit-identical to serial.
    assert_eq!(reference, Hmm::train(&seqs, HMM_SYMBOLS, &params), "count = {count}");
    let parallel_s = best_secs(|| {
        let _ = Hmm::train(&seqs, HMM_SYMBOLS, &params);
    });
    par::set_thread_override(None);
    let r = BaumWelchResult { sequences: count, serial_s, parallel_s };
    println!(
        "baum-welch seqs={:<4} serial {:>8.3}s   parallel {:>8.3}s   speedup {:>5.2}x",
        r.sequences,
        r.serial_s,
        r.parallel_s,
        r.serial_s / r.parallel_s.max(1e-12),
    );
    r
}

struct CheckpointResult {
    events: usize,
    off_s: f64,
    on_s: f64,
}

impl CheckpointResult {
    fn json(&self) -> String {
        format!(
            "    {{\"events\": {}, \"checkpoint_off_s\": {:.6}, \"checkpoint_on_s\": {:.6}, \
             \"overhead_pct\": {:.2}}}",
            self.events,
            self.off_s,
            self.on_s,
            100.0 * (self.on_s - self.off_s) / self.off_s.max(1e-12),
        )
    }
}

/// Times a full WSVM pipeline train with checkpointing off vs on.
fn bench_checkpoint(events: usize) -> CheckpointResult {
    const SEED: u64 = 0xc4e0;
    let scenario = Scenario::by_name("vim_reverse_tcp").expect("known dataset");
    let params = GenParams {
        benign_events: events,
        mixed_events: events,
        malicious_events: events / 2,
        benign_ratio: 0.5,
    };
    let ds = Dataset::materialize(scenario, &params, SEED).expect("dataset generation");
    let (benign_train, _) = ds.split_benign(0.5, SEED);
    let config = PipelineConfig::fast();
    let dir = std::env::temp_dir().join(format!("leaps-bench-ckpt-{}", std::process::id()));
    // Checkpoint aggressively (every 50 SMO passes) so the overhead
    // number reflects real write traffic, not an idle hook.
    let spec = CheckpointSpec { every: 50, ..CheckpointSpec::new(dir.clone()) };
    let train_plain = || {
        try_train_classifier(Method::Wsvm, &benign_train, &ds.mixed, &config, SEED)
            .expect("training")
    };
    let train_checkpointed = || match try_train_classifier_checkpointed(
        Method::Wsvm,
        &benign_train,
        &ds.mixed,
        &config,
        SEED,
        &spec,
    )
    .expect("checkpointed training")
    {
        TrainRun::Done(classifier) => *classifier,
        TrainRun::Paused { .. } => unreachable!("no deadline configured"),
    };
    // Correctness gate: checkpointing must not change the model.
    assert_eq!(
        save_classifier(&train_plain()),
        save_classifier(&train_checkpointed()),
        "events = {events}"
    );
    let off_s = best_secs(|| {
        let _ = train_plain();
    });
    let on_s = best_secs(|| {
        let _ = train_checkpointed();
    });
    let _ = std::fs::remove_dir_all(&dir);
    let r = CheckpointResult { events, off_s, on_s };
    println!(
        "checkpoint events={:<5} off {:>8.3}s   on {:>8.3}s   overhead {:>5.1}%",
        r.events,
        r.off_s,
        r.on_s,
        100.0 * (r.on_s - r.off_s) / r.off_s.max(1e-12),
    );
    r
}

fn main() {
    let threads = par::thread_count();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "train-stage benchmark: {threads} worker threads on {cores} cores vs serial \
         (best of {REPS})"
    );
    if cores < 2 {
        println!("note: single-core runner — expect parallel speedup ~1.0x");
    }

    let upgma_sizes = sizes_from_env("LEAPS_UPGMA_SIZES", &[64, 256, 1024]);
    let hmm_seqs = sizes_from_env("LEAPS_HMM_SEQS", &[8, 32, 128]);
    let ckpt_events = sizes_from_env("LEAPS_CKPT_EVENTS", &[2000]);

    let upgma: Vec<UpgmaResult> = upgma_sizes.iter().map(|&n| bench_upgma(n, threads)).collect();
    let baum_welch: Vec<BaumWelchResult> =
        hmm_seqs.iter().map(|&c| bench_baum_welch(c, threads)).collect();
    let checkpoint: Vec<CheckpointResult> =
        ckpt_events.iter().map(|&e| bench_checkpoint(e)).collect();

    let out =
        std::env::var("LEAPS_BENCH_OUT").unwrap_or_else(|_| "results/BENCH_train.json".to_owned());
    let upgma_json: Vec<String> = upgma.iter().map(UpgmaResult::json).collect();
    let bw_json: Vec<String> = baum_welch.iter().map(BaumWelchResult::json).collect();
    let ckpt_json: Vec<String> = checkpoint.iter().map(CheckpointResult::json).collect();
    let json = format!(
        "{{\n  \"threads\": {},\n  \"cores\": {},\n  \"reps\": {},\n  \"upgma\": [\n{}\n  ],\n  \
         \"baum_welch\": [\n{}\n  ],\n  \"checkpoint\": [\n{}\n  ]\n}}\n",
        threads,
        cores,
        REPS,
        upgma_json.join(",\n"),
        bw_json.join(",\n"),
        ckpt_json.join(",\n")
    );
    std::fs::write(&out, json).expect("writing benchmark output");
    println!("wrote {out}");
}
