//! Regenerates **Table I**: the five effectiveness measures of the
//! CFG-guided Weighted SVM on all 21 camouflaged-attack datasets.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin table1
//! ```
//!
//! Env overrides: `LEAPS_RUNS`, `LEAPS_SEED`, `LEAPS_EVENTS`.

use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::{fmt3, harness_experiment};

fn main() {
    let experiment = harness_experiment();
    println!(
        "TABLE I: Evaluation Results of LEAPS on Camouflaged Attacks \
         (WSVM, {} runs, {} events/log)",
        experiment.runs, experiment.gen.benign_events
    );
    println!(
        "{:<32} {:<18} {:<12} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Name", "Attack Method", "Application", "ACC", "PPV", "TPR", "TNR", "NPV"
    );
    for scenario in Scenario::table1() {
        let metrics =
            experiment.run(scenario, Method::Wsvm).expect("dataset generation/parsing failed");
        println!(
            "{:<32} {:<18} {:<12} {:>6} {:>6} {:>6} {:>6} {:>6}",
            scenario.name(),
            scenario.method.label(),
            scenario.app.name(),
            fmt3(metrics.acc),
            fmt3(metrics.ppv),
            fmt3(metrics.tpr),
            fmt3(metrics.tnr),
            fmt3(metrics.npv),
        );
    }
}
