//! Regenerates **Table I**: the five effectiveness measures of the
//! CFG-guided Weighted SVM on all 21 camouflaged-attack datasets.
//!
//! ```text
//! cargo run -p leaps-bench --release --bin table1
//! ```
//!
//! Env overrides: `LEAPS_RUNS`, `LEAPS_SEED`, `LEAPS_EVENTS`, plus the
//! sweep supervision vars (`LEAPS_DEADLINE_SECS`, `LEAPS_SWEEP_MANIFEST`,
//! `LEAPS_RESUME`, `LEAPS_CHAOS_CELL`). A cell that errors, panics or
//! misses the deadline is reported in place; the rest of the table is
//! still produced (exit code 8/9 classifies the incident).

use leaps::core::pipeline::Method;
use leaps::etw::scenario::Scenario;
use leaps_bench::{cell_status, fmt3, harness_experiment, run_supervised_sweep, sweep_exit};
use std::process::ExitCode;

fn main() -> ExitCode {
    let experiment = harness_experiment();
    println!(
        "TABLE I: Evaluation Results of LEAPS on Camouflaged Attacks \
         (WSVM, {} runs, {} events/log)",
        experiment.runs, experiment.gen.benign_events
    );
    println!(
        "{:<32} {:<18} {:<12} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "Name", "Attack Method", "Application", "ACC", "PPV", "TPR", "TNR", "NPV"
    );
    let scenarios = Scenario::table1();
    let report = match run_supervised_sweep(&experiment, &scenarios, &[Method::Wsvm]) {
        Ok(report) => report,
        Err(code) => return code,
    };
    for (scenario, cell) in scenarios.iter().zip(&report.cells) {
        match cell.outcome.metrics() {
            Some(m) => println!(
                "{:<32} {:<18} {:<12} {:>6} {:>6} {:>6} {:>6} {:>6}",
                scenario.name(),
                scenario.method.label(),
                scenario.app.name(),
                fmt3(m.acc),
                fmt3(m.ppv),
                fmt3(m.tpr),
                fmt3(m.tnr),
                fmt3(m.npv),
            ),
            None => println!(
                "{:<32} {:<18} {:<12} {}",
                scenario.name(),
                scenario.method.label(),
                scenario.app.name(),
                cell_status(&cell.outcome)
            ),
        }
    }
    sweep_exit(&report)
}
