//! Test-runner plumbing: configuration, case errors and the
//! deterministic input RNG.

/// Per-`proptest!` configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }

    /// Alias of [`TestCaseError::fail`] matching upstream's `Reject` name.
    #[must_use]
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// FNV-1a hash of a test name, used to give each property its own
/// deterministic input stream.
#[must_use]
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic generator feeding the strategies (xoshiro256++ seeded
/// via SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> TestRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut s = seed;
        TestRng {
            state: [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result =
            self.state[0].wrapping_add(self.state[3]).rotate_left(23).wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_name_distinguishes_names() {
        assert_ne!(hash_name("a"), hash_name("b"));
        assert_eq!(hash_name("abc"), hash_name("abc"));
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
