//! The [`Strategy`] trait and the built-in strategy implementations.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream `proptest`, strategies here generate directly (no
/// value trees, no shrinking); combinators compose by function
/// application.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Box::new(self) }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::boxed`].
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Strategies generate through shared references too (lets helpers hold
/// strategies by reference).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) * width) >> 64;
                self.start.wrapping_add(offset as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) * width) >> 64;
                self.start().wrapping_add(offset as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        // 2^53 grid over the closed interval; both endpoints reachable.
        let steps = (1u64 << 53) as f64;
        let t = (rng.next_u64() >> 11) as f64 / (steps - 1.0);
        self.start() + t * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A `Vec` of strategies generates element-wise (used by tests that
/// assemble one strategy per index).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// String literals act as generation patterns: a sequence of literal
/// characters and `[...]` classes, each optionally quantified by `{n}`
/// or `{lo,hi}` — the subset of regex syntax the test suites use
/// (e.g. `"[a-f]{1,3}"`).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min_count + rng.below(atom.max_count - atom.min_count + 1);
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min_count: usize,
    max_count: usize,
}

/// Parses the supported pattern subset.
///
/// # Panics
///
/// Panics on malformed or unsupported patterns — a loud failure beats
/// silently generating the wrong distribution.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                loop {
                    let item =
                        chars.next().unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    if item == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi =
                            chars.next().unwrap_or_else(|| panic!("dangling range in {pattern:?}"));
                        assert!(item <= hi, "inverted range in {pattern:?}");
                        set.extend(item..=hi);
                    } else {
                        set.push(item);
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                set
            }
            '\\' => {
                let escaped =
                    chars.next().unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                vec![escaped]
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                panic!("unsupported pattern syntax {c:?} in {pattern:?}")
            }
            literal => vec![literal],
        };
        let (min_count, max_count) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                let d = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min_count <= max_count, "inverted quantifier in {pattern:?}");
        atoms.push(PatternAtom { chars: set, min_count, max_count });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn int_ranges_cover_bounds() {
        let mut rng = TestRng::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..500 {
            let v = (2u32..=4).generate(&mut rng);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = TestRng::new(6);
        for _ in 0..500 {
            let v = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&v));
            let w = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn pattern_with_literals_and_counts() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let s = "x[0-9]{2}y".generate(&mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.starts_with('x') && s.ends_with('y'));
            assert!(s[1..3].chars().all(|c| c.is_ascii_digit()), "{s}");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported pattern syntax")]
    fn unsupported_pattern_syntax_is_loud() {
        let _ = "a+".generate(&mut TestRng::new(0));
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let strategies: Vec<_> = (0..5).map(|i| (i as u64)..(i as u64 + 1)).collect();
        let v = strategies.generate(&mut TestRng::new(8));
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn boxed_strategy_erases_type() {
        let s = (0u8..10).prop_map(|v| v * 2).boxed();
        let v = s.generate(&mut TestRng::new(9));
        assert!(v < 20 && v % 2 == 0);
    }
}
