//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships
//! a small, dependency-free property-test harness exposing the subset of
//! the `proptest` API its test suites use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`;
//! * range, tuple, `Vec<S>` and string-pattern strategies;
//! * `prop::sample::select`, `prop::collection::{vec, btree_set}`,
//!   `prop::bool::ANY`, `prop::num::u8::ANY`;
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros
//!   and [`test_runner::ProptestConfig`].
//!
//! Each property runs `cases` times over a deterministic per-test input
//! stream (xoshiro256++ seeded from the test name and case index), so
//! failures are reproducible run-to-run. There is no shrinking: a failed
//! case reports its case index and message and panics immediately.

pub mod strategy;
pub mod test_runner;

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an arbitrary `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod u8 {
        //! `u8` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for an arbitrary `u8`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random bytes.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u8;
            fn generate(&self, rng: &mut TestRng) -> u8 {
                (rng.next_u64() >> 56) as u8
            }
        }
    }

    pub mod u64 {
        //! `u64` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for an arbitrary `u64`.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random 64-bit values.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn generate(&self, rng: &mut TestRng) -> u64 {
                rng.next_u64()
            }
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among `options`.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice from a non-empty list of options.
    ///
    /// # Panics
    ///
    /// Panics (at generation time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select() requires options");
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A size specification: an exact length or a half-open/inclusive range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` with a target size drawn from `size`. If the element
    /// strategy cannot produce enough distinct values the set is smaller
    /// than the target (mirroring `proptest`'s collision behaviour).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 16 * target + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prop {
    //! The `prop::` path prelude alias (`prop::collection::vec`, …).

    pub use crate::bool;
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

pub mod prelude {
    //! The common imports: `use proptest::prelude::*;`.

    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs one property over `cases` deterministic inputs.
///
/// This is the engine behind [`proptest!`]; `name` seeds the input
/// stream so distinct tests explore distinct sequences.
///
/// # Panics
///
/// Panics on the first failing case, reporting its index and message.
pub fn run_property<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let name_seed = test_runner::hash_name(name);
    for i in 0..config.cases {
        let mut rng =
            test_runner::TestRng::new(name_seed ^ u64::from(i).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not the process) with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u64..17, b in -2.5f64..2.5, c in 1usize..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y)),
        ) {
            prop_assert!(pair.1 >= pair.0);
        }

        #[test]
        fn flat_map_sees_outer_value(
            v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0u8..=255, n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn string_patterns_match_class(s in "[a-f]{1,3}") {
            prop_assert!((1..=3).contains(&s.len()), "{s}");
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)), "{s}");
        }

        #[test]
        fn btree_sets_bounded(set in prop::collection::btree_set(0u8..=255, 0..8)) {
            let set: BTreeSet<u8> = set;
            prop_assert!(set.len() < 8);
        }

        #[test]
        fn select_draws_members(x in prop::sample::select(vec![2, 3, 5, 7])) {
            prop_assert!([2, 3, 5, 7].contains(&x));
        }

        #[test]
        fn early_return_is_allowed(flag in prop::bool::ANY) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::{hash_name, TestRng};
        let strat = prop::collection::vec(0u64..1000, 0..10);
        let a: Vec<_> =
            (0..20).map(|i| strat.generate(&mut TestRng::new(hash_name("t") ^ i))).collect();
        let b: Vec<_> =
            (0..20).map(|i| strat.generate(&mut TestRng::new(hash_name("t") ^ i))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope".to_owned()))
        });
    }
}
