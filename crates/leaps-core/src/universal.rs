//! The universal classifier of paper Section II-B-2: "LEAPS can coalesce
//! all application data from the system event log to learn a universal
//! classifier for testing" (the paper trains application-wise classifiers
//! only "for the convenience of evaluation").
//!
//! One classifier is trained over the pooled training data of several
//! applications' datasets. CFG-guided weights stay *per application* —
//! each mixed log is scored against its own application's benign CFG —
//! and only the statistical model is shared.

use crate::config::{PipelineConfig, WeightMode, WeightPolarity};
use crate::dataset::Dataset;
use crate::metrics::Metrics;
use crate::pipeline::{Method, SvmClassifier};
use leaps_cfg::infer::infer_cfg;
use leaps_cfg::weight::assess_weights;
use leaps_cluster::features::FeatureEncoder;
use leaps_etw::rng::SimRng;
use leaps_svm::cv::{GridSearch, Scoring};
use leaps_svm::data::{Sample, TrainSet};
use leaps_svm::kernel::Kernel;
use leaps_svm::smo::{train as smo_train, SmoParams};
use leaps_trace::partition::PartitionedEvent;

/// A universal (cross-application) SVM-family classifier together with
/// the per-dataset benign test splits used for evaluation.
#[derive(Debug, Clone)]
pub struct UniversalClassifier {
    classifier: SvmClassifier,
}

impl UniversalClassifier {
    /// Trains one classifier over the pooled training data of `datasets`.
    ///
    /// `method` must be [`Method::Svm`] or [`Method::Wsvm`].
    ///
    /// # Panics
    ///
    /// Panics if `datasets` is empty, `method` is not an SVM-family
    /// method, or the pooled training set degenerates.
    #[must_use]
    pub fn train(
        datasets: &[Dataset],
        method: Method,
        config: &PipelineConfig,
        seed: u64,
    ) -> UniversalClassifier {
        assert!(!datasets.is_empty(), "need at least one dataset");
        assert!(
            matches!(method, Method::Svm | Method::Wsvm),
            "universal training supports SVM-family methods"
        );
        config.validate();

        // Per-dataset benign training halves.
        let splits: Vec<(Vec<PartitionedEvent>, Vec<PartitionedEvent>)> =
            datasets.iter().map(|d| d.split_benign(config.benign_train_fraction, seed)).collect();

        // One encoder over everything available at training time.
        let mut fit_events: Vec<&PartitionedEvent> = Vec::new();
        for (d, (train, _)) in datasets.iter().zip(&splits) {
            fit_events.extend(train.iter());
            fit_events.extend(d.mixed.iter());
        }
        let encoder = FeatureEncoder::fit(&fit_events, config.preprocess);

        // Pool weighted samples, dataset by dataset (weights are computed
        // against each application's own benign CFG).
        let mut samples: Vec<Sample> = Vec::new();
        let mut rng = SimRng::new(seed ^ 0x0411);
        for (d, (train, _)) in datasets.iter().zip(&splits) {
            let maliciousness: Box<dyn Fn(u64) -> f64> = if method == Method::Wsvm {
                let bcfg = infer_cfg(train);
                let mcfg = infer_cfg(&d.mixed);
                let weights = match config.weight_mode {
                    WeightMode::AddressSpace => assess_weights(&bcfg.cfg, &mcfg, config.weight),
                    WeightMode::Aligned => leaps_cfg::align::assess_weights_aligned(&bcfg, &mcfg),
                };
                match config.weight_polarity {
                    WeightPolarity::Maliciousness => {
                        Box::new(move |num| weights.maliciousness(num))
                    }
                    WeightPolarity::Benignity => {
                        Box::new(move |num| weights.benignity_or_default(num))
                    }
                }
            } else {
                Box::new(|_| 1.0)
            };

            let train_refs: Vec<&PartitionedEvent> = train.iter().collect();
            let mixed_refs: Vec<&PartitionedEvent> = d.mixed.iter().collect();
            let (benign_points, _) = encoder.encode_sequence(&train_refs);
            let (mixed_points, covers) = encoder.encode_sequence(&mixed_refs);
            for p in &benign_points {
                if rng.chance(config.sample_fraction) {
                    samples.push(Sample::new(p.clone(), 1.0, 1.0));
                }
            }
            let neg_fraction = config.sample_fraction * benign_points.len() as f64
                / mixed_points.len().max(1) as f64;
            for (p, cover) in mixed_points.iter().zip(&covers) {
                if rng.chance(neg_fraction.min(1.0)) {
                    let c = cover.iter().map(|&i| maliciousness(d.mixed[i].num)).sum::<f64>()
                        / cover.len() as f64;
                    samples.push(Sample::new(p.clone(), -1.0, c.max(config.weight_floor)));
                }
            }
        }
        let train_set = TrainSet::new(samples).expect("pooled training set is degenerate");
        let grid = GridSearch {
            lambdas: config.tuning.lambdas.clone(),
            sigma2s: config.tuning.sigma2s.clone(),
            folds: config.tuning.folds,
            seed,
            scoring: Scoring::WeightedBalanced,
        };
        let best = grid.run(&train_set);
        let model = smo_train(
            &train_set,
            Kernel::Gaussian { sigma2: best.sigma2 },
            &SmoParams { lambda: best.lambda, ..Default::default() },
        );
        UniversalClassifier {
            classifier: SvmClassifier { model, encoder, tuned: (best.lambda, best.sigma2) },
        }
    }

    /// Evaluates the universal classifier on one dataset's held-out
    /// benign half and pure-malicious log.
    #[must_use]
    pub fn evaluate(&self, dataset: &Dataset, config: &PipelineConfig, seed: u64) -> Metrics {
        let (_, test) = dataset.split_benign(config.benign_train_fraction, seed);
        crate::pipeline::Classifier::Svm(self.classifier.clone())
            .evaluate(&test, &dataset.malicious)
            .metrics()
    }

    /// The tuned (λ, σ²).
    #[must_use]
    pub fn tuned(&self) -> (f64, f64) {
        self.classifier.tuned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::scenario::{GenParams, Scenario};

    fn datasets() -> Vec<Dataset> {
        ["vim_reverse_tcp", "putty_reverse_https"]
            .iter()
            .map(|name| {
                Dataset::materialize(Scenario::by_name(name).unwrap(), &GenParams::small(), 5)
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn universal_wsvm_trains_and_detects_on_every_member_app() {
        let ds = datasets();
        let config = PipelineConfig::fast();
        let universal = UniversalClassifier::train(&ds, Method::Wsvm, &config, 5);
        for d in &ds {
            let m = universal.evaluate(d, &config, 5);
            assert!(m.acc > 0.55, "{}: {m}", d.scenario.name());
        }
        assert!(universal.tuned().0 > 0.0);
    }

    #[test]
    fn universal_svm_also_trains() {
        let ds = datasets();
        let config = PipelineConfig::fast();
        let universal = UniversalClassifier::train(&ds, Method::Svm, &config, 6);
        let m = universal.evaluate(&ds[0], &config, 6);
        assert!(m.acc > 0.4, "{m}");
    }

    #[test]
    #[should_panic(expected = "SVM-family")]
    fn cgraph_is_rejected() {
        let ds = datasets();
        let _ = UniversalClassifier::train(&ds, Method::CGraph, &PipelineConfig::fast(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one dataset")]
    fn empty_dataset_list_rejected() {
        let _ = UniversalClassifier::train(&[], Method::Wsvm, &PipelineConfig::fast(), 5);
    }
}
