//! Online detection: feed events one at a time, get verdicts as windows
//! complete — how a trained LEAPS classifier is actually deployed against
//! a production event stream (the paper's Testing Phase, incrementalized).

use crate::pipeline::Classifier;
use leaps_cgraph::classify::Decision;
use leaps_trace::partition::PartitionedEvent;
use std::collections::VecDeque;

/// A verdict emitted by the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Sequence number of the newest event covered by this verdict.
    pub last_event: u64,
    /// `true` if the window/event looks benign.
    pub benign: bool,
    /// Method-specific confidence: the SVM decision value or the HMM
    /// log-likelihood ratio (positive = benign); `None` for the
    /// call-graph model, which is purely symbolic.
    pub score: Option<f64>,
}

/// An incremental detector wrapping a trained [`Classifier`].
///
/// * SVM-family and HMM classifiers buffer events and emit one verdict
///   per completed window (size/stride from the classifier's feature
///   encoder configuration);
/// * the call-graph model emits one verdict per event (undecidable events
///   are reported as *not benign* — a deployment treats them as alerts).
#[derive(Debug, Clone)]
pub struct StreamDetector {
    classifier: Classifier,
    /// Rolling window of raw events (needed by the HMM path).
    buffer: VecDeque<PartitionedEvent>,
    /// Rolling window of per-event feature triples (SVM path): each event
    /// is encoded exactly once when it arrives.
    triples: VecDeque<[f64; 3]>,
    window: usize,
    stride: usize,
    filled_once: bool,
    since_last: usize,
}

impl StreamDetector {
    /// Wraps a trained classifier.
    #[must_use]
    pub fn new(classifier: Classifier) -> StreamDetector {
        let (window, stride) = match &classifier {
            Classifier::CGraph(_) => (1, 1),
            Classifier::Svm(svm) => {
                let cfg = svm.encoder.config();
                (cfg.window, cfg.stride)
            }
            Classifier::Hmm(hmm) => {
                let cfg = hmm.encoder_config();
                (cfg.window, cfg.stride)
            }
        };
        StreamDetector {
            classifier,
            buffer: VecDeque::with_capacity(window),
            triples: VecDeque::with_capacity(window),
            window,
            stride,
            filled_once: false,
            since_last: 0,
        }
    }

    /// The window size in events.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Feeds one event; returns a verdict when a window completes.
    pub fn push(&mut self, event: PartitionedEvent) -> Option<Verdict> {
        let num = event.num;
        if let Classifier::CGraph(model) = &self.classifier {
            let decision = model.classify(&event);
            return Some(Verdict {
                last_event: num,
                benign: decision == Decision::Benign,
                score: None,
            });
        }
        if let Classifier::Svm(svm) = &self.classifier {
            self.triples.push_back(svm.encoder.encode(&event));
            if self.triples.len() > self.window {
                self.triples.pop_front();
            }
        }
        self.buffer.push_back(event);
        if self.buffer.len() > self.window {
            self.buffer.pop_front();
        }
        if self.buffer.len() < self.window {
            return None;
        }
        if self.filled_once {
            self.since_last += 1;
            if self.since_last < self.stride {
                return None;
            }
        }
        self.filled_once = true;
        self.since_last = 0;

        let (benign, score) = match &self.classifier {
            Classifier::Svm(svm) => {
                let point: Vec<f64> = self.triples.iter().flatten().copied().collect();
                let value = svm.model.decision(&point);
                (value >= 0.0, Some(value))
            }
            Classifier::Hmm(hmm) => {
                let events: Vec<PartitionedEvent> = self.buffer.iter().cloned().collect();
                let value = hmm.score_events(&events);
                (value >= 0.0, Some(value))
            }
            Classifier::CGraph(_) => unreachable!("handled above"),
        };
        Some(Verdict { last_event: num, benign, score })
    }

    /// Feeds many events, collecting every verdict.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = PartitionedEvent>) -> Vec<Verdict> {
        events.into_iter().filter_map(|e| self.push(e)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::Dataset;
    use crate::pipeline::{train_classifier, Method};
    use leaps_etw::scenario::{GenParams, Scenario};

    fn dataset() -> Dataset {
        Dataset::materialize(Scenario::by_name("vim_reverse_tcp").unwrap(), &GenParams::small(), 5)
            .unwrap()
    }

    #[test]
    fn svm_stream_emits_one_verdict_per_stride() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let window = detector.window();
        let stride = leaps_cluster::features::PreprocessConfig::default().stride;
        let n = 100;
        let verdicts = detector.push_all(test.iter().take(n).cloned());
        let expected = (n - window) / stride + 1;
        assert_eq!(verdicts.len(), expected);
        assert!(verdicts.iter().all(|v| v.score.is_some()));
    }

    #[test]
    fn stream_verdicts_match_batch_evaluation_direction() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let benign_verdicts = detector.push_all(test.iter().cloned());
        let benign_rate = benign_verdicts.iter().filter(|v| v.benign).count() as f64
            / benign_verdicts.len() as f64;

        let clf2 = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector2 = StreamDetector::new(clf2);
        let mal_verdicts = detector2.push_all(d.malicious.iter().cloned());
        let mal_benign_rate =
            mal_verdicts.iter().filter(|v| v.benign).count() as f64 / mal_verdicts.len() as f64;
        assert!(
            benign_rate > mal_benign_rate,
            "benign stream {benign_rate} should look more benign than payload {mal_benign_rate}"
        );
    }

    #[test]
    fn cgraph_stream_is_per_event() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let verdicts = detector.push_all(test.iter().take(50).cloned());
        assert_eq!(verdicts.len(), 50);
        assert!(verdicts.iter().all(|v| v.score.is_none()));
        assert_eq!(verdicts[0].last_event, test[0].num);
    }

    #[test]
    fn hmm_stream_works() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Hmm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let verdicts = detector.push_all(test.iter().take(60).cloned());
        assert!(!verdicts.is_empty());
        assert!(verdicts.iter().all(|v| v.score.is_some()));
    }

    #[test]
    fn no_verdict_before_first_window_fills() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let window = StreamDetector::new(clf.clone()).window();
        let mut detector = StreamDetector::new(clf);
        for e in test.iter().take(window - 1) {
            assert_eq!(detector.push(e.clone()), None);
        }
        assert!(detector.push(test[window - 1].clone()).is_some());
    }
}
