//! Online detection: feed events one at a time, get verdicts as windows
//! complete — how a trained LEAPS classifier is actually deployed against
//! a production event stream (the paper's Testing Phase, incrementalized).

use crate::pipeline::Classifier;
use leaps_cgraph::classify::Decision;
use leaps_trace::partition::PartitionedEvent;
use std::collections::VecDeque;

/// A verdict emitted by the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Sequence number of the newest event covered by this verdict.
    pub last_event: u64,
    /// `true` if the window/event looks benign.
    pub benign: bool,
    /// Method-specific confidence: the SVM decision value or the HMM
    /// log-likelihood ratio (positive = benign); `None` for the
    /// call-graph model, which is purely symbolic.
    pub score: Option<f64>,
    /// `true` when the window behind this verdict is **incomplete**: its
    /// event sequence numbers are not contiguous (events were dropped,
    /// reordered or arrived out of sequence inside the window).
    /// Deployments can treat `benign && degraded` as "benign, but judged
    /// on damaged telemetry" rather than a clean bill of health.
    pub degraded: bool,
}

impl Verdict {
    /// Encodes the verdict as one whitespace-free-value line, the body of
    /// the wire protocol's `VERDICT` reply:
    ///
    /// ```text
    /// num=42 benign=1 score=0.53 degraded=0
    /// ```
    ///
    /// The score is written with Rust's `{:?}` (shortest round-trip
    /// float), or `-` when absent, so [`Verdict::parse_line`] restores
    /// the verdict bit for bit.
    #[must_use]
    pub fn to_line(&self) -> String {
        let score = match self.score {
            Some(s) => format!("{s:?}"),
            None => "-".to_owned(),
        };
        format!(
            "num={} benign={} score={score} degraded={}",
            self.last_event,
            u8::from(self.benign),
            u8::from(self.degraded)
        )
    }

    /// Parses a line produced by [`Verdict::to_line`].
    ///
    /// Returns `None` on any missing field, unknown key, or malformed
    /// value — wire damage must never turn into a wrong verdict.
    #[must_use]
    pub fn parse_line(line: &str) -> Option<Verdict> {
        let mut num = None;
        let mut benign = None;
        let mut score: Option<Option<f64>> = None;
        let mut degraded = None;
        for token in line.split_ascii_whitespace() {
            let (key, value) = token.split_once('=')?;
            match key {
                "num" => num = Some(value.parse().ok()?),
                "benign" => benign = Some(parse_wire_bool(value)?),
                "score" => {
                    score = Some(if value == "-" { None } else { Some(value.parse().ok()?) });
                }
                "degraded" => degraded = Some(parse_wire_bool(value)?),
                _ => return None,
            }
        }
        Some(Verdict { last_event: num?, benign: benign?, score: score?, degraded: degraded? })
    }
}

fn parse_wire_bool(value: &str) -> Option<bool> {
    match value {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Telemetry-quality counters accumulated by a [`StreamDetector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Events accepted into the detector.
    pub accepted: usize,
    /// Events discarded as immediate duplicates of the previous record.
    pub duplicates: usize,
    /// Forward sequence gaps observed (`num` jumped past `last + 1`).
    pub gaps: usize,
    /// Total sequence numbers missing inside those gaps.
    pub missing: u64,
    /// Events that arrived behind the highest sequence number seen.
    pub reordered: usize,
    /// Verdicts emitted with the `degraded` flag set.
    pub degraded_verdicts: usize,
}

/// An incremental detector wrapping a trained [`Classifier`].
///
/// * SVM-family and HMM classifiers buffer events and emit one verdict
///   per completed window (size/stride from the classifier's feature
///   encoder configuration);
/// * the call-graph model emits one verdict per event (undecidable events
///   are reported as *not benign* — a deployment treats them as alerts).
///
/// # Degraded telemetry
///
/// The detector does not trust sequence continuity. Immediate duplicates
/// are discarded; gaps and reordered arrivals are counted in
/// [`StreamStats`] and every verdict whose window spans a discontinuity
/// carries [`Verdict::degraded`]. The window **resynchronizes by
/// sliding**: once `window` contiguous post-gap events have arrived, the
/// flag clears on its own. After a known outage, [`StreamDetector::resync`]
/// hard-resets the window instead.
#[derive(Debug, Clone)]
pub struct StreamDetector {
    classifier: Classifier,
    /// Rolling window of raw events (needed by the HMM path).
    buffer: VecDeque<PartitionedEvent>,
    /// Rolling window of per-event feature triples (SVM path): each event
    /// is encoded exactly once when it arrives.
    triples: VecDeque<[f64; 3]>,
    /// Sequence numbers of the buffered events, for gap detection.
    nums: VecDeque<u64>,
    /// Highest sequence number accepted so far (gap/reorder detection).
    last_num: Option<u64>,
    /// Sequence number of the most recently accepted event (duplicate
    /// detection — a duplicate is an immediate re-send, so it must be
    /// compared against its neighbour, not the stream maximum).
    prev_num: Option<u64>,
    stats: StreamStats,
    window: usize,
    stride: usize,
    filled_once: bool,
    since_last: usize,
}

impl StreamDetector {
    /// Wraps a trained classifier.
    #[must_use]
    pub fn new(classifier: Classifier) -> StreamDetector {
        let (window, stride) = match &classifier {
            Classifier::CGraph(_) => (1, 1),
            Classifier::Svm(svm) => {
                let cfg = svm.encoder.config();
                (cfg.window, cfg.stride)
            }
            Classifier::Hmm(hmm) => {
                let cfg = hmm.encoder_config();
                (cfg.window, cfg.stride)
            }
        };
        StreamDetector {
            classifier,
            buffer: VecDeque::with_capacity(window),
            triples: VecDeque::with_capacity(window),
            nums: VecDeque::with_capacity(window),
            last_num: None,
            prev_num: None,
            stats: StreamStats::default(),
            window,
            stride,
            filled_once: false,
            since_last: 0,
        }
    }

    /// The window size in events.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Telemetry-quality counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Hard-resets the rolling window after a known telemetry outage.
    ///
    /// The buffered events are discarded and the next verdict waits for a
    /// full fresh window. Cumulative [`StreamStats`] and the last seen
    /// sequence number are kept, so duplicates of pre-outage events are
    /// still recognized.
    pub fn resync(&mut self) {
        self.buffer.clear();
        self.triples.clear();
        self.nums.clear();
        self.filled_once = false;
        self.since_last = 0;
    }

    /// Feeds one event; returns a verdict when a window completes.
    ///
    /// Immediate duplicates (same sequence number as the newest accepted
    /// event) are dropped and counted; gaps and out-of-order arrivals are
    /// counted and mark the verdicts whose window spans them as
    /// [`Verdict::degraded`].
    pub fn push(&mut self, event: PartitionedEvent) -> Option<Verdict> {
        let num = event.num;
        if self.prev_num == Some(num) {
            self.stats.duplicates += 1;
            return None;
        }
        match self.last_num {
            Some(last) if num < last => {
                self.stats.reordered += 1;
            }
            Some(last) => {
                if num > last + 1 {
                    self.stats.gaps += 1;
                    self.stats.missing += num - last - 1;
                }
                self.last_num = Some(num);
            }
            None => self.last_num = Some(num),
        }
        self.prev_num = Some(num);
        self.stats.accepted += 1;
        if let Classifier::CGraph(model) = &self.classifier {
            let decision = model.classify(&event);
            return Some(Verdict {
                last_event: num,
                benign: decision == Decision::Benign,
                score: None,
                degraded: false,
            });
        }
        if let Classifier::Svm(svm) = &self.classifier {
            self.triples.push_back(svm.encoder.encode(&event));
            if self.triples.len() > self.window {
                self.triples.pop_front();
            }
        }
        self.buffer.push_back(event);
        self.nums.push_back(num);
        if self.buffer.len() > self.window {
            self.buffer.pop_front();
            self.nums.pop_front();
        }
        if self.buffer.len() < self.window {
            return None;
        }
        if self.filled_once {
            self.since_last += 1;
            if self.since_last < self.stride {
                return None;
            }
        }
        self.filled_once = true;
        self.since_last = 0;

        let degraded = self.nums.iter().zip(self.nums.iter().skip(1)).any(|(a, b)| *b != *a + 1);
        if degraded {
            self.stats.degraded_verdicts += 1;
        }
        let (benign, score) = match &self.classifier {
            Classifier::Svm(svm) => {
                let point: Vec<f64> = self.triples.iter().flatten().copied().collect();
                let value = svm.model.decision(&point);
                (value >= 0.0, Some(value))
            }
            Classifier::Hmm(hmm) => {
                let events: Vec<PartitionedEvent> = self.buffer.iter().cloned().collect();
                let value = hmm.score_events(&events);
                (value >= 0.0, Some(value))
            }
            Classifier::CGraph(_) => unreachable!("handled above"),
        };
        Some(Verdict { last_event: num, benign, score, degraded })
    }

    /// Feeds many events, appending every verdict to `out`.
    ///
    /// This is the allocation-free hot path shared by [`push_all`] and
    /// the `leaps-serve` session drain loop: the caller owns (and
    /// reuses) the output buffer across batches.
    ///
    /// [`push_all`]: StreamDetector::push_all
    pub fn push_all_into(
        &mut self,
        events: impl IntoIterator<Item = PartitionedEvent>,
        out: &mut Vec<Verdict>,
    ) {
        for event in events {
            if let Some(verdict) = self.push(event) {
                out.push(verdict);
            }
        }
    }

    /// Feeds many events, collecting every verdict.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = PartitionedEvent>) -> Vec<Verdict> {
        let mut out = Vec::new();
        self.push_all_into(events, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::Dataset;
    use crate::pipeline::{train_classifier, Method};
    use leaps_etw::scenario::{GenParams, Scenario};

    fn dataset() -> Dataset {
        Dataset::materialize(Scenario::by_name("vim_reverse_tcp").unwrap(), &GenParams::small(), 5)
            .unwrap()
    }

    #[test]
    fn svm_stream_emits_one_verdict_per_stride() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let window = detector.window();
        let stride = leaps_cluster::features::PreprocessConfig::default().stride;
        let n = 100;
        let verdicts = detector.push_all(test.iter().take(n).cloned());
        let expected = (n - window) / stride + 1;
        assert_eq!(verdicts.len(), expected);
        assert!(verdicts.iter().all(|v| v.score.is_some()));
    }

    #[test]
    fn stream_verdicts_match_batch_evaluation_direction() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let benign_verdicts = detector.push_all(test.iter().cloned());
        let benign_rate = benign_verdicts.iter().filter(|v| v.benign).count() as f64
            / benign_verdicts.len() as f64;

        let clf2 = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector2 = StreamDetector::new(clf2);
        let mal_verdicts = detector2.push_all(d.malicious.iter().cloned());
        let mal_benign_rate =
            mal_verdicts.iter().filter(|v| v.benign).count() as f64 / mal_verdicts.len() as f64;
        assert!(
            benign_rate > mal_benign_rate,
            "benign stream {benign_rate} should look more benign than payload {mal_benign_rate}"
        );
    }

    #[test]
    fn cgraph_stream_is_per_event() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let verdicts = detector.push_all(test.iter().take(50).cloned());
        assert_eq!(verdicts.len(), 50);
        assert!(verdicts.iter().all(|v| v.score.is_none()));
        assert_eq!(verdicts[0].last_event, test[0].num);
    }

    #[test]
    fn hmm_stream_works() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Hmm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let verdicts = detector.push_all(test.iter().take(60).cloned());
        assert!(!verdicts.is_empty());
        assert!(verdicts.iter().all(|v| v.score.is_some()));
    }

    #[test]
    fn gap_marks_verdicts_degraded_until_window_slides_past() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let window = detector.window();
        // Contiguous events (renumbered), with one dropped in the middle.
        let mut events: Vec<PartitionedEvent> = d.benign.iter().take(4 * window).cloned().collect();
        for (i, e) in events.iter_mut().enumerate() {
            e.num = i as u64;
        }
        let cut = 2 * window;
        events.remove(cut);
        let verdicts = detector.push_all(events);
        assert!(verdicts.iter().any(|v| v.degraded), "gap never flagged");
        assert!(!verdicts.first().unwrap().degraded, "pre-gap window clean");
        assert!(
            !verdicts.last().unwrap().degraded,
            "window should resynchronize once it slides past the gap"
        );
        let stats = detector.stats();
        assert_eq!(stats.gaps, 1);
        assert_eq!(stats.missing, 1);
        assert!(stats.degraded_verdicts > 0);
    }

    #[test]
    fn duplicates_are_dropped_and_counted() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let window = detector.window();
        let mut events: Vec<PartitionedEvent> = Vec::new();
        for (i, e) in d.benign.iter().take(window).cloned().enumerate() {
            let mut e = e;
            e.num = i as u64;
            events.push(e.clone());
            events.push(e); // immediate duplicate of every record
        }
        let verdicts = detector.push_all(events);
        let stats = detector.stats();
        assert_eq!(stats.duplicates, window);
        assert_eq!(stats.accepted, window);
        assert_eq!(verdicts.len(), 1, "duplicates must not advance the window");
        assert!(!verdicts[0].degraded, "deduplicated stream is contiguous");
    }

    #[test]
    fn reordered_arrivals_are_counted_and_flagged() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let window = detector.window();
        let mut events: Vec<PartitionedEvent> = d.benign.iter().take(window).cloned().collect();
        for (i, e) in events.iter_mut().enumerate() {
            e.num = i as u64;
        }
        events.swap(window / 2, window / 2 + 1);
        let verdicts = detector.push_all(events);
        assert_eq!(detector.stats().reordered, 1);
        assert!(verdicts[0].degraded, "swapped pair breaks contiguity");
    }

    #[test]
    fn resync_clears_window_but_keeps_stats() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let window = detector.window();
        let verdicts = detector.push_all(test.iter().take(window).cloned());
        assert!(!verdicts.is_empty());
        let accepted_before = detector.stats().accepted;
        detector.resync();
        // After resync a fresh full window is required before any verdict.
        for e in test.iter().skip(window).take(window - 1) {
            assert_eq!(detector.push(e.clone()), None);
        }
        assert!(detector.push(test[2 * window - 1].clone()).is_some());
        assert!(detector.stats().accepted > accepted_before, "stats survive resync");
    }

    #[test]
    fn cgraph_verdicts_are_never_degraded() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut detector = StreamDetector::new(clf);
        let mut events: Vec<PartitionedEvent> = test.iter().take(20).cloned().collect();
        for (i, e) in events.iter_mut().enumerate() {
            e.num = (i * 3) as u64; // gaps everywhere
        }
        let verdicts = detector.push_all(events);
        assert_eq!(verdicts.len(), 20);
        assert!(verdicts.iter().all(|v| !v.degraded));
        assert!(detector.stats().gaps > 0);
    }

    #[test]
    fn verdict_line_round_trips_exactly() {
        let verdicts = [
            Verdict { last_event: 42, benign: true, score: Some(0.53), degraded: false },
            Verdict {
                last_event: u64::MAX,
                benign: false,
                score: Some(-1.234_567_890_123_456_7e-300),
                degraded: true,
            },
            Verdict { last_event: 0, benign: false, score: None, degraded: false },
            Verdict { last_event: 7, benign: true, score: Some(f64::INFINITY), degraded: true },
        ];
        for v in &verdicts {
            let line = v.to_line();
            assert!(!line.contains('\n'));
            assert_eq!(Verdict::parse_line(&line).as_ref(), Some(v), "round-trip of {line:?}");
        }
    }

    #[test]
    fn verdict_parse_rejects_damage() {
        let good = Verdict { last_event: 9, benign: true, score: Some(1.5), degraded: false };
        let line = good.to_line();
        assert!(Verdict::parse_line("").is_none(), "all fields required");
        assert!(Verdict::parse_line("num=9 benign=1 score=1.5").is_none(), "missing field");
        assert!(Verdict::parse_line(&format!("{line} extra=1")).is_none(), "unknown key");
        assert!(Verdict::parse_line(&line.replace("benign=1", "benign=yes")).is_none());
        assert!(Verdict::parse_line(&line.replace("num=9", "num=nine")).is_none());
        assert!(Verdict::parse_line(&line.replace("score=1.5", "score=")).is_none());
    }

    #[test]
    fn push_all_into_matches_push_all_and_appends() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let mut a = StreamDetector::new(clf.clone());
        let mut b = StreamDetector::new(clf);
        let expected = a.push_all(test.iter().take(80).cloned());
        let sentinel =
            Verdict { last_event: u64::MAX, benign: false, score: None, degraded: false };
        let mut out = vec![sentinel.clone()];
        b.push_all_into(test.iter().take(80).cloned(), &mut out);
        assert_eq!(out[0], sentinel, "existing contents are preserved");
        assert_eq!(&out[1..], &expected[..]);
    }

    #[test]
    fn no_verdict_before_first_window_fills() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 5);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 5);
        let window = StreamDetector::new(clf.clone()).window();
        let mut detector = StreamDetector::new(clf);
        for e in test.iter().take(window - 1) {
            assert_eq!(detector.push(e.clone()), None);
        }
        assert!(detector.push(test[window - 1].clone()).is_some());
    }
}
