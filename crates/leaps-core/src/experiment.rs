//! The evaluation harness of Section V: run a scenario with a method,
//! average metrics over several randomized runs — supervised, so a
//! panic, error or deadline in one (scenario, method) cell never throws
//! away the rest of a sweep.
//!
//! A sweep ([`Experiment::run_sweep`]) runs every cell under
//! `catch_unwind` with an optional wall-clock deadline, records each
//! cell's outcome in a `LEAPS-SWEEP v1` manifest rewritten atomically
//! after every cell, and emits partial results instead of aborting. The
//! manifest doubles as resume state: a restarted sweep skips cells the
//! previous attempt completed (their metrics round-trip exactly — floats
//! are written with `{:?}`), which is what makes sharded, deadline-bound
//! sweeps across flaky machines practical.

use crate::config::PipelineConfig;
use crate::dataset::Dataset;
use crate::error::LeapsError;
use crate::metrics::Metrics;
use crate::persist::{write_atomic, ModelError};
use crate::pipeline::{try_train_classifier, Method};
use leaps_etw::rng::splitmix64;
use leaps_etw::scenario::{GenParams, Scenario};
use std::collections::HashMap;
use std::path::PathBuf;

/// Experiment parameters: which dataset sizes, how many randomized runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Log-generation sizes.
    pub gen: GenParams,
    /// Pipeline settings.
    pub pipeline: PipelineConfig,
    /// Number of randomized runs to average ("we average all results over
    /// 10 runs").
    pub runs: usize,
    /// Master seed; per-run seeds are derived with SplitMix64.
    pub seed: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            gen: GenParams::paper(),
            pipeline: PipelineConfig::default(),
            runs: 10,
            seed: 0x1ea5,
        }
    }
}

impl Experiment {
    /// A small, fast experiment for tests.
    #[must_use]
    pub fn fast() -> Self {
        Experiment {
            gen: GenParams::small(),
            pipeline: PipelineConfig::fast(),
            runs: 2,
            seed: 0x1ea5,
        }
    }

    /// Runs `scenario` with `method`, averaging metrics over the
    /// configured number of runs. The dataset is regenerated per run with
    /// a derived seed, covering both data randomness and split/sampling
    /// randomness.
    ///
    /// # Errors
    ///
    /// Propagates [`LeapsError`] from dataset materialization or training
    /// (e.g. degraded telemetry left too few events).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn run(&self, scenario: Scenario, method: Method) -> Result<Metrics, LeapsError> {
        assert!(self.runs > 0, "need at least one run");
        let mut state = self.seed;
        let mut per_run = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            let run_seed = splitmix64(&mut state);
            per_run.push(self.run_once(scenario, method, run_seed)?);
        }
        Ok(Metrics::mean(&per_run))
    }

    /// Runs a single train/test round with an explicit seed.
    ///
    /// # Errors
    ///
    /// Propagates [`LeapsError`] from dataset materialization or training.
    pub fn run_once(
        &self,
        scenario: Scenario,
        method: Method,
        seed: u64,
    ) -> Result<Metrics, LeapsError> {
        let dataset = Dataset::materialize(scenario, &self.gen, seed)?;
        let (train, test) = dataset.split_benign(self.pipeline.benign_train_fraction, seed);
        let classifier =
            try_train_classifier(method, &train, &dataset.mixed, &self.pipeline, seed)?;
        Ok(classifier.evaluate(&test, &dataset.malicious).metrics())
    }

    /// Runs all three methods on a scenario (one Figure 6/7 group),
    /// supervised: a method that errors or panics yields its
    /// [`CellOutcome`] in place, and the remaining methods still run —
    /// one bad method no longer aborts the whole group.
    #[must_use]
    pub fn run_all_methods(&self, scenario: Scenario) -> [(Method, CellOutcome); 3] {
        Method::ALL.map(|method| (method, self.run_cell(scenario, method, None, false)))
    }

    /// Runs one supervised (scenario, method) cell: the configured runs
    /// under `catch_unwind`, cooperatively checking `deadline` between
    /// runs. `chaos` injects a panic into the first run (fault-injection
    /// hook for tests and the CI sweep smoke).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0` (a configuration bug; cell work itself is
    /// contained).
    #[must_use]
    pub fn run_cell(
        &self,
        scenario: Scenario,
        method: Method,
        deadline: Option<u64>,
        chaos: bool,
    ) -> CellOutcome {
        assert!(self.runs > 0, "need at least one run");
        let mut state = self.seed;
        let mut per_run = Vec::with_capacity(self.runs);
        for run in 0..self.runs {
            let run_seed = splitmix64(&mut state);
            if deadline.is_some_and(|d| leaps_obs::now_micros() >= d) {
                return CellOutcome::Deadline;
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                assert!(
                    !(chaos && run == 0),
                    "chaos: injected panic in cell {}:{}",
                    scenario.name(),
                    method.label()
                );
                self.run_once(scenario, method, run_seed)
            }));
            match result {
                Ok(Ok(metrics)) => per_run.push(metrics),
                Ok(Err(e)) => return CellOutcome::Error(e.to_string()),
                Err(payload) => return CellOutcome::Panicked(panic_message(payload.as_ref())),
            }
        }
        CellOutcome::Ok(Metrics::mean(&per_run))
    }

    /// Runs the full (scenario × method) grid under supervision: each
    /// cell is timed, contained and recorded; the manifest (if
    /// configured) is rewritten atomically after every cell, so a killed
    /// sweep restarted with [`SweepOptions::resume`] skips everything
    /// already completed.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures abort the sweep: an unreadable or
    /// corrupt resume manifest, or a manifest write error. Cell failures
    /// never do — they are recorded as their cell's outcome.
    pub fn run_sweep(
        &self,
        scenarios: &[Scenario],
        methods: &[Method],
        options: &SweepOptions,
    ) -> Result<SweepReport, LeapsError> {
        let deadline = options
            .deadline_secs
            .map(|s| leaps_obs::now_micros().saturating_add(s.saturating_mul(1_000_000)));
        let mut completed: HashMap<(String, &'static str), CellReport> = HashMap::new();
        if options.resume {
            if let Some(path) = options.manifest.as_ref().filter(|p| p.exists()) {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| LeapsError::io(path.display().to_string(), &e))?;
                let prior = parse_manifest(&text).map_err(|inner| {
                    LeapsError::Model(ModelError::InFile {
                        path: path.display().to_string(),
                        inner: Box::new(inner),
                    })
                })?;
                for cell in prior.cells {
                    // Only finished work is worth skipping; failed or
                    // deadline cells get a fresh chance.
                    if matches!(cell.outcome, CellOutcome::Ok(_)) {
                        completed.insert((cell.scenario.clone(), cell.method.label()), cell);
                    }
                }
            }
        }
        let mut report = SweepReport::default();
        for &scenario in scenarios {
            for &method in methods {
                let key = (scenario.name(), method.label());
                let cell = if let Some(prev) = completed.get(&key) {
                    prev.clone()
                } else {
                    let chaos = options
                        .chaos_cell
                        .as_deref()
                        .is_some_and(|spec| chaos_matches(spec, &key.0, method));
                    let start_us = leaps_obs::now_micros();
                    let cell_span = leaps_obs::span!("sweep.cell");
                    let outcome = self.run_cell(scenario, method, deadline, chaos);
                    drop(cell_span);
                    leaps_obs::registry().counter(&format!("sweep.cells.{}", outcome.tag())).inc();
                    CellReport {
                        scenario: key.0,
                        method,
                        outcome,
                        secs: leaps_obs::now_micros().saturating_sub(start_us) as f64 / 1e6,
                    }
                };
                report.cells.push(cell);
                if let Some(path) = &options.manifest {
                    write_atomic(path, &render_manifest(&report))?;
                }
            }
        }
        Ok(report)
    }
}

/// Extracts a printable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// `true` when `spec` (`"scenario:METHOD"`) names this cell.
fn chaos_matches(spec: &str, scenario: &str, method: Method) -> bool {
    spec.split_once(':')
        .is_some_and(|(s, m)| s == scenario && Method::from_label(m) == Some(method))
}

// --------------------------------------------------------- sweep reports

/// Outcome of one supervised (scenario, method) sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// All runs completed; the averaged metrics.
    Ok(Metrics),
    /// Training or evaluation returned a [`LeapsError`].
    Error(String),
    /// A run panicked; the payload message.
    Panicked(String),
    /// The sweep deadline expired before this cell could run (or finish
    /// its first run).
    Deadline,
}

impl CellOutcome {
    /// The manifest tag for this outcome.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Error(_) => "error",
            CellOutcome::Panicked(_) => "panicked",
            CellOutcome::Deadline => "deadline",
        }
    }

    /// The metrics, when the cell completed.
    #[must_use]
    pub fn metrics(&self) -> Option<Metrics> {
        match self {
            CellOutcome::Ok(m) => Some(*m),
            _ => None,
        }
    }
}

/// One recorded sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Scenario (dataset) name.
    pub scenario: String,
    /// Detection method.
    pub method: Method,
    /// What happened.
    pub outcome: CellOutcome,
    /// Wall-clock seconds the cell took (0 for skipped/deadline cells).
    pub secs: f64,
}

/// Supervision options for [`Experiment::run_sweep`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Wall-clock budget for the whole sweep; cells that cannot start
    /// (or continue) before it expires are recorded as
    /// [`CellOutcome::Deadline`].
    pub deadline_secs: Option<u64>,
    /// Manifest path, rewritten atomically after every cell.
    pub manifest: Option<PathBuf>,
    /// Skip cells the manifest already records as ok.
    pub resume: bool,
    /// Fault injection: `"scenario:METHOD"` names one cell whose first
    /// run panics (exercised by tests and the CI sweep smoke).
    pub chaos_cell: Option<String>,
}

/// The outcome of a supervised sweep: one report per (scenario, method)
/// cell, in sweep order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Per-cell reports.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// `(ok, error, panicked, deadline)` cell counts.
    #[must_use]
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for cell in &self.cells {
            match cell.outcome {
                CellOutcome::Ok(_) => c.0 += 1,
                CellOutcome::Error(_) => c.1 += 1,
                CellOutcome::Panicked(_) => c.2 += 1,
                CellOutcome::Deadline => c.3 += 1,
            }
        }
        c
    }

    /// Process exit code classifying the sweep: 0 all ok, 8 only
    /// deadline-skipped cells (partial but healthy — resume to finish),
    /// 9 at least one cell errored or panicked.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        let (_, errors, panics, deadlines) = self.counts();
        if errors + panics > 0 {
            9
        } else if deadlines > 0 {
            8
        } else {
            0
        }
    }
}

/// Magic first line of a sweep manifest.
pub const SWEEP_HEADER: &str = "# LEAPS-SWEEP v1";

/// Serializes a sweep report to the manifest format. Metrics use `{:?}`
/// floats (exact round-trip); failure messages are flattened to one
/// line.
#[must_use]
pub fn render_manifest(report: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str(SWEEP_HEADER);
    out.push('\n');
    for cell in &report.cells {
        out.push_str(&format!(
            "cell {} {} {} {:?}",
            cell.scenario,
            cell.method.label(),
            cell.outcome.tag(),
            cell.secs
        ));
        match &cell.outcome {
            CellOutcome::Ok(m) => {
                out.push_str(&format!(
                    " {:?} {:?} {:?} {:?} {:?}",
                    m.acc, m.ppv, m.tpr, m.tnr, m.npv
                ));
            }
            CellOutcome::Error(msg) | CellOutcome::Panicked(msg) => {
                out.push(' ');
                out.push_str(&msg.replace('\n', "; "));
            }
            CellOutcome::Deadline => {}
        }
        out.push('\n');
    }
    out
}

/// Parses a sweep manifest back into a report.
///
/// # Errors
///
/// [`ModelError`] on malformed input.
pub fn parse_manifest(text: &str) -> Result<SweepReport, ModelError> {
    let mut lines = text.lines();
    if lines.next() != Some(SWEEP_HEADER) {
        return Err(ModelError::BadHeader);
    }
    let bad = |line: usize, reason: String| ModelError::BadRecord { line, reason };
    let mut report = SweepReport::default();
    for (i, line) in lines.enumerate() {
        let line_no = i + 2;
        let rest = line
            .strip_prefix("cell ")
            .ok_or_else(|| bad(line_no, format!("expected `cell ...`, got {line:?}")))?;
        let mut words = rest.splitn(4, ' ');
        let (Some(scenario), Some(method), Some(tag), detail) =
            (words.next(), words.next(), words.next(), words.next())
        else {
            return Err(bad(line_no, "cell needs scenario, method and outcome".into()));
        };
        let method = Method::from_label(method)
            .ok_or_else(|| bad(line_no, format!("unknown method {method:?}")))?;
        let detail = detail.unwrap_or("");
        let mut detail_words = detail.splitn(2, ' ');
        let secs: f64 = detail_words
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| bad(line_no, "cell needs a duration".into()))?
            .parse()
            .map_err(|_| bad(line_no, format!("invalid duration in {detail:?}")))?;
        let payload = detail_words.next().unwrap_or("");
        let outcome = match tag {
            "ok" => {
                let values: Result<Vec<f64>, _> =
                    payload.split_whitespace().map(str::parse).collect();
                let values =
                    values.map_err(|_| bad(line_no, format!("invalid metrics {payload:?}")))?;
                let [acc, ppv, tpr, tnr, npv] = values.as_slice() else {
                    return Err(bad(line_no, format!("ok cell needs 5 metrics, got {payload:?}")));
                };
                CellOutcome::Ok(Metrics { acc: *acc, ppv: *ppv, tpr: *tpr, tnr: *tnr, npv: *npv })
            }
            "error" => CellOutcome::Error(payload.to_owned()),
            "panicked" => CellOutcome::Panicked(payload.to_owned()),
            "deadline" => CellOutcome::Deadline,
            other => return Err(bad(line_no, format!("unknown outcome {other:?}"))),
        };
        report.cells.push(CellReport { scenario: scenario.to_owned(), method, outcome, secs });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_experiment_runs_and_averages() {
        let exp = Experiment::fast();
        let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
        let m = exp.run(scenario, Method::Wsvm).unwrap();
        assert!(m.acc > 0.5, "{m}");
        assert!(m.acc <= 1.0);
    }

    #[test]
    fn run_is_deterministic() {
        let exp = Experiment::fast();
        let scenario = Scenario::by_name("putty_reverse_https_online").unwrap();
        let a = exp.run(scenario, Method::CGraph).unwrap();
        let b = exp.run(scenario, Method::CGraph).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_results() {
        let mut exp = Experiment::fast();
        let scenario = Scenario::by_name("vim_codeinject").unwrap();
        let a = exp.run(scenario, Method::Svm).unwrap();
        exp.seed = 99;
        let b = exp.run(scenario, Method::Svm).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let exp = Experiment { runs: 0, ..Experiment::fast() };
        let _ = exp.run(Scenario::by_name("vim_reverse_tcp").unwrap(), Method::Wsvm);
    }

    /// An experiment whose SVM-family cells fail (too few events to
    /// coalesce a single window) while CGraph still trains.
    fn starved() -> Experiment {
        Experiment {
            gen: GenParams {
                benign_events: 12,
                mixed_events: 12,
                malicious_events: 8,
                benign_ratio: 0.5,
            },
            ..Experiment::fast()
        }
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("leaps-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_all_methods_captures_per_method_errors() {
        // Regression: the first failing method used to abort the whole
        // group with `?`, discarding every other method's result.
        let exp = starved();
        let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
        let results = exp.run_all_methods(scenario);
        assert_eq!(results.len(), 3);
        let cgraph = &results[0];
        assert!(matches!(cgraph.1, CellOutcome::Ok(_)), "{:?}", cgraph);
        for (method, outcome) in &results[1..] {
            assert!(
                matches!(outcome, CellOutcome::Error(msg) if msg.contains("need at least")),
                "{method:?}: {outcome:?}"
            );
        }
    }

    #[test]
    fn sweep_with_panicking_cell_completes_the_rest() {
        let exp = Experiment::fast();
        let scenarios = [
            Scenario::by_name("vim_reverse_tcp").unwrap(),
            Scenario::by_name("vim_codeinject").unwrap(),
        ];
        let dir = scratch("chaos");
        let options = SweepOptions {
            manifest: Some(dir.join("sweep.manifest")),
            chaos_cell: Some("vim_reverse_tcp:CGraph".into()),
            ..SweepOptions::default()
        };
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let report = exp.run_sweep(&scenarios, &[Method::CGraph, Method::Wsvm], &options);
        std::panic::set_hook(hook);
        let report = report.unwrap();
        assert_eq!(report.cells.len(), 4);
        let (ok, errors, panics, deadlines) = report.counts();
        assert_eq!((ok, errors, panics, deadlines), (3, 0, 1, 0), "{report:?}");
        assert_eq!(report.exit_code(), 9);
        let chaotic = &report.cells[0];
        assert!(
            matches!(&chaotic.outcome, CellOutcome::Panicked(msg) if msg.contains("chaos")),
            "{chaotic:?}"
        );
        // The manifest on disk records all four cells and parses back.
        let text = std::fs::read_to_string(dir.join("sweep.manifest")).unwrap();
        let parsed = parse_manifest(&text).unwrap();
        assert_eq!(parsed, report);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn expired_deadline_marks_cells_and_resume_finishes_them() {
        let exp = Experiment::fast();
        let scenarios = [Scenario::by_name("vim_reverse_tcp").unwrap()];
        let dir = scratch("deadline");
        let manifest = dir.join("sweep.manifest");
        // Deadline 0: every cell is skipped as deadline before starting.
        let options = SweepOptions {
            deadline_secs: Some(0),
            manifest: Some(manifest.clone()),
            ..SweepOptions::default()
        };
        let report = exp.run_sweep(&scenarios, &Method::ALL, &options).unwrap();
        assert_eq!(report.counts(), (0, 0, 0, 3));
        assert_eq!(report.exit_code(), 8);
        // Resume without a deadline: all cells now complete.
        let options = SweepOptions {
            manifest: Some(manifest.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        let report = exp.run_sweep(&scenarios, &Method::ALL, &options).unwrap();
        assert_eq!(report.counts(), (3, 0, 0, 0));
        assert_eq!(report.exit_code(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_skips_completed_cells_with_identical_metrics() {
        let exp = Experiment::fast();
        let scenarios = [Scenario::by_name("vim_reverse_tcp").unwrap()];
        let dir = scratch("resume");
        let manifest = dir.join("sweep.manifest");
        let options = SweepOptions { manifest: Some(manifest.clone()), ..SweepOptions::default() };
        let first = exp.run_sweep(&scenarios, &Method::ALL, &options).unwrap();
        let options = SweepOptions {
            manifest: Some(manifest.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        let second = exp.run_sweep(&scenarios, &Method::ALL, &options).unwrap();
        // Identical including timings: the cells were loaded, not re-run.
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected_on_resume() {
        let exp = Experiment::fast();
        let dir = scratch("corrupt");
        let manifest = dir.join("sweep.manifest");
        std::fs::write(&manifest, "# LEAPS-SWEEP v1\nnot a cell\n").unwrap();
        let options = SweepOptions {
            manifest: Some(manifest.clone()),
            resume: true,
            ..SweepOptions::default()
        };
        let err = exp
            .run_sweep(&[Scenario::by_name("vim_reverse_tcp").unwrap()], &Method::ALL, &options)
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_roundtrips_every_outcome() {
        let report = SweepReport {
            cells: vec![
                CellReport {
                    scenario: "vim_reverse_tcp".into(),
                    method: Method::Wsvm,
                    outcome: CellOutcome::Ok(Metrics {
                        acc: 0.875,
                        ppv: 1.0 / 3.0,
                        tpr: 0.0,
                        tnr: 1.0,
                        npv: 0.6,
                    }),
                    secs: 1.25,
                },
                CellReport {
                    scenario: "a".into(),
                    method: Method::CGraph,
                    outcome: CellOutcome::Error("data error: need at least 10 events".into()),
                    secs: 0.5,
                },
                CellReport {
                    scenario: "b".into(),
                    method: Method::Svm,
                    outcome: CellOutcome::Panicked("multi\nline".replace('\n', "; ")),
                    secs: 0.0,
                },
                CellReport {
                    scenario: "c".into(),
                    method: Method::Hmm,
                    outcome: CellOutcome::Deadline,
                    secs: 0.0,
                },
            ],
        };
        let text = render_manifest(&report);
        assert!(text.starts_with(SWEEP_HEADER));
        assert_eq!(parse_manifest(&text).unwrap(), report);
        // Malformed inputs are diagnosed.
        assert!(parse_manifest("").is_err());
        assert!(parse_manifest("# LEAPS-SWEEP v1\ncell x Wat ok 0.0\n").is_err());
        assert!(parse_manifest("# LEAPS-SWEEP v1\ncell x WSVM ok 0.0 1.0\n").is_err());
    }
}
