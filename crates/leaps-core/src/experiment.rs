//! The evaluation harness of Section V: run a scenario with a method,
//! average metrics over several randomized runs.

use crate::config::PipelineConfig;
use crate::dataset::Dataset;
use crate::error::LeapsError;
use crate::metrics::Metrics;
use crate::pipeline::{try_train_classifier, Method};
use leaps_etw::rng::splitmix64;
use leaps_etw::scenario::{GenParams, Scenario};

/// Experiment parameters: which dataset sizes, how many randomized runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Log-generation sizes.
    pub gen: GenParams,
    /// Pipeline settings.
    pub pipeline: PipelineConfig,
    /// Number of randomized runs to average ("we average all results over
    /// 10 runs").
    pub runs: usize,
    /// Master seed; per-run seeds are derived with SplitMix64.
    pub seed: u64,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            gen: GenParams::paper(),
            pipeline: PipelineConfig::default(),
            runs: 10,
            seed: 0x1ea5,
        }
    }
}

impl Experiment {
    /// A small, fast experiment for tests.
    #[must_use]
    pub fn fast() -> Self {
        Experiment {
            gen: GenParams::small(),
            pipeline: PipelineConfig::fast(),
            runs: 2,
            seed: 0x1ea5,
        }
    }

    /// Runs `scenario` with `method`, averaging metrics over the
    /// configured number of runs. The dataset is regenerated per run with
    /// a derived seed, covering both data randomness and split/sampling
    /// randomness.
    ///
    /// # Errors
    ///
    /// Propagates [`LeapsError`] from dataset materialization or training
    /// (e.g. degraded telemetry left too few events).
    ///
    /// # Panics
    ///
    /// Panics if `runs == 0`.
    pub fn run(&self, scenario: Scenario, method: Method) -> Result<Metrics, LeapsError> {
        assert!(self.runs > 0, "need at least one run");
        let mut state = self.seed;
        let mut per_run = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            let run_seed = splitmix64(&mut state);
            per_run.push(self.run_once(scenario, method, run_seed)?);
        }
        Ok(Metrics::mean(&per_run))
    }

    /// Runs a single train/test round with an explicit seed.
    ///
    /// # Errors
    ///
    /// Propagates [`LeapsError`] from dataset materialization or training.
    pub fn run_once(
        &self,
        scenario: Scenario,
        method: Method,
        seed: u64,
    ) -> Result<Metrics, LeapsError> {
        let dataset = Dataset::materialize(scenario, &self.gen, seed)?;
        let (train, test) = dataset.split_benign(self.pipeline.benign_train_fraction, seed);
        let classifier =
            try_train_classifier(method, &train, &dataset.mixed, &self.pipeline, seed)?;
        Ok(classifier.evaluate(&test, &dataset.malicious).metrics())
    }

    /// Runs all three methods on a scenario (one Figure 6/7 group).
    ///
    /// # Errors
    ///
    /// Propagates [`LeapsError`] from dataset materialization or training.
    pub fn run_all_methods(
        &self,
        scenario: Scenario,
    ) -> Result<[(Method, Metrics); 3], LeapsError> {
        Ok([
            (Method::CGraph, self.run(scenario, Method::CGraph)?),
            (Method::Svm, self.run(scenario, Method::Svm)?),
            (Method::Wsvm, self.run(scenario, Method::Wsvm)?),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_experiment_runs_and_averages() {
        let exp = Experiment::fast();
        let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
        let m = exp.run(scenario, Method::Wsvm).unwrap();
        assert!(m.acc > 0.5, "{m}");
        assert!(m.acc <= 1.0);
    }

    #[test]
    fn run_is_deterministic() {
        let exp = Experiment::fast();
        let scenario = Scenario::by_name("putty_reverse_https_online").unwrap();
        let a = exp.run(scenario, Method::CGraph).unwrap();
        let b = exp.run(scenario, Method::CGraph).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_change_results() {
        let mut exp = Experiment::fast();
        let scenario = Scenario::by_name("vim_codeinject").unwrap();
        let a = exp.run(scenario, Method::Svm).unwrap();
        exp.seed = 99;
        let b = exp.run(scenario, Method::Svm).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let exp = Experiment { runs: 0, ..Experiment::fast() };
        let _ = exp.run(Scenario::by_name("vim_reverse_tcp").unwrap(), Method::Wsvm);
    }
}
