//! The training and testing phases (paper Section II-B), wired across all
//! substrate crates.
//!
//! Training (Figure 1):
//!
//! 1. benign + mixed logs are parsed and stack-partitioned upstream
//!    (`Dataset`);
//! 2. the feature encoder (hierarchical clustering) is fitted on the
//!    training events;
//! 3. CFGs are inferred from the application stack traces of the benign
//!    training half and of the mixed log; Algorithm 2 scores each mixed
//!    event's benignity;
//! 4. benign training points (label +1, weight 1) and weighted mixed
//!    points (label −1, weight = maliciousness) are coalesced into
//!    30-dimensional samples, 20% subsampled;
//! 5. (λ, σ²) are tuned by cross-validation and the weighted SVM is
//!    trained.
//!
//! The plain-SVM baseline is the same pipeline with all mixed weights
//! forced to 1; the call-graph baseline replaces steps 2–5 with BCG/MCG
//! construction.

use crate::config::{PipelineConfig, WeightMode, WeightPolarity};
use crate::error::{DataError, LeapsError};
use crate::metrics::ConfusionMatrix;
use crate::persist::{
    cv_checkpoint, cv_state, fingerprint64, hmm_checkpoint, hmm_state, load_checkpoint_file,
    save_checkpoint_to, smo_checkpoint, smo_state, verify_checkpoint, Checkpoint, ModelError,
};
use leaps_cfg::infer::infer_cfg;
use leaps_cfg::weight::assess_weights;
use leaps_cgraph::classify::{CallGraphClassifier, Decision};
use leaps_cluster::features::FeatureEncoder;
use leaps_etw::rng::SimRng;
use leaps_hmm::classify::{HmmClassifier, SymbolTable};
use leaps_hmm::hmm::HmmParams;
use leaps_svm::cv::{GridSearch, Scoring};
use leaps_svm::data::{Sample, TrainSet};
use leaps_svm::kernel::Kernel;
use leaps_svm::model::SvmModel;
use leaps_svm::smo::{train as smo_train, train_resumable as smo_train_resumable, SmoParams};
use leaps_trace::partition::PartitionedEvent;
use std::path::PathBuf;

/// The detection methods: the three the paper compares in Figures 6 and
/// 7, plus the HMM sequence model it names as future work (Section VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// System-level call-graph model (Section III-D-1).
    CGraph,
    /// Plain SVM (uniform weights).
    Svm,
    /// CFG-guided Weighted SVM — LEAPS.
    Wsvm,
    /// Hidden-Markov-model sequence classifier (extension).
    Hmm,
}

impl Method {
    /// The paper's three methods, in the figures' order.
    pub const ALL: [Method; 3] = [Method::CGraph, Method::Svm, Method::Wsvm];

    /// The paper's methods plus the extensions.
    pub const EXTENDED: [Method; 4] = [Method::CGraph, Method::Svm, Method::Wsvm, Method::Hmm];

    /// Display label used in the figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Method::CGraph => "CGraph",
            Method::Svm => "SVM",
            Method::Wsvm => "WSVM",
            Method::Hmm => "HMM",
        }
    }

    /// Parses a method from its display label (case-insensitive).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Method> {
        Method::EXTENDED.into_iter().find(|m| m.label().eq_ignore_ascii_case(label))
    }
}

/// A trained application-wise binary classifier.
#[derive(Debug, Clone)]
pub enum Classifier {
    /// Call-graph decision model.
    CGraph(CallGraphClassifier),
    /// (Weighted) SVM with its feature encoder.
    Svm(SvmClassifier),
    /// HMM sequence model (extension).
    Hmm(HmmDetector),
}

/// A trained HMM classifier bundled with its feature encoder and symbol
/// table.
#[derive(Debug, Clone)]
pub struct HmmDetector {
    clf: HmmClassifier,
    encoder: FeatureEncoder,
    table: SymbolTable<(u32, u32, u32)>,
}

impl HmmDetector {
    /// Maps events to their dense HMM observation symbols.
    fn symbols(&self, events: &[PartitionedEvent]) -> Vec<usize> {
        events.iter().map(|e| self.table.lookup(&self.encoder.tuple(e))).collect()
    }

    /// The preprocessing configuration (window/stride) of the encoder.
    #[must_use]
    pub fn encoder_config(&self) -> leaps_cluster::features::PreprocessConfig {
        self.encoder.config()
    }

    /// Per-symbol log-likelihood ratio of an event window (positive =
    /// benign-like).
    #[must_use]
    pub fn score_events(&self, events: &[PartitionedEvent]) -> f64 {
        self.clf.score(&self.symbols(events))
    }

    /// The persisted parts: classifier, encoder and symbol table.
    #[must_use]
    pub fn parts(&self) -> (&HmmClassifier, &FeatureEncoder, &SymbolTable<(u32, u32, u32)>) {
        (&self.clf, &self.encoder, &self.table)
    }

    /// Reassembles a detector from persisted parts.
    #[must_use]
    pub fn from_parts(
        clf: HmmClassifier,
        encoder: FeatureEncoder,
        table: SymbolTable<(u32, u32, u32)>,
    ) -> HmmDetector {
        HmmDetector { clf, encoder, table }
    }
}

/// A trained SVM-family classifier bundled with the feature encoder that
/// produced its input space.
#[derive(Debug, Clone)]
pub struct SvmClassifier {
    /// The trained kernel machine.
    pub model: SvmModel,
    /// The fitted preprocessing (clustering) stage.
    pub encoder: FeatureEncoder,
    /// The tuned (λ, σ²).
    pub tuned: (f64, f64),
}

/// Trains a classifier of the given method.
///
/// `benign_train` is the training half of the pure benign samples; the
/// mixed log is always fully available to training (it is the negative
/// class).
///
/// # Panics
///
/// Panics if the inputs are too small to produce at least one coalesced
/// training point per class, or if `config` is invalid. Use
/// [`try_train_classifier`] when the inputs come from untrusted or
/// degraded telemetry.
#[must_use]
pub fn train_classifier(
    method: Method,
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
) -> Classifier {
    match try_train_classifier(method, benign_train, mixed, config, seed) {
        Ok(classifier) => classifier,
        Err(e) => panic!("not enough events to form coalesced training points: {e}"),
    }
}

/// Fallible variant of [`train_classifier`]: instead of panicking on
/// inputs too damaged or too small to train on, reports which input fell
/// short. This is the entry point for pipelines fed by lossy telemetry,
/// where fault injection or lenient parsing may have consumed most of a
/// log.
///
/// # Errors
///
/// Returns a [`DataError`] when either log is empty, when coalescing
/// yields no training point for a class, or when the sampled training set
/// is degenerate (e.g. single-class).
///
/// # Panics
///
/// Still panics if `config` itself is invalid — a configuration bug, not
/// a data condition.
pub fn try_train_classifier(
    method: Method,
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
) -> Result<Classifier, DataError> {
    config.validate();
    if benign_train.is_empty() {
        return Err(DataError::EmptyLog { role: "benign training" });
    }
    if mixed.is_empty() {
        return Err(DataError::EmptyLog { role: "mixed" });
    }
    match method {
        Method::CGraph => {
            Ok(Classifier::CGraph(CallGraphClassifier::fit(benign_train.iter(), mixed.iter())))
        }
        Method::Svm | Method::Wsvm => {
            Ok(Classifier::Svm(train_svm_family(method, benign_train, mixed, config, seed)?))
        }
        Method::Hmm => Ok(Classifier::Hmm(train_hmm(benign_train, mixed, config, seed))),
    }
}

/// Length of HMM training chunks: long enough for transition statistics,
/// short enough that the mixed log yields many sequences.
const HMM_TRAIN_CHUNK: usize = 50;

/// Output of [`hmm_prelude`]: fitted encoder, interned symbol table and
/// the benign/mixed symbol streams.
type HmmPrelude = (FeatureEncoder, SymbolTable<(u32, u32, u32)>, Vec<usize>, Vec<usize>);

/// The deterministic prefix of HMM training: encoder fit + symbol
/// interning. Shared between the plain and checkpointed paths so both
/// feed the exact same symbol streams into Baum–Welch.
fn hmm_prelude(
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
) -> HmmPrelude {
    let mut fit_events: Vec<&PartitionedEvent> = benign_train.iter().collect();
    fit_events.extend(mixed.iter());
    let encoder = FeatureEncoder::fit(&fit_events, config.preprocess);

    let mut table: SymbolTable<(u32, u32, u32)> = SymbolTable::new();
    let benign_symbols: Vec<usize> =
        benign_train.iter().map(|e| table.intern(encoder.tuple(e))).collect();
    let mixed_symbols: Vec<usize> = mixed.iter().map(|e| table.intern(encoder.tuple(e))).collect();
    (encoder, table, benign_symbols, mixed_symbols)
}

fn train_hmm(
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
) -> HmmDetector {
    let (encoder, table, benign_symbols, mixed_symbols) = hmm_prelude(benign_train, mixed, config);
    let clf = HmmClassifier::fit(
        &benign_symbols,
        &mixed_symbols,
        table.alphabet_size(),
        HMM_TRAIN_CHUNK,
        &HmmParams { seed, ..HmmParams::default() },
    );
    HmmDetector { clf, encoder, table }
}

/// The deterministic prefix of SVM-family training: encoder fit, CFG
/// weights, coalesced/sampled training set, and grid construction
/// (steps 1–4 of the module docs, everything before the long-running CV
/// and SMO stages). Pure function of its arguments — the checkpointed
/// path recomputes it on resume and lands in the exact same state.
fn svm_prelude(
    method: Method,
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
) -> Result<(FeatureEncoder, TrainSet, GridSearch), DataError> {
    // 1. Fit the feature encoder on everything available at training time.
    let mut fit_events: Vec<&PartitionedEvent> = benign_train.iter().collect();
    fit_events.extend(mixed.iter());
    let encoder = FeatureEncoder::fit(&fit_events, config.preprocess);

    // 2. CFG-guided benignity weights for mixed events (WSVM only).
    let maliciousness: Box<dyn Fn(u64) -> f64> = match method {
        Method::Wsvm => {
            let bcfg = infer_cfg(benign_train);
            let mcfg = infer_cfg(mixed);
            let weights = match config.weight_mode {
                WeightMode::AddressSpace => assess_weights(&bcfg.cfg, &mcfg, config.weight),
                WeightMode::Aligned => leaps_cfg::align::assess_weights_aligned(&bcfg, &mcfg),
            };
            match config.weight_polarity {
                WeightPolarity::Maliciousness => Box::new(move |num| weights.maliciousness(num)),
                WeightPolarity::Benignity => Box::new(move |num| weights.benignity_or_default(num)),
            }
        }
        _ => Box::new(|_| 1.0),
    };

    // 3. Coalesced, weighted training points.
    let benign_refs: Vec<&PartitionedEvent> = benign_train.iter().collect();
    let mixed_refs: Vec<&PartitionedEvent> = mixed.iter().collect();
    let (benign_points, _) = encoder.encode_sequence(&benign_refs);
    let (mixed_points, mixed_covers) = encoder.encode_sequence(&mixed_refs);
    let window = config.preprocess.window;
    if benign_points.is_empty() {
        return Err(DataError::TooFewEvents {
            role: "benign training events",
            needed: window,
            got: benign_train.len(),
        });
    }
    if mixed_points.is_empty() {
        return Err(DataError::TooFewEvents {
            role: "mixed events",
            needed: window,
            got: mixed.len(),
        });
    }

    let mut samples: Vec<Sample> = Vec::new();
    let mut rng = SimRng::new(seed ^ 0x7ea1_11ed);
    for point in &benign_points {
        if rng.chance(config.sample_fraction) {
            samples.push(Sample::new(point.clone(), 1.0, 1.0));
        }
    }
    // Sample the same expected number of points from each class (the
    // paper samples 20% "from each dataset"); the mixed log is larger
    // than the benign training half, so its fraction is scaled down.
    let negative_fraction =
        config.sample_fraction * benign_points.len() as f64 / mixed_points.len() as f64;
    for (point, cover) in mixed_points.iter().zip(&mixed_covers) {
        if rng.chance(negative_fraction.min(1.0)) {
            let c = coalesced_weight(cover, |i| maliciousness(mixed[i].num), config.weight_floor);
            samples.push(Sample::new(point.clone(), -1.0, c));
        }
    }
    let train_set = TrainSet::new(samples).map_err(DataError::Degenerate)?;

    // 4. The (λ, σ²) tuning grid; running it is the caller's job.
    let grid = GridSearch {
        lambdas: config.tuning.lambdas.clone(),
        sigma2s: config.tuning.sigma2s.clone(),
        folds: config.tuning.folds,
        seed,
        scoring: Scoring::WeightedBalanced,
    };
    Ok((encoder, train_set, grid))
}

fn train_svm_family(
    method: Method,
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
) -> Result<SvmClassifier, DataError> {
    let (encoder, train_set, grid) = svm_prelude(method, benign_train, mixed, config, seed)?;
    // 5. Tune (λ, σ²) and train the final model on the full training set.
    let best = grid.run(&train_set);
    let model = smo_train(
        &train_set,
        Kernel::Gaussian { sigma2: best.sigma2 },
        &SmoParams { lambda: best.lambda, ..Default::default() },
    );
    Ok(SvmClassifier { model, encoder, tuned: (best.lambda, best.sigma2) })
}

// ------------------------------------------------- checkpointed training

/// Checkpointing configuration for [`try_train_classifier_checkpointed`].
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory holding the per-stage checkpoint files (created if
    /// absent): `cv.ckpt`, `smo.ckpt`, `hmm-benign.ckpt`,
    /// `hmm-mixed.ckpt`.
    pub dir: PathBuf,
    /// Resume from checkpoints found in `dir` instead of starting fresh.
    /// Checkpoints from a different run configuration (method, seed,
    /// data, hyper-parameters) are rejected, not silently adopted.
    pub resume: bool,
    /// SMO checkpoint stride: the solver offers its state every `every`
    /// iterations (0 disables SMO checkpoints; CV and Baum–Welch always
    /// checkpoint at their natural chunk/iteration boundaries).
    pub every: usize,
    /// Obs-clock deadline in microseconds (compared against
    /// [`leaps_obs::now_micros`]): training pauses at the first
    /// checkpoint boundary at or past this instant, leaving the state
    /// on disk for a later `resume` run. An already-expired deadline
    /// (e.g. `Some(0)`) pauses at the very first boundary — useful for
    /// deterministic interrupt drills.
    pub deadline: Option<u64>,
}

impl CheckpointSpec {
    /// A spec writing to `dir` with the default SMO stride, no resume,
    /// no deadline.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointSpec {
        CheckpointSpec { dir: dir.into(), resume: false, every: 200, deadline: None }
    }

    fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| leaps_obs::now_micros() >= d)
    }
}

/// Outcome of a checkpointed training run.
#[derive(Debug)]
pub enum TrainRun {
    /// Training finished; the stage checkpoint files were removed.
    Done(Box<Classifier>),
    /// Training paused at a checkpoint boundary (deadline reached). The
    /// named stage's state is on disk; rerunning with
    /// [`CheckpointSpec::resume`] continues from it, bit-identically.
    Paused {
        /// Which stage paused (`cv`, `smo`, `hmm-benign`, `hmm-mixed`).
        stage: &'static str,
        /// The stage's progress counter at the pause point.
        progress: u64,
    },
}

/// Checkpointed variant of [`try_train_classifier`]: the long-running
/// training stages (CV grid, SMO, Baum–Welch) write their state to
/// `spec.dir` through the atomic-write protocol at every checkpoint
/// boundary, and pause when `spec.deadline` passes. A later run with
/// `spec.resume` picks up from the saved state and produces a model
/// **bit-identical** to an uninterrupted run (DESIGN.md §13): all
/// stochastic choices are either re-derived from `seed` (the
/// deterministic prelude) or carried in the checkpoint itself (the
/// Baum–Welch initialization).
///
/// # Errors
///
/// [`LeapsError::Data`] on degenerate inputs, [`LeapsError::Io`] when a
/// checkpoint cannot be written or read, [`LeapsError::Model`] when an
/// existing checkpoint is corrupt or belongs to a different run.
///
/// # Panics
///
/// Panics if `config` itself is invalid — a configuration bug, not a
/// data condition.
pub fn try_train_classifier_checkpointed(
    method: Method,
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
    spec: &CheckpointSpec,
) -> Result<TrainRun, LeapsError> {
    config.validate();
    if benign_train.is_empty() {
        return Err(DataError::EmptyLog { role: "benign training" }.into());
    }
    if mixed.is_empty() {
        return Err(DataError::EmptyLog { role: "mixed" }.into());
    }
    std::fs::create_dir_all(&spec.dir)
        .map_err(|e| LeapsError::io(spec.dir.display().to_string(), &e))?;
    // Everything that shapes the training trajectory goes into the
    // fingerprint, so a checkpoint can never silently resume a
    // different run.
    let fingerprint = fingerprint64(&[
        method.label(),
        &seed.to_string(),
        &benign_train.len().to_string(),
        &mixed.len().to_string(),
        &format!("{config:?}"),
    ]);
    match method {
        // Call-graph fitting is a single linear pass — quicker than a
        // checkpoint write; it never pauses.
        Method::CGraph => Ok(TrainRun::Done(Box::new(Classifier::CGraph(
            CallGraphClassifier::fit(benign_train.iter(), mixed.iter()),
        )))),
        Method::Svm | Method::Wsvm => {
            svm_checkpointed(method, benign_train, mixed, config, seed, spec, fingerprint)
        }
        Method::Hmm => hmm_checkpointed(benign_train, mixed, config, seed, spec, fingerprint),
    }
}

/// Loads and validates one stage's checkpoint for resume; `Ok(None)`
/// when not resuming or the file does not exist yet.
fn load_stage(
    spec: &CheckpointSpec,
    file: &str,
    stage: &str,
    fingerprint: u64,
) -> Result<Option<Checkpoint>, LeapsError> {
    let path = spec.dir.join(file);
    if !spec.resume || !path.exists() {
        return Ok(None);
    }
    let ckpt = load_checkpoint_file(&path)?;
    let in_file = |inner: ModelError| {
        LeapsError::Model(ModelError::InFile {
            path: path.display().to_string(),
            inner: Box::new(inner),
        })
    };
    verify_checkpoint(&ckpt, stage, fingerprint).map_err(in_file)?;
    Ok(Some(ckpt))
}

/// Wraps a `ModelError` from decoding `file`'s payload with the path.
fn stage_decode_err(spec: &CheckpointSpec, file: &str, inner: ModelError) -> LeapsError {
    LeapsError::Model(ModelError::InFile {
        path: spec.dir.join(file).display().to_string(),
        inner: Box::new(inner),
    })
}

fn svm_checkpointed(
    method: Method,
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
    spec: &CheckpointSpec,
    fingerprint: u64,
) -> Result<TrainRun, LeapsError> {
    let (encoder, train_set, grid) = svm_prelude(method, benign_train, mixed, config, seed)?;
    // The seed-expanded generator state, recorded in the CV/SMO
    // checkpoints: both stages are deterministic given the seed, so it
    // is never consumed on resume.
    let rng_state = SimRng::new(seed).state();

    // Stage 1: the CV grid, checkpointed per (λ, σ²) chunk.
    let cv_resume = match load_stage(spec, "cv.ckpt", "cv", fingerprint)? {
        Some(ckpt) => Some(cv_state(&ckpt).map_err(|e| stage_decode_err(spec, "cv.ckpt", e))?),
        None => None,
    };
    let cv_path = spec.dir.join("cv.ckpt");
    let mut io_error: Option<LeapsError> = None;
    let mut paused: Option<u64> = None;
    let best = grid.run_resumable(&train_set, cv_resume, &mut |state| {
        let ckpt = cv_checkpoint(state, fingerprint, rng_state);
        if let Err(e) = save_checkpoint_to(&cv_path, &ckpt) {
            io_error = Some(e);
            return false;
        }
        if spec.expired() {
            paused = Some(ckpt.progress);
            return false;
        }
        true
    });
    if let Some(e) = io_error {
        return Err(e);
    }
    let Some(best) = best else {
        let progress = paused.expect("CV paused without a deadline or I/O error");
        return Ok(TrainRun::Paused { stage: "cv", progress });
    };

    // Stage 2: the final SMO solve, checkpointed every `spec.every`
    // iterations. The kernel matrix is recomputed (it is a pure function
    // of the training set), only the solver state is persisted.
    let smo_resume = match load_stage(spec, "smo.ckpt", "smo", fingerprint)? {
        Some(ckpt) => Some(smo_state(&ckpt).map_err(|e| stage_decode_err(spec, "smo.ckpt", e))?),
        None => None,
    };
    let smo_path = spec.dir.join("smo.ckpt");
    let mut paused: Option<u64> = None;
    let model = smo_train_resumable(
        &train_set,
        Kernel::Gaussian { sigma2: best.sigma2 },
        &SmoParams { lambda: best.lambda, ..Default::default() },
        smo_resume,
        spec.every,
        &mut |state| {
            let ckpt = smo_checkpoint(state, fingerprint, rng_state);
            if let Err(e) = save_checkpoint_to(&smo_path, &ckpt) {
                io_error = Some(e);
                return false;
            }
            if spec.expired() {
                paused = Some(ckpt.progress);
                return false;
            }
            true
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    let Some(model) = model else {
        let progress = paused.expect("SMO paused without a deadline or I/O error");
        return Ok(TrainRun::Paused { stage: "smo", progress });
    };

    for file in ["cv.ckpt", "smo.ckpt"] {
        let _ = std::fs::remove_file(spec.dir.join(file));
    }
    Ok(TrainRun::Done(Box::new(Classifier::Svm(SvmClassifier {
        model,
        encoder,
        tuned: (best.lambda, best.sigma2),
    }))))
}

fn hmm_checkpointed(
    benign_train: &[PartitionedEvent],
    mixed: &[PartitionedEvent],
    config: &PipelineConfig,
    seed: u64,
    spec: &CheckpointSpec,
    fingerprint: u64,
) -> Result<TrainRun, LeapsError> {
    let (encoder, table, benign_symbols, mixed_symbols) = hmm_prelude(benign_train, mixed, config);
    const FILES: [&str; 2] = ["hmm-benign.ckpt", "hmm-mixed.ckpt"];
    const STAGES: [&str; 2] = ["hmm-benign", "hmm-mixed"];
    let mut resume = (None, None);
    for (which, file) in FILES.iter().enumerate() {
        // Both models share the envelope stage tag "hmm"; which model a
        // file belongs to is carried by the file name.
        if let Some(ckpt) = load_stage(spec, file, "hmm", fingerprint)? {
            let state = hmm_state(&ckpt).map_err(|e| stage_decode_err(spec, file, e))?;
            if which == 0 {
                resume.0 = Some(state);
            } else {
                resume.1 = Some(state);
            }
        }
    }
    let mut io_error: Option<LeapsError> = None;
    let mut paused: Option<(&'static str, u64)> = None;
    let clf = HmmClassifier::fit_resumable(
        &benign_symbols,
        &mixed_symbols,
        table.alphabet_size(),
        HMM_TRAIN_CHUNK,
        &HmmParams { seed, ..HmmParams::default() },
        resume,
        &mut |which, state| {
            let ckpt = hmm_checkpoint(state, fingerprint);
            if let Err(e) = save_checkpoint_to(&spec.dir.join(FILES[which]), &ckpt) {
                io_error = Some(e);
                return false;
            }
            if spec.expired() {
                paused = Some((STAGES[which], ckpt.progress));
                return false;
            }
            true
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    let Some(clf) = clf else {
        let (stage, progress) = paused.expect("HMM paused without a deadline or I/O error");
        return Ok(TrainRun::Paused { stage, progress });
    };
    for file in FILES {
        let _ = std::fs::remove_file(spec.dir.join(file));
    }
    Ok(TrainRun::Done(Box::new(Classifier::Hmm(HmmDetector { clf, encoder, table }))))
}

/// Coalesced-point weight: mean maliciousness over the covered events,
/// floored so the negative class keeps a feasible box (Eq. 2 needs
/// `cᵢ > 0`). An empty cover yields the floor directly — averaging over
/// zero events would otherwise produce `0/0 = NaN` and poison the SMO
/// box constraints.
fn coalesced_weight(cover: &[usize], maliciousness: impl Fn(usize) -> f64, floor: f64) -> f64 {
    if cover.is_empty() {
        return floor;
    }
    let mean = cover.iter().map(|&i| maliciousness(i)).sum::<f64>() / cover.len() as f64;
    mean.max(floor)
}

impl Classifier {
    /// Evaluates the classifier on held-out benign events (expected
    /// positive) and pure malicious events (expected negative).
    ///
    /// SVM-family classifiers are scored per coalesced data point;
    /// the call-graph model is scored per event, with undecidable
    /// outcomes counted as misclassifications (Section III-D-1).
    #[must_use]
    pub fn evaluate(
        &self,
        benign_test: &[PartitionedEvent],
        malicious_test: &[PartitionedEvent],
    ) -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::default();
        match self {
            Classifier::CGraph(model) => {
                for e in benign_test {
                    cm.record_benign(model.classify(e) == Decision::Benign);
                }
                for e in malicious_test {
                    cm.record_malicious(model.classify(e) == Decision::Malicious);
                }
            }
            Classifier::Svm(svm) => {
                let benign_refs: Vec<&PartitionedEvent> = benign_test.iter().collect();
                let malicious_refs: Vec<&PartitionedEvent> = malicious_test.iter().collect();
                let (benign_points, _) = svm.encoder.encode_sequence(&benign_refs);
                let (malicious_points, _) = svm.encoder.encode_sequence(&malicious_refs);
                for p in &benign_points {
                    cm.record_benign(svm.model.predict(p) == 1.0);
                }
                for p in &malicious_points {
                    cm.record_malicious(svm.model.predict(p) == -1.0);
                }
            }
            Classifier::Hmm(hmm) => {
                // Score the same 10-event windows the SVM family uses.
                let window = hmm.encoder.config().window;
                let stride = hmm.encoder.config().stride;
                let score =
                    |events: &[PartitionedEvent], cm: &mut ConfusionMatrix, benign: bool| {
                        let symbols = hmm.symbols(events);
                        let mut start = 0;
                        while start + window <= symbols.len() {
                            let verdict = hmm.clf.is_benign(&symbols[start..start + window]);
                            if benign {
                                cm.record_benign(verdict);
                            } else {
                                cm.record_malicious(!verdict);
                            }
                            start += stride;
                        }
                    };
                score(benign_test, &mut cm, true);
                score(malicious_test, &mut cm, false);
            }
        }
        cm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use leaps_etw::scenario::{GenParams, Scenario};

    fn dataset(name: &str) -> Dataset {
        Dataset::materialize(Scenario::by_name(name).unwrap(), &GenParams::small(), 21).unwrap()
    }

    #[test]
    fn method_labels() {
        assert_eq!(Method::Wsvm.label(), "WSVM");
        assert_eq!(Method::ALL.len(), 3);
    }

    #[test]
    fn coalesced_weight_handles_empty_cover() {
        // Regression: an empty cover used to average over zero events and
        // produce a NaN sample weight.
        let w = coalesced_weight(&[], |_| 0.9, 0.05);
        assert_eq!(w, 0.05);
        assert!(!w.is_nan());
    }

    #[test]
    fn coalesced_weight_means_and_floors() {
        let malice = |i: usize| [0.2, 0.4, 0.0][i];
        assert!((coalesced_weight(&[0, 1], malice, 0.05) - 0.3).abs() < 1e-12);
        // Mean below the floor is clamped up.
        assert_eq!(coalesced_weight(&[2], malice, 0.05), 0.05);
    }

    #[test]
    fn try_train_reports_empty_inputs() {
        let d = dataset("vim_reverse_tcp");
        let (train, _) = d.split_benign(0.5, 1);
        let cfg = PipelineConfig::fast();
        let err = try_train_classifier(Method::Wsvm, &[], &d.mixed, &cfg, 1).unwrap_err();
        assert!(matches!(err, DataError::EmptyLog { role: "benign training" }), "{err}");
        let err = try_train_classifier(Method::Wsvm, &train, &[], &cfg, 1).unwrap_err();
        assert!(matches!(err, DataError::EmptyLog { role: "mixed" }), "{err}");
    }

    #[test]
    fn try_train_reports_too_few_events() {
        let d = dataset("vim_reverse_tcp");
        let few = &d.benign[..1];
        let err = try_train_classifier(Method::Wsvm, few, &d.mixed, &PipelineConfig::fast(), 1)
            .unwrap_err();
        assert!(matches!(err, DataError::TooFewEvents { .. }), "{err}");
    }

    #[test]
    fn try_train_succeeds_on_healthy_inputs() {
        let d = dataset("vim_reverse_tcp");
        let (train, test) = d.split_benign(0.5, 1);
        let c = try_train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 1)
            .unwrap();
        let cm = c.evaluate(&test, &d.malicious);
        assert!(cm.total() > 0);
    }

    #[test]
    fn cgraph_classifier_trains_and_evaluates() {
        let d = dataset("putty_reverse_tcp");
        let (train, test) = d.split_benign(0.5, 1);
        let c = train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 1);
        let cm = c.evaluate(&test, &d.malicious);
        assert_eq!(cm.total(), test.len() + d.malicious.len());
        // The call-graph model catches a decent share of pure-malicious
        // events (payload-only chains).
        assert!(cm.metrics().tnr > 0.2, "{:?}", cm.metrics());
    }

    #[test]
    fn wsvm_classifier_trains_and_beats_coin_flip() {
        let d = dataset("vim_reverse_tcp");
        let (train, test) = d.split_benign(0.5, 1);
        let c = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 1);
        let cm = c.evaluate(&test, &d.malicious);
        let m = cm.metrics();
        assert!(m.acc > 0.6, "{m}");
        if let Classifier::Svm(svm) = &c {
            assert!(svm.model.support_vector_count() > 0);
            assert!(svm.tuned.0 > 0.0 && svm.tuned.1 > 0.0);
        } else {
            panic!("expected SVM classifier");
        }
    }

    #[test]
    fn svm_and_wsvm_differ_in_training_weights_outcome() {
        let d = dataset("vim_reverse_tcp");
        let (train, test) = d.split_benign(0.5, 1);
        let svm = train_classifier(Method::Svm, &train, &d.mixed, &PipelineConfig::fast(), 1);
        let wsvm = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 1);
        let m_svm = svm.evaluate(&test, &d.malicious).metrics();
        let m_wsvm = wsvm.evaluate(&test, &d.malicious).metrics();
        // The CFG guidance must help on benign recall (the paper's central
        // claim); allow equality in degenerate small-data cases.
        assert!(m_wsvm.tpr >= m_svm.tpr, "WSVM TPR {} < SVM TPR {}", m_wsvm.tpr, m_svm.tpr);
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("leaps-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Runs checkpointed training to completion by repeatedly resuming
    /// with an always-expired deadline (pause at every single checkpoint
    /// boundary — the worst case), then asserts the final model is
    /// byte-identical to an uninterrupted run.
    fn interrupt_everywhere(method: Method) {
        let d = dataset("vim_reverse_tcp");
        let (train, _) = d.split_benign(0.5, 1);
        let cfg = PipelineConfig::fast();
        let clean = train_classifier(method, &train, &d.mixed, &cfg, 7);
        let clean_bytes = crate::persist::save_classifier(&clean);

        let dir = scratch_dir(method.label());
        let mut spec = CheckpointSpec::new(&dir);
        // A small SMO stride so the solve pauses several times without
        // paying a full prelude recompute per iteration (iteration-level
        // bit-identity is proven in leaps-svm's own tests).
        spec.every = 64;
        spec.deadline = Some(0); // expired from the start: pause at every boundary
        let mut pauses = 0;
        let done = loop {
            match try_train_classifier_checkpointed(method, &train, &d.mixed, &cfg, 7, &spec)
                .unwrap()
            {
                TrainRun::Done(clf) => break clf,
                TrainRun::Paused { .. } => {
                    pauses += 1;
                    assert!(pauses < 100_000, "training never completed");
                    spec.resume = true;
                }
            }
        };
        assert!(pauses > 0, "{method:?} never hit a checkpoint boundary");
        assert_eq!(
            crate::persist::save_classifier(&done),
            clean_bytes,
            "{method:?} resumed model diverged after {pauses} pauses"
        );
        // Completion must clean up the stage checkpoints.
        let leftover: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftover.is_empty(), "checkpoints not cleaned up: {leftover:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wsvm_interrupted_at_every_checkpoint_is_bit_identical() {
        interrupt_everywhere(Method::Wsvm);
    }

    #[test]
    fn hmm_interrupted_at_every_checkpoint_is_bit_identical() {
        interrupt_everywhere(Method::Hmm);
    }

    #[test]
    fn cgraph_checkpointed_never_pauses() {
        let d = dataset("vim_reverse_tcp");
        let (train, _) = d.split_benign(0.5, 1);
        let dir = scratch_dir("cgraph");
        let mut spec = CheckpointSpec::new(&dir);
        spec.deadline = Some(0); // expired from the start: pause at every boundary
        let run = try_train_classifier_checkpointed(
            Method::CGraph,
            &train,
            &d.mixed,
            &PipelineConfig::fast(),
            7,
            &spec,
        )
        .unwrap();
        assert!(matches!(run, TrainRun::Done(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_from_different_run_is_rejected() {
        let d = dataset("vim_reverse_tcp");
        let (train, _) = d.split_benign(0.5, 1);
        let cfg = PipelineConfig::fast();
        let dir = scratch_dir("mismatch");
        let mut spec = CheckpointSpec::new(&dir);
        spec.deadline = Some(0); // expired from the start: pause at every boundary
                                 // Pause a seed-7 run at its first boundary...
        let run = try_train_classifier_checkpointed(Method::Wsvm, &train, &d.mixed, &cfg, 7, &spec)
            .unwrap();
        assert!(matches!(run, TrainRun::Paused { .. }));
        // ...then try to resume it under seed 8: must be rejected.
        spec.resume = true;
        spec.deadline = None;
        let err = try_train_classifier_checkpointed(Method::Wsvm, &train, &d.mixed, &cfg, 8, &spec)
            .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn method_from_label_roundtrips() {
        for m in Method::EXTENDED {
            assert_eq!(Method::from_label(m.label()), Some(m));
        }
        assert_eq!(Method::from_label("wsvm"), Some(Method::Wsvm));
        assert_eq!(Method::from_label("nope"), None);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let d = dataset("putty_codeinject");
        let (train, test) = d.split_benign(0.5, 2);
        let a = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let b = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        assert_eq!(a.evaluate(&test, &d.malicious), b.evaluate(&test, &d.malicious));
    }
}
