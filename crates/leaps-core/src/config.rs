//! Pipeline configuration.

use leaps_cfg::weight::WeightConfig;
use leaps_cluster::features::PreprocessConfig;

/// Hyper-parameter grid for cross-validated tuning of `(λ, σ²)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningConfig {
    /// Candidate λ values.
    pub lambdas: Vec<f64>,
    /// Candidate σ² values.
    pub sigma2s: Vec<f64>,
    /// Cross-validation folds (paper: 10).
    pub folds: usize,
}

impl Default for TuningConfig {
    fn default() -> Self {
        TuningConfig { lambdas: vec![1.0, 10.0, 100.0], sigma2s: vec![2.0, 8.0, 32.0], folds: 10 }
    }
}

impl TuningConfig {
    /// A reduced grid/fold count for fast tests and smoke runs.
    #[must_use]
    pub fn fast() -> Self {
        TuningConfig { lambdas: vec![10.0], sigma2s: vec![2.0], folds: 3 }
    }
}

/// Which direction the CFG-derived score feeds the Weighted SVM.
///
/// Algorithm 2 scores *benignity*; LEAPS trains the negative class with
/// `cᵢ = 1 − benignity` (see DESIGN.md). [`WeightPolarity::Benignity`]
/// feeds the raw score instead — an ablation showing that the polarity
/// interpretation matters (it up-weights exactly the mislabeled points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightPolarity {
    /// `cᵢ = 1 − benignity` (the paper's intent; default).
    #[default]
    Maliciousness,
    /// `cᵢ = benignity` (ablation).
    Benignity,
}

/// How mixed-CFG edges are compared against the benign CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Algorithm 2 as published: address-space comparison with the
    /// density array (correct for binary-level trojans and injection,
    /// where benign code keeps its offsets).
    #[default]
    AddressSpace,
    /// The Section VI-A extension: structural CFG alignment first, then
    /// reachability in the aligned space — survives source-level trojans
    /// whose recompilation shifts every benign function.
    Aligned,
}

/// Configuration of the full training/testing pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Feature discretization settings (Section III-A).
    pub preprocess: PreprocessConfig,
    /// Weight-assessment settings (Section III-C).
    pub weight: WeightConfig,
    /// Hyper-parameter tuning (Section IV).
    pub tuning: TuningConfig,
    /// Fraction of the pure benign samples used for training; the rest is
    /// held out for testing (paper: 50%).
    pub benign_train_fraction: f64,
    /// Fraction of coalesced data points sampled into the training set
    /// (paper: 20%).
    pub sample_fraction: f64,
    /// Floor applied to the maliciousness weight of mixed training points
    /// so the negative class never degenerates to an empty feasible box.
    pub weight_floor: f64,
    /// Weight polarity (ablation hook; see [`WeightPolarity`]).
    pub weight_polarity: WeightPolarity,
    /// CFG comparison mode (see [`WeightMode`]).
    pub weight_mode: WeightMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            preprocess: PreprocessConfig::default(),
            weight: WeightConfig::default(),
            tuning: TuningConfig::default(),
            benign_train_fraction: 0.5,
            sample_fraction: 0.2,
            weight_floor: 0.05,
            weight_polarity: WeightPolarity::default(),
            weight_mode: WeightMode::default(),
        }
    }
}

impl PipelineConfig {
    /// A configuration sized for fast tests: small grid, higher sampling
    /// (small logs), otherwise paper-faithful.
    #[must_use]
    pub fn fast() -> Self {
        PipelineConfig { tuning: TuningConfig::fast(), sample_fraction: 0.5, ..Default::default() }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `(0, 1]` or the benign split
    /// would leave an empty side.
    pub fn validate(&self) {
        assert!(
            self.benign_train_fraction > 0.0 && self.benign_train_fraction < 1.0,
            "benign_train_fraction must be in (0,1)"
        );
        assert!(
            self.sample_fraction > 0.0 && self.sample_fraction <= 1.0,
            "sample_fraction must be in (0,1]"
        );
        assert!((0.0..1.0).contains(&self.weight_floor), "weight_floor must be in [0,1)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let c = PipelineConfig::default();
        assert_eq!(c.tuning.folds, 10);
        assert_eq!(c.tuning.lambdas.len(), 3);
        assert_eq!(c.benign_train_fraction, 0.5);
        assert_eq!(c.sample_fraction, 0.2);
        assert_eq!(c.preprocess.window, 10);
        c.validate();
    }

    #[test]
    fn fast_config_is_valid() {
        PipelineConfig::fast().validate();
    }

    #[test]
    #[should_panic(expected = "sample_fraction")]
    fn invalid_sample_fraction_rejected() {
        let c = PipelineConfig { sample_fraction: 0.0, ..Default::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "benign_train_fraction")]
    fn invalid_split_rejected() {
        let c = PipelineConfig { benign_train_fraction: 1.0, ..Default::default() };
        c.validate();
    }
}
