//! Workspace-wide error unification.
//!
//! Every fallible step of the pipeline — parsing raw telemetry, loading a
//! persisted model, assembling training data, touching the filesystem —
//! reports through [`LeapsError`], so the CLI and the experiment harness
//! propagate `Result` end to end instead of unwrapping. Each variant maps
//! to a distinct process exit code (see [`LeapsError::exit_code`]), which
//! lets deployments distinguish "your log is damaged" from "your model
//! file is damaged" from "there is not enough data to train on".

use crate::persist::ModelError;
use leaps_trace::parser::ParseError;
use std::error::Error;
use std::fmt;

/// Dataset-level failures: the inputs exist and parse, but cannot support
/// the requested operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A required event log contained no usable events.
    EmptyLog {
        /// Which log (e.g. "benign training").
        role: &'static str,
    },
    /// A log parsed but yielded too few events for the operation.
    TooFewEvents {
        /// Which input fell short.
        role: &'static str,
        /// Minimum usable count.
        needed: usize,
        /// What was actually available.
        got: usize,
    },
    /// The sampled training set is degenerate (single class, bad values).
    Degenerate(leaps_svm::data::DataError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyLog { role } => write!(f, "{role} log contains no usable events"),
            DataError::TooFewEvents { role, needed, got } => {
                write!(f, "{role}: need at least {needed} events, got {got}")
            }
            DataError::Degenerate(e) => write!(f, "degenerate training set: {e}"),
        }
    }
}

impl Error for DataError {}

/// Unified error for every layer of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeapsError {
    /// Raw telemetry failed to parse (strict mode).
    Parse(ParseError),
    /// A persisted model failed to load.
    Model(ModelError),
    /// The data is insufficient or degenerate.
    Data(DataError),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// A network/protocol failure talking to or inside the detection
    /// service (`leaps serve` / `leaps submit`): a connection that could
    /// not be established, a malformed protocol line, an `ERR` reply, or
    /// a command outside the session state machine.
    Protocol {
        /// What went wrong, in one line.
        message: String,
    },
    /// A wall-clock deadline expired before the operation finished. Not
    /// a failure of the work itself: checkpointed training pauses at the
    /// deadline with its state saved, so a `--resume` run picks up where
    /// it stopped.
    Deadline {
        /// What was interrupted (e.g. "training wsvm").
        what: String,
    },
}

impl LeapsError {
    /// Wraps an I/O error with the path it concerned.
    #[must_use]
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> LeapsError {
        LeapsError::Io { path: path.into(), message: err.to_string() }
    }

    /// Wraps a network/protocol failure message.
    #[must_use]
    pub fn protocol(message: impl Into<String>) -> LeapsError {
        LeapsError::Protocol { message: message.into() }
    }

    /// Wraps a deadline expiry, naming what was interrupted.
    #[must_use]
    pub fn deadline(what: impl Into<String>) -> LeapsError {
        LeapsError::Deadline { what: what.into() }
    }

    /// The process exit code for this error family: parse errors exit 3,
    /// model errors 4, data errors 5, I/O errors 6, network/protocol
    /// errors 7, deadline expiry 8. (2 is reserved for command-line
    /// usage errors, 1 for internal failures.)
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            LeapsError::Parse(_) => 3,
            LeapsError::Model(_) => 4,
            LeapsError::Data(_) => 5,
            LeapsError::Io { .. } => 6,
            LeapsError::Protocol { .. } => 7,
            LeapsError::Deadline { .. } => 8,
        }
    }
}

impl fmt::Display for LeapsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeapsError::Parse(e) => write!(f, "parse error: {e}"),
            LeapsError::Model(e) => write!(f, "model error: {e}"),
            LeapsError::Data(e) => write!(f, "data error: {e}"),
            LeapsError::Io { path, message } => write!(f, "i/o error on {path}: {message}"),
            LeapsError::Protocol { message } => write!(f, "protocol error: {message}"),
            LeapsError::Deadline { what } => {
                write!(f, "deadline exceeded: {what} paused at a checkpoint; rerun with --resume")
            }
        }
    }
}

impl Error for LeapsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LeapsError::Parse(e) => Some(e),
            LeapsError::Model(e) => Some(e),
            LeapsError::Data(e) => Some(e),
            LeapsError::Io { .. } | LeapsError::Protocol { .. } | LeapsError::Deadline { .. } => {
                None
            }
        }
    }
}

impl From<ParseError> for LeapsError {
    fn from(e: ParseError) -> LeapsError {
        LeapsError::Parse(e)
    }
}

impl From<ModelError> for LeapsError {
    fn from(e: ModelError) -> LeapsError {
        LeapsError::Model(e)
    }
}

impl From<DataError> for LeapsError {
    fn from(e: DataError) -> LeapsError {
        LeapsError::Data(e)
    }
}

impl From<leaps_svm::data::DataError> for LeapsError {
    fn from(e: leaps_svm::data::DataError) -> LeapsError {
        LeapsError::Data(DataError::Degenerate(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            LeapsError::Parse(ParseError::MissingHeader),
            LeapsError::Model(ModelError::BadHeader),
            LeapsError::Data(DataError::EmptyLog { role: "benign" }),
            LeapsError::Io { path: "x".into(), message: "denied".into() },
            LeapsError::protocol("connection refused"),
            LeapsError::deadline("training wsvm"),
        ];
        let codes: Vec<u8> = errors.iter().map(LeapsError::exit_code).collect();
        let mut unique = codes.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), errors.len());
        assert!(codes.iter().all(|&c| c > 2), "codes 0/1/2 are reserved");
    }

    #[test]
    fn displays_are_single_line_with_context() {
        let e = LeapsError::from(ParseError::UnterminatedEvent { num: 9 });
        let text = e.to_string();
        assert!(text.starts_with("parse error:"), "{text}");
        assert!(!text.contains('\n'));
        let e = LeapsError::Data(DataError::TooFewEvents { role: "target", needed: 10, got: 3 });
        assert!(e.to_string().contains("need at least 10"), "{e}");
        let e = LeapsError::from(leaps_svm::data::DataError::SingleClass);
        assert!(e.to_string().contains("degenerate"), "{e}");
        let e = LeapsError::protocol("session (cli, 4) already open");
        assert!(e.to_string().starts_with("protocol error:"), "{e}");
        assert_eq!(e.exit_code(), 7);
        let e = LeapsError::deadline("training wsvm");
        assert!(e.to_string().contains("--resume"), "{e}");
        assert_eq!(e.exit_code(), 8);
    }

    #[test]
    fn conversions_preserve_sources() {
        let e = LeapsError::from(ModelError::Truncated);
        assert!(e.source().is_some());
        assert_eq!(e.exit_code(), 4);
    }
}
