//! Dataset materialization: scenario → raw logs → parsed, partitioned
//! event sets, exercising the full front end.

use crate::error::LeapsError;
use leaps_etw::scenario::{GenParams, Scenario};
use leaps_trace::parser::parse_log;
use leaps_trace::partition::{partition_events, PartitionedEvent};

/// A fully preprocessed dataset: the three logs of Section V-A, parsed and
/// stack-partitioned.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The scenario this dataset realizes.
    pub scenario: Scenario,
    /// Pure benign samples (clean application run).
    pub benign: Vec<PartitionedEvent>,
    /// Mixed samples (infected run, interleaved benign/malicious).
    pub mixed: Vec<PartitionedEvent>,
    /// Pure malicious samples (standalone payload; testing ground truth).
    pub malicious: Vec<PartitionedEvent>,
}

impl Dataset {
    /// Generates, serializes, re-parses and partitions the scenario's
    /// three logs — the same path production data would take.
    ///
    /// # Errors
    ///
    /// Returns [`LeapsError::Parse`] if a generated log fails to parse
    /// (which would indicate a writer/parser mismatch).
    pub fn materialize(
        scenario: Scenario,
        params: &GenParams,
        seed: u64,
    ) -> Result<Dataset, LeapsError> {
        let raw = scenario.generate(params, seed);
        Ok(Dataset {
            scenario,
            benign: partition_events(&parse_log(&raw.benign)?.events),
            mixed: partition_events(&parse_log(&raw.mixed)?.events),
            malicious: partition_events(&parse_log(&raw.malicious)?.events),
        })
    }

    /// Splits the benign events into non-overlapping train/test parts by a
    /// deterministic interleaved assignment seeded with `seed` (the paper
    /// divides the pure benign samples 50/50).
    ///
    /// Events keep their relative order within each side so that
    /// window-coalescing still sees (mostly) adjacent events.
    #[must_use]
    pub fn split_benign(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> (Vec<PartitionedEvent>, Vec<PartitionedEvent>) {
        use leaps_etw::rng::SimRng;
        let mut rng = SimRng::new(seed ^ 0x5917_7e57);
        // Split in contiguous chunks (not per-event) so both sides retain
        // realistic adjacency for implicit-path inference and coalescing.
        const CHUNK: usize = 40;
        let mut train = Vec::new();
        let mut test = Vec::new();
        for chunk in self.benign.chunks(CHUNK) {
            if rng.chance(train_fraction) {
                train.extend_from_slice(chunk);
            } else {
                test.extend_from_slice(chunk);
            }
        }
        // Guarantee both sides are non-empty.
        if train.is_empty() {
            train = test.split_off(test.len() / 2);
        } else if test.is_empty() {
            test = train.split_off(train.len() / 2);
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::materialize(Scenario::by_name("vim_reverse_tcp").unwrap(), &GenParams::small(), 11)
            .unwrap()
    }

    #[test]
    fn materialization_yields_three_nonempty_logs() {
        let d = dataset();
        assert_eq!(d.benign.len(), 600);
        assert_eq!(d.mixed.len(), 600);
        assert_eq!(d.malicious.len(), 300);
    }

    #[test]
    fn benign_split_is_a_partition() {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 3);
        assert_eq!(train.len() + test.len(), d.benign.len());
        assert!(!train.is_empty() && !test.is_empty());
        // No event number appears on both sides.
        let train_nums: std::collections::HashSet<u64> = train.iter().map(|e| e.num).collect();
        assert!(test.iter().all(|e| !train_nums.contains(&e.num)));
    }

    #[test]
    fn benign_split_is_seed_deterministic() {
        let d = dataset();
        let (a, _) = d.split_benign(0.5, 3);
        let (b, _) = d.split_benign(0.5, 3);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.num == y.num));
        let (c, _) = d.split_benign(0.5, 4);
        let a_nums: Vec<u64> = a.iter().map(|e| e.num).collect();
        let c_nums: Vec<u64> = c.iter().map(|e| e.num).collect();
        assert_ne!(a_nums, c_nums);
    }

    #[test]
    fn extreme_fractions_still_give_both_sides() {
        let d = dataset();
        let (train, test) = d.split_benign(0.999, 3);
        assert!(!train.is_empty() && !test.is_empty());
        let (train, test) = d.split_benign(0.001, 3);
        assert!(!train.is_empty() && !test.is_empty());
    }
}
