//! LEAPS end-to-end pipeline: datasets, training phase, testing phase,
//! metrics and the Section V evaluation harness.
//!
//! This crate composes the substrate crates into the system of the paper:
//!
//! * [`dataset`] — materializes the 21 Table I scenarios through the full
//!   front end (raw log → parser → stack partition);
//! * [`pipeline`] — the Training and Testing Phases of Section II-B for
//!   the three methods (CGraph, SVM, WSVM);
//! * [`metrics`] — confusion matrices and the ACC/PPV/TPR/TNR/NPV
//!   measures of Section V-B;
//! * [`experiment`] — randomized-run averaging as in Section V
//!   ("average all results over 10 runs");
//! * [`config`] — pipeline hyper-parameters with paper-faithful defaults;
//! * [`stream`] — an incremental detector for production event streams;
//! * [`error`] — the unified [`LeapsError`] every fallible layer reports
//!   through, with per-family process exit codes.
//!
//! # Quickstart
//!
//! ```no_run
//! use leaps_core::experiment::Experiment;
//! use leaps_core::pipeline::Method;
//! use leaps_etw::scenario::Scenario;
//!
//! let experiment = Experiment::fast();
//! let scenario = Scenario::by_name("vim_reverse_tcp").unwrap();
//! let metrics = experiment.run(scenario, Method::Wsvm)?;
//! println!("{} WSVM: {metrics}", scenario.name());
//! # Ok::<(), leaps_core::error::LeapsError>(())
//! ```

/// Thread-fan-out helpers (`par_map`, `par_chunks`, `LEAPS_THREADS`
/// handling), re-exported from the bottom-level `leaps-par` crate so
/// pipeline users configure parallelism through one facade.
pub use leaps_par as par;

pub mod config;
pub mod dataset;
pub mod error;
pub mod experiment;
pub mod metrics;
pub mod persist;
pub mod pipeline;
pub mod stream;
pub mod universal;

pub use config::PipelineConfig;
pub use dataset::Dataset;
pub use error::LeapsError;
pub use experiment::Experiment;
pub use metrics::{ConfusionMatrix, Metrics};
pub use pipeline::{train_classifier, try_train_classifier, Classifier, Method};
pub use stream::{StreamDetector, StreamStats, Verdict};
