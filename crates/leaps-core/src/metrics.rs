//! Confusion-matrix bookkeeping and the five effectiveness measures of
//! Section V-B.
//!
//! The paper's convention: **positive = benign**, **negative =
//! malicious**. So TP is a benign sample classified benign, TN a
//! malicious sample classified malicious, FP a malicious sample
//! misclassified benign, FN a benign sample misclassified malicious.

use std::fmt;
use std::ops::AddAssign;

/// Raw classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Benign samples classified benign.
    pub tp: usize,
    /// Malicious samples classified malicious.
    pub tn: usize,
    /// Malicious samples misclassified benign.
    pub fp: usize,
    /// Benign samples misclassified malicious.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Records one benign test sample's outcome.
    pub fn record_benign(&mut self, predicted_benign: bool) {
        if predicted_benign {
            self.tp += 1;
        } else {
            self.fn_ += 1;
        }
    }

    /// Records one malicious test sample's outcome.
    pub fn record_malicious(&mut self, predicted_malicious: bool) {
        if predicted_malicious {
            self.tn += 1;
        } else {
            self.fp += 1;
        }
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn total(&self) -> usize {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Derives the five measures. Undefined ratios (zero denominators)
    /// are reported as 0.
    #[must_use]
    pub fn metrics(&self) -> Metrics {
        let ratio = |num: usize, den: usize| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        Metrics {
            acc: ratio(self.tp + self.tn, self.total()),
            ppv: ratio(self.tp, self.tp + self.fp),
            tpr: ratio(self.tp, self.tp + self.fn_),
            tnr: ratio(self.tn, self.tn + self.fp),
            npv: ratio(self.tn, self.tn + self.fn_),
        }
    }
}

impl AddAssign for ConfusionMatrix {
    fn add_assign(&mut self, rhs: ConfusionMatrix) {
        self.tp += rhs.tp;
        self.tn += rhs.tn;
        self.fp += rhs.fp;
        self.fn_ += rhs.fn_;
    }
}

/// The five measures of Section V-B (Eq. 6–10).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Metrics {
    /// Accuracy: `(TP + TN) / total`.
    pub acc: f64,
    /// Positive predictive value (precision): `TP / (TP + FP)`.
    pub ppv: f64,
    /// True positive rate (recall): `TP / (TP + FN)`.
    pub tpr: f64,
    /// True negative rate (specificity): `TN / (TN + FP)`.
    pub tnr: f64,
    /// Negative predictive value: `TN / (TN + FN)`.
    pub npv: f64,
}

impl Metrics {
    /// Element-wise mean of several runs' metrics ("we average all results
    /// over 10 runs").
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    #[must_use]
    pub fn mean(runs: &[Metrics]) -> Metrics {
        assert!(!runs.is_empty(), "cannot average zero runs");
        let n = runs.len() as f64;
        Metrics {
            acc: runs.iter().map(|m| m.acc).sum::<f64>() / n,
            ppv: runs.iter().map(|m| m.ppv).sum::<f64>() / n,
            tpr: runs.iter().map(|m| m.tpr).sum::<f64>() / n,
            tnr: runs.iter().map(|m| m.tnr).sum::<f64>() / n,
            npv: runs.iter().map(|m| m.npv).sum::<f64>() / n,
        }
    }

    /// The measures as `(name, value)` pairs in Table I column order.
    #[must_use]
    pub fn named(&self) -> [(&'static str, f64); 5] {
        [
            ("ACC", self.acc),
            ("PPV", self.ppv),
            ("TPR", self.tpr),
            ("TNR", self.tnr),
            ("NPV", self.npv),
        ]
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACC={:.3} PPV={:.3} TPR={:.3} TNR={:.3} NPV={:.3}",
            self.acc, self.ppv, self.tpr, self.tnr, self.npv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_updates_the_right_cells() {
        let mut cm = ConfusionMatrix::default();
        cm.record_benign(true);
        cm.record_benign(false);
        cm.record_malicious(true);
        cm.record_malicious(false);
        assert_eq!(cm, ConfusionMatrix { tp: 1, fn_: 1, tn: 1, fp: 1 });
        assert_eq!(cm.total(), 4);
    }

    #[test]
    fn metrics_match_paper_formulas() {
        let cm = ConfusionMatrix { tp: 8, tn: 6, fp: 2, fn_: 4 };
        let m = cm.metrics();
        assert!((m.acc - 14.0 / 20.0).abs() < 1e-12);
        assert!((m.ppv - 8.0 / 10.0).abs() < 1e-12);
        assert!((m.tpr - 8.0 / 12.0).abs() < 1e-12);
        assert!((m.tnr - 6.0 / 8.0).abs() < 1e-12);
        assert!((m.npv - 6.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_yield_zero() {
        let m = ConfusionMatrix::default().metrics();
        assert_eq!(m, Metrics::default());
    }

    #[test]
    fn perfect_classifier_scores_one_everywhere() {
        let cm = ConfusionMatrix { tp: 5, tn: 5, fp: 0, fn_: 0 };
        let m = cm.metrics();
        for (_, v) in m.named() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn mean_averages_componentwise() {
        let a = Metrics { acc: 0.8, ppv: 0.6, tpr: 0.4, tnr: 0.2, npv: 0.0 };
        let b = Metrics { acc: 0.6, ppv: 0.8, tpr: 0.6, tnr: 0.4, npv: 0.2 };
        let m = Metrics::mean(&[a, b]);
        assert!((m.acc - 0.7).abs() < 1e-12);
        assert!((m.ppv - 0.7).abs() < 1e-12);
        assert!((m.npv - 0.1).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = ConfusionMatrix { tp: 1, tn: 2, fp: 3, fn_: 4 };
        a += ConfusionMatrix { tp: 10, tn: 20, fp: 30, fn_: 40 };
        assert_eq!(a, ConfusionMatrix { tp: 11, tn: 22, fp: 33, fn_: 44 });
    }

    #[test]
    fn display_is_compact() {
        let s = ConfusionMatrix { tp: 1, tn: 1, fp: 0, fn_: 0 }.metrics().to_string();
        assert!(s.contains("ACC=1.000"));
    }
}
