//! Model persistence: save a trained [`Classifier`] to a versioned,
//! dependency-free text format and load it back — so a deployment trains
//! once in the controlled environment and detects forever after
//! (`leaps train` / `leaps detect --model`).
//!
//! The format is line-oriented `LEAPS-MODEL v1`: one record per line,
//! space-separated tokens. Symbols (`module!function`) and set members
//! never contain whitespace, and floats are written with Rust's `{:?}`
//! (shortest round-trip representation), so parsing is exact.
//!
//! # Crash-safe writes
//!
//! [`save_classifier_to`] (and the lower-level [`write_atomic`]) never
//! expose a half-written model file: the bytes go to a dot-prefixed
//! temporary in the *same directory* ([`temp_path_for`]), are fsynced,
//! and only then renamed over the destination — an atomic operation on
//! POSIX filesystems — followed by a directory fsync so the rename
//! itself survives power loss. A `SIGKILL` (or crash, or full disk) at
//! any instant leaves either the complete old file or the complete new
//! file at the visible path, plus at worst a stale temporary that the
//! next save of the same path reclaims. Dot-prefixed temporaries are
//! invisible to the model registry, whose name validation rejects
//! leading dots.

use crate::error::LeapsError;
use crate::pipeline::{Classifier, HmmDetector, SvmClassifier};
use leaps_cgraph::classify::CallGraphClassifier;
use leaps_cgraph::graph::CallGraph;
use leaps_cluster::assign::ClusterAssigner;
use leaps_cluster::features::{CutRule, FeatureEncoder, PreprocessConfig};
use leaps_cluster::hier::Linkage;
use leaps_hmm::classify::{HmmClassifier, SymbolTable};
use leaps_hmm::hmm::Hmm;
use leaps_svm::kernel::Kernel;
use leaps_svm::model::SvmModel;
use std::error::Error;
use std::fmt;

/// Magic first line of a model file.
pub const MODEL_HEADER: &str = "# LEAPS-MODEL v1";

/// Errors loading a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Missing or wrong header line.
    BadHeader,
    /// A record is malformed.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file ended before the model was complete.
    Truncated,
    /// A model error with the offending file named — what path-aware
    /// loaders ([`load_classifier_file`]) report, so a torn or corrupt
    /// model file is diagnosed in one line that names the file.
    InFile {
        /// The model file that failed to load.
        path: String,
        /// The underlying error.
        inner: Box<ModelError>,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadHeader => write!(f, "missing `{MODEL_HEADER}` header"),
            ModelError::BadRecord { line, reason } => {
                write!(f, "bad model record at line {line}: {reason}")
            }
            ModelError::Truncated => write!(f, "model file ended unexpectedly"),
            ModelError::InFile { path, inner } => write!(f, "{path}: {inner}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::InFile { inner, .. } => Some(inner),
            _ => None,
        }
    }
}

/// Serializes a classifier to the text model format.
#[must_use]
pub fn save_classifier(classifier: &Classifier) -> String {
    let mut out = String::new();
    out.push_str(MODEL_HEADER);
    out.push('\n');
    match classifier {
        Classifier::CGraph(model) => {
            out.push_str("kind cgraph\n");
            write_call_graph(&mut out, "bcg", model.bcg());
            write_call_graph(&mut out, "mcg", model.mcg());
        }
        Classifier::Svm(svm) => {
            out.push_str("kind svm\n");
            write_svm(&mut out, svm);
        }
        Classifier::Hmm(hmm) => {
            out.push_str("kind hmm\n");
            write_hmm(&mut out, hmm);
        }
    }
    out
}

/// Parses a classifier from the text model format.
///
/// # Errors
///
/// Returns [`ModelError`] on malformed input.
pub fn load_classifier(text: &str) -> Result<Classifier, ModelError> {
    let mut lines = Lines::new(text);
    if lines.next_line() != Some(MODEL_HEADER) {
        return Err(ModelError::BadHeader);
    }
    let kind_line = lines.expect_prefixed("kind")?;
    match kind_line {
        "cgraph" => {
            let bcg = read_call_graph(&mut lines, "bcg")?;
            let mcg = read_call_graph(&mut lines, "mcg")?;
            Ok(Classifier::CGraph(CallGraphClassifier::from_parts(bcg, mcg)))
        }
        "svm" => Ok(Classifier::Svm(read_svm(&mut lines)?)),
        "hmm" => Ok(Classifier::Hmm(read_hmm(&mut lines)?)),
        other => Err(lines.bad(format!("unknown model kind {other:?}"))),
    }
}

// ----------------------------------------------------------- file helpers

/// The temporary path [`write_atomic`] stages bytes at before renaming
/// them over `path`: `.<file-name>.tmp` in the same directory (same
/// filesystem, so the rename is atomic; dot-prefixed, so registry name
/// validation never serves it as a model).
#[must_use]
pub fn temp_path_for(path: &std::path::Path) -> std::path::PathBuf {
    let name = path.file_name().map_or_else(|| "model".into(), std::ffi::OsStr::to_os_string);
    let mut temp_name = std::ffi::OsString::from(".");
    temp_name.push(name);
    temp_name.push(".tmp");
    path.with_file_name(temp_name)
}

/// Writes `contents` to `path` crash-safely: stage at
/// [`temp_path_for`]`(path)`, fsync, rename over `path`, fsync the
/// directory. A crash (including `SIGKILL`) at any point leaves the
/// visible path either untouched or fully written — never torn. A stale
/// temporary left by an earlier crash is silently reclaimed.
///
/// # Errors
///
/// [`LeapsError::Io`] naming the path that failed.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> Result<(), LeapsError> {
    use std::io::Write;
    let temp = temp_path_for(path);
    let io_err =
        |p: &std::path::Path, e: &std::io::Error| LeapsError::io(p.display().to_string(), e);
    let result = (|| {
        let mut file = std::fs::File::create(&temp).map_err(|e| io_err(&temp, &e))?;
        file.write_all(contents.as_bytes()).map_err(|e| io_err(&temp, &e))?;
        // The data must be durable *before* the rename publishes it,
        // or a power cut could leave a fully-renamed empty file.
        file.sync_all().map_err(|e| io_err(&temp, &e))?;
        drop(file);
        std::fs::rename(&temp, path).map_err(|e| io_err(path, &e))?;
        // Persist the rename itself (the directory entry).
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&temp);
    }
    result
}

/// Saves a classifier to `path` via the crash-safe [`write_atomic`]
/// protocol — the save `leaps train` and every other model writer
/// should use, so a kill mid-save never leaves a torn model file.
///
/// # Errors
///
/// [`LeapsError::Io`] naming the path that failed.
pub fn save_classifier_to(
    path: &std::path::Path,
    classifier: &Classifier,
) -> Result<(), LeapsError> {
    write_atomic(path, &save_classifier(classifier))
}

/// Loads a classifier from a model file, naming the file in every
/// error: read failures are [`LeapsError::Io`], parse failures are
/// [`LeapsError::Model`] wrapping [`ModelError::InFile`] — so a torn or
/// truncated model file is a one-line diagnosis (CLI exit code 4), not
/// a panic.
///
/// # Errors
///
/// [`LeapsError::Io`] or [`LeapsError::Model`], both naming `path`.
pub fn load_classifier_file(path: &std::path::Path) -> Result<Classifier, LeapsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LeapsError::io(path.display().to_string(), &e))?;
    load_classifier(&text).map_err(|inner| {
        LeapsError::Model(ModelError::InFile {
            path: path.display().to_string(),
            inner: Box::new(inner),
        })
    })
}

// ---------------------------------------------------------------- writing

fn write_call_graph(out: &mut String, tag: &str, graph: &CallGraph) {
    let mut edges: Vec<(String, String)> =
        graph.edges().map(|(a, b)| (a.to_owned(), b.to_owned())).collect();
    edges.sort();
    let mut chains: Vec<Vec<String>> = graph.chains().map(<[String]>::to_vec).collect();
    chains.sort();
    out.push_str(&format!("{tag}_edges {}\n", edges.len()));
    for (a, b) in edges {
        out.push_str(&format!("edge {a} {b}\n"));
    }
    out.push_str(&format!("{tag}_chains {}\n", chains.len()));
    for chain in chains {
        out.push_str("chain ");
        out.push_str(&chain.join(" "));
        out.push('\n');
    }
}

fn write_kernel(out: &mut String, kernel: Kernel) {
    match kernel {
        Kernel::Linear => out.push_str("kernel linear\n"),
        Kernel::Gaussian { sigma2 } => out.push_str(&format!("kernel gaussian {sigma2:?}\n")),
        Kernel::Polynomial { degree, coef0 } => {
            out.push_str(&format!("kernel poly {degree} {coef0:?}\n"));
        }
    }
}

fn write_encoder(out: &mut String, encoder: &FeatureEncoder) {
    let config = encoder.config();
    let (cut_kind, cut_val) = match config.cut {
        CutRule::Distance(d) => ("distance", format!("{d:?}")),
        CutRule::Count(k) => ("count", k.to_string()),
    };
    let linkage = match config.linkage {
        Linkage::Average => "average",
        Linkage::Single => "single",
        Linkage::Complete => "complete",
    };
    out.push_str(&format!(
        "encoder {linkage} {cut_kind} {cut_val} {} {} {}\n",
        config.window, config.stride, config.max_vocab
    ));
    let (lib, func) = encoder.parts();
    write_assigner(out, "lib", lib);
    write_assigner(out, "func", func);
}

fn write_assigner(out: &mut String, tag: &str, assigner: &ClusterAssigner<String>) {
    out.push_str(&format!("{tag}_vocab {}\n", assigner.members().len()));
    for (set, &label) in assigner.members().iter().zip(assigner.labels()) {
        out.push_str(&format!("set {label} "));
        out.push_str(&set.join(" "));
        out.push('\n');
    }
}

fn write_svm(out: &mut String, svm: &SvmClassifier) {
    out.push_str(&format!("tuned {:?} {:?}\n", svm.tuned.0, svm.tuned.1));
    write_kernel(out, svm.model.kernel());
    out.push_str(&format!("bias {:?}\n", svm.model.bias()));
    out.push_str(&format!("sv_count {}\n", svm.model.support_vector_count()));
    for (alpha_y, sv) in svm.model.dual_coefficients() {
        out.push_str(&format!("sv {alpha_y:?}"));
        for v in sv {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
    write_encoder(out, &svm.encoder);
}

fn write_hmm_model(out: &mut String, tag: &str, model: &Hmm) {
    out.push_str(&format!("{tag} {} {}\n", model.state_count(), model.symbol_count()));
    let (pi, a, b) = model.parts();
    for (name, values) in [("pi", pi), ("a", a), ("b", b)] {
        out.push_str(name);
        for v in values {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
}

fn write_hmm(out: &mut String, hmm: &HmmDetector) {
    let (clf, encoder, table) = hmm.parts();
    write_encoder(out, encoder);
    let mut entries: Vec<((u32, u32, u32), usize)> =
        table.entries().map(|(&k, v)| (k, v)).collect();
    entries.sort();
    out.push_str(&format!("symbols {}\n", entries.len()));
    for ((e, l, f), id) in entries {
        out.push_str(&format!("sym {id} {e} {l} {f}\n"));
    }
    write_hmm_model(out, "benign_hmm", clf.benign_model());
    write_hmm_model(out, "mixed_hmm", clf.mixed_model());
}

// ---------------------------------------------------------------- reading

struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines { iter: text.lines(), line_no: 0 }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        self.line_no += 1;
        self.iter.next()
    }

    fn bad(&self, reason: String) -> ModelError {
        ModelError::BadRecord { line: self.line_no, reason }
    }

    /// Reads the next line and strips `"{prefix} "`.
    fn expect_prefixed(&mut self, prefix: &str) -> Result<&'a str, ModelError> {
        let line = self.next_line().ok_or(ModelError::Truncated)?;
        line.strip_prefix(prefix)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| self.bad(format!("expected `{prefix} ...`, got {line:?}")))
    }

    fn parse<T: std::str::FromStr>(&self, token: &str, what: &str) -> Result<T, ModelError> {
        token.parse().map_err(|_| self.bad(format!("invalid {what}: {token:?}")))
    }

    /// Parses a record count, bounding it so a corrupted count cannot
    /// drive a multi-gigabyte pre-allocation before the missing records
    /// are noticed.
    fn parse_count(&self, token: &str, what: &str) -> Result<usize, ModelError> {
        const MAX_COUNT: usize = 1 << 24;
        let n: usize = self.parse(token, what)?;
        if n > MAX_COUNT {
            return Err(self.bad(format!("implausible {what} {n} (max {MAX_COUNT})")));
        }
        Ok(n)
    }
}

fn read_call_graph(lines: &mut Lines<'_>, tag: &str) -> Result<CallGraph, ModelError> {
    let n_edges: usize = {
        let rest = lines.expect_prefixed(&format!("{tag}_edges"))?;
        lines.parse_count(rest, "edge count")?
    };
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let rest = lines.expect_prefixed("edge")?;
        let mut parts = rest.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(lines.bad("edge needs exactly two symbols".into()));
        };
        edges.push((a.to_owned(), b.to_owned()));
    }
    let n_chains: usize = {
        let rest = lines.expect_prefixed(&format!("{tag}_chains"))?;
        lines.parse_count(rest, "chain count")?
    };
    let mut chains = Vec::with_capacity(n_chains);
    for _ in 0..n_chains {
        let rest = lines.expect_prefixed("chain")?;
        chains.push(rest.split_whitespace().map(str::to_owned).collect());
    }
    Ok(CallGraph::from_parts(edges, chains))
}

fn read_kernel(lines: &mut Lines<'_>) -> Result<Kernel, ModelError> {
    let rest = lines.expect_prefixed("kernel")?;
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("linear") => Ok(Kernel::Linear),
        Some("gaussian") => {
            let sigma2 = lines.parse(
                parts.next().ok_or_else(|| lines.bad("gaussian needs sigma2".into()))?,
                "sigma2",
            )?;
            Ok(Kernel::Gaussian { sigma2 })
        }
        Some("poly") => {
            let degree = lines.parse(
                parts.next().ok_or_else(|| lines.bad("poly needs degree".into()))?,
                "degree",
            )?;
            let coef0 = lines.parse(
                parts.next().ok_or_else(|| lines.bad("poly needs coef0".into()))?,
                "coef0",
            )?;
            Ok(Kernel::Polynomial { degree, coef0 })
        }
        other => Err(lines.bad(format!("unknown kernel {other:?}"))),
    }
}

fn read_encoder(lines: &mut Lines<'_>) -> Result<FeatureEncoder, ModelError> {
    let rest = lines.expect_prefixed("encoder")?;
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    let [linkage, cut_kind, cut_val, window, stride, max_vocab] = tokens.as_slice() else {
        return Err(lines.bad("encoder needs 6 fields".into()));
    };
    let linkage = match *linkage {
        "average" => Linkage::Average,
        "single" => Linkage::Single,
        "complete" => Linkage::Complete,
        other => return Err(lines.bad(format!("unknown linkage {other:?}"))),
    };
    let cut = match *cut_kind {
        "distance" => CutRule::Distance(lines.parse(cut_val, "cut distance")?),
        "count" => CutRule::Count(lines.parse(cut_val, "cut count")?),
        other => return Err(lines.bad(format!("unknown cut rule {other:?}"))),
    };
    let config = PreprocessConfig {
        linkage,
        cut,
        window: lines.parse(window, "window")?,
        stride: lines.parse(stride, "stride")?,
        max_vocab: lines.parse(max_vocab, "max_vocab")?,
    };
    let lib = read_assigner(lines, "lib")?;
    let func = read_assigner(lines, "func")?;
    Ok(FeatureEncoder::from_parts(lib, func, config))
}

fn read_assigner(lines: &mut Lines<'_>, tag: &str) -> Result<ClusterAssigner<String>, ModelError> {
    let n: usize = {
        let rest = lines.expect_prefixed(&format!("{tag}_vocab"))?;
        lines.parse_count(rest, "vocab size")?
    };
    let mut members = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = lines.expect_prefixed("set")?;
        let mut parts = rest.split_whitespace();
        let label = lines.parse(
            parts.next().ok_or_else(|| lines.bad("set needs a label".into()))?,
            "cluster label",
        )?;
        labels.push(label);
        members.push(parts.map(str::to_owned).collect());
    }
    if members.is_empty() {
        return Err(lines.bad("empty vocabulary".into()));
    }
    Ok(ClusterAssigner::new(members, labels))
}

fn read_svm(lines: &mut Lines<'_>) -> Result<SvmClassifier, ModelError> {
    let rest = lines.expect_prefixed("tuned")?;
    let mut parts = rest.split_whitespace();
    let lambda: f64 = lines
        .parse(parts.next().ok_or_else(|| lines.bad("tuned needs lambda".into()))?, "lambda")?;
    let sigma2: f64 = lines
        .parse(parts.next().ok_or_else(|| lines.bad("tuned needs sigma2".into()))?, "sigma2")?;
    let kernel = read_kernel(lines)?;
    let bias: f64 = {
        let rest = lines.expect_prefixed("bias")?;
        lines.parse(rest, "bias")?
    };
    let n: usize = {
        let rest = lines.expect_prefixed("sv_count")?;
        lines.parse_count(rest, "support vector count")?
    };
    let mut support = Vec::with_capacity(n);
    let mut alpha_y = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = lines.expect_prefixed("sv")?;
        let mut values = rest.split_whitespace();
        let ay: f64 = lines
            .parse(values.next().ok_or_else(|| lines.bad("sv needs alpha_y".into()))?, "alpha_y")?;
        let x: Result<Vec<f64>, ModelError> =
            values.map(|v| lines.parse(v, "feature value")).collect();
        alpha_y.push(ay);
        support.push(x?);
    }
    if let Some(first) = support.first() {
        let dim = first.len();
        if support.iter().any(|sv| sv.len() != dim) {
            return Err(lines.bad("support vectors have inconsistent dimensions".into()));
        }
    }
    let encoder = read_encoder(lines)?;
    Ok(SvmClassifier {
        model: SvmModel::from_parts(support, alpha_y, bias, kernel),
        encoder,
        tuned: (lambda, sigma2),
    })
}

fn read_hmm_model(lines: &mut Lines<'_>, tag: &str) -> Result<Hmm, ModelError> {
    let rest = lines.expect_prefixed(tag)?;
    let mut parts = rest.split_whitespace();
    let states: usize = lines
        .parse_count(parts.next().ok_or_else(|| lines.bad("hmm needs states".into()))?, "states")?;
    let symbols: usize = lines.parse_count(
        parts.next().ok_or_else(|| lines.bad("hmm needs symbols".into()))?,
        "symbols",
    )?;
    let mut matrices = Vec::with_capacity(3);
    for (name, expected) in [("pi", states), ("a", states * states), ("b", states * symbols)] {
        let rest = lines.expect_prefixed(name)?;
        let values: Result<Vec<f64>, ModelError> =
            rest.split_whitespace().map(|v| lines.parse(v, "probability")).collect();
        let values = values?;
        if values.len() != expected {
            return Err(
                lines.bad(format!("{name} has {} values, expected {expected}", values.len()))
            );
        }
        matrices.push(values);
    }
    let b = matrices.pop().expect("pushed above");
    let a = matrices.pop().expect("pushed above");
    let pi = matrices.pop().expect("pushed above");
    Ok(Hmm::from_parts(states, symbols, pi, a, b))
}

fn read_hmm(lines: &mut Lines<'_>) -> Result<HmmDetector, ModelError> {
    let encoder = read_encoder(lines)?;
    let n: usize = {
        let rest = lines.expect_prefixed("symbols")?;
        lines.parse_count(rest, "symbol count")?
    };
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = lines.expect_prefixed("sym")?;
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let [id, e, l, f] = tokens.as_slice() else {
            return Err(lines.bad("sym needs 4 fields".into()));
        };
        entries.push((
            (
                lines.parse(e, "event type")?,
                lines.parse(l, "lib cluster")?,
                lines.parse(f, "func cluster")?,
            ),
            lines.parse(id, "symbol id")?,
        ));
    }
    // `SymbolTable::from_entries` requires dense ids and unique tuples;
    // validate here so corrupt files get a diagnosis instead of a panic.
    let mut seen = vec![false; n];
    let mut uniq = std::collections::HashSet::new();
    for &(key, id) in &entries {
        if id >= n || seen[id] || !uniq.insert(key) {
            return Err(lines.bad(format!("symbol table entries are not dense at id {id}")));
        }
        seen[id] = true;
    }
    let table = SymbolTable::from_entries(entries);
    let benign = read_hmm_model(lines, "benign_hmm")?;
    let mixed = read_hmm_model(lines, "mixed_hmm")?;
    Ok(HmmDetector::from_parts(HmmClassifier::from_parts(benign, mixed), encoder, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::Dataset;
    use crate::pipeline::{train_classifier, Method};
    use leaps_etw::scenario::{GenParams, Scenario};

    fn dataset() -> Dataset {
        Dataset::materialize(Scenario::by_name("vim_reverse_tcp").unwrap(), &GenParams::small(), 7)
            .unwrap()
    }

    fn roundtrip(method: Method) {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 7);
        let original = train_classifier(method, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&original);
        assert!(text.starts_with(MODEL_HEADER));
        let loaded = load_classifier(&text).expect("roundtrip parse");

        // The loaded classifier must make byte-identical decisions.
        let original_cm = original.evaluate(&test, &d.malicious);
        let loaded_cm = loaded.evaluate(&test, &d.malicious);
        assert_eq!(original_cm, loaded_cm, "{method:?} decisions diverged");

        // And re-saving must be a fixed point.
        assert_eq!(save_classifier(&loaded), text, "{method:?} not canonical");
    }

    #[test]
    fn cgraph_roundtrips() {
        roundtrip(Method::CGraph);
    }

    #[test]
    fn wsvm_roundtrips() {
        roundtrip(Method::Wsvm);
    }

    #[test]
    fn hmm_roundtrips() {
        roundtrip(Method::Hmm);
    }

    #[test]
    fn streaming_detector_works_on_loaded_model() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let original = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let loaded = load_classifier(&save_classifier(&original)).unwrap();
        let mut detector = crate::stream::StreamDetector::new(loaded);
        let verdicts = detector.push_all(d.malicious.iter().cloned());
        let flagged = verdicts.iter().filter(|v| !v.benign).count();
        assert!(flagged * 2 > verdicts.len(), "{flagged}/{}", verdicts.len());
    }

    #[test]
    fn malformed_inputs_are_diagnosed() {
        assert!(matches!(load_classifier(""), Err(ModelError::BadHeader)));
        assert!(matches!(load_classifier("# LEAPS-MODEL v1\n"), Err(ModelError::Truncated)));
        let bad_kind = load_classifier("# LEAPS-MODEL v1\nkind forest\n");
        assert!(matches!(bad_kind, Err(ModelError::BadRecord { line: 2, .. })));
        let bad_record = load_classifier("# LEAPS-MODEL v1\nkind cgraph\nnope\n");
        assert!(matches!(bad_record, Err(ModelError::BadRecord { .. })));
    }

    #[test]
    fn truncated_svm_is_diagnosed_not_panicking() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&clf);
        // Chop the file at 60% and expect a clean error.
        let cut = &text[..text.len() * 6 / 10];
        let cut = &cut[..cut.rfind('\n').unwrap() + 1];
        assert!(load_classifier(cut).is_err());
    }

    #[test]
    fn ragged_support_vectors_are_rejected() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&clf);
        // Drop the last value of the first support-vector line.
        let corrupted: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("sv ") {
                    l.rsplit_once(' ').map(|(head, _)| head.to_owned()).unwrap()
                } else {
                    l.to_owned()
                }
            })
            .collect();
        let corrupted = corrupted.join("\n");
        // Only corrupt one line: restore all but the first `sv `.
        let mut fixed = Vec::new();
        let mut corrupted_one = false;
        for (orig, maybe) in text.lines().zip(corrupted.lines()) {
            if orig.starts_with("sv ") && !corrupted_one {
                fixed.push(maybe.to_owned());
                corrupted_one = true;
            } else {
                fixed.push(orig.to_owned());
            }
        }
        let err = load_classifier(&fixed.join("\n")).unwrap_err();
        assert!(err.to_string().contains("inconsistent dimensions"), "{err}");
    }

    #[test]
    fn implausible_counts_are_rejected_before_allocation() {
        let text = "# LEAPS-MODEL v1\nkind cgraph\nbcg_edges 999999999999\n";
        let err = load_classifier(text).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn corrupted_model_files_never_panic() {
        use leaps_etw::rng::SimRng;
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        for (m, method) in [Method::CGraph, Method::Wsvm, Method::Hmm].into_iter().enumerate() {
            let clf = train_classifier(method, &train, &d.mixed, &PipelineConfig::fast(), 7);
            let text = save_classifier(&clf);
            let mut rng = SimRng::new(0xc0_44 ^ m as u64);
            for _ in 0..40 {
                let mutated = match rng.below(4) {
                    // Truncate at an arbitrary byte (the format is ASCII).
                    0 => text[..rng.below(text.len())].to_owned(),
                    // Delete one line.
                    1 => {
                        let victim = rng.below(text.lines().count());
                        text.lines()
                            .enumerate()
                            .filter(|(i, _)| *i != victim)
                            .map(|(_, l)| l)
                            .collect::<Vec<_>>()
                            .join("\n")
                    }
                    // Duplicate one line.
                    2 => {
                        let victim = rng.below(text.lines().count());
                        let mut lines: Vec<&str> = text.lines().collect();
                        lines.insert(victim, lines[victim]);
                        lines.join("\n")
                    }
                    // Mangle one line: overwrite a token with garbage.
                    _ => {
                        let victim = rng.below(text.lines().count());
                        let lines: Vec<String> = text
                            .lines()
                            .enumerate()
                            .map(|(i, l)| {
                                if i == victim {
                                    let mut tokens: Vec<&str> = l.split_whitespace().collect();
                                    if !tokens.is_empty() {
                                        let t = rng.below(tokens.len());
                                        tokens[t] = "999999999999999999";
                                    }
                                    tokens.join(" ")
                                } else {
                                    l.to_owned()
                                }
                            })
                            .collect();
                        lines.join("\n")
                    }
                };
                // Must return Ok (benign mutation) or a clean Err — never
                // panic, never attempt an absurd allocation.
                let _ = load_classifier(&mutated);
            }
        }
    }

    #[test]
    fn errors_display() {
        assert!(ModelError::BadHeader.to_string().contains("LEAPS-MODEL"));
        let e = ModelError::BadRecord { line: 3, reason: "x".into() };
        assert!(e.to_string().contains("line 3"));
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("leaps-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn temp_path_is_dot_prefixed_sibling() {
        let temp = temp_path_for(std::path::Path::new("/models/cgraph.model"));
        assert_eq!(temp, std::path::Path::new("/models/.cgraph.model.tmp"));
        // Dot prefix means registry name validation can never serve it.
        assert!(temp.file_name().unwrap().to_str().unwrap().starts_with('.'));
    }

    #[test]
    fn atomic_save_leaves_no_temp_and_reclaims_stale_ones() {
        let dir = scratch_dir("atomic");
        let path = dir.join("m.model");
        let temp = temp_path_for(&path);

        // A previous save "killed" mid-write left a stale temp behind.
        std::fs::write(&temp, "torn garbage").unwrap();

        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let original =
            train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 7);
        save_classifier_to(&path, &original).unwrap();

        assert!(!temp.exists(), "temp file must be consumed by the rename");
        let loaded = load_classifier_file(&path).unwrap();
        assert_eq!(save_classifier(&loaded), save_classifier(&original));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_never_touches_the_visible_file() {
        let dir = scratch_dir("interrupted");
        let path = dir.join("m.model");
        std::fs::write(&path, "known good").unwrap();

        // Simulate a save killed after staging but before the rename:
        // only the temp exists alongside the intact old model.
        std::fs::write(temp_path_for(&path), "half-writ").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "known good");

        // And a save that fails outright (target dir missing) cleans up
        // its temp and leaves nothing visible.
        let bad = dir.join("no-such-dir").join("m.model");
        assert!(write_atomic(&bad, "x").is_err());
        assert!(!temp_path_for(&bad).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_model_file_is_a_one_line_model_error_naming_the_file() {
        let dir = scratch_dir("torn");
        let path = dir.join("torn.model");

        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let original =
            train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&original);
        // Truncate mid-file: the classic torn write.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let err = load_classifier_file(&path).unwrap_err();
        assert_eq!(err.exit_code(), 4, "torn model must be exit-code 4, got {err}");
        let message = err.to_string();
        assert!(message.contains("torn.model"), "message must name the file: {message}");
        assert!(!message.contains('\n'), "diagnosis must be one line: {message:?}");

        // Missing file: exit code 6 (I/O), still naming the path.
        let missing = dir.join("absent.model");
        let err = load_classifier_file(&missing).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("absent.model"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
