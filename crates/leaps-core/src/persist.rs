//! Model persistence: save a trained [`Classifier`] to a versioned,
//! dependency-free text format and load it back — so a deployment trains
//! once in the controlled environment and detects forever after
//! (`leaps train` / `leaps detect --model`).
//!
//! The format is line-oriented `LEAPS-MODEL v1`: one record per line,
//! space-separated tokens. Symbols (`module!function`) and set members
//! never contain whitespace, and floats are written with Rust's `{:?}`
//! (shortest round-trip representation), so parsing is exact.
//!
//! # Crash-safe writes
//!
//! [`save_classifier_to`] (and the lower-level [`write_atomic`]) never
//! expose a half-written model file: the bytes go to a dot-prefixed
//! temporary in the *same directory* ([`temp_path_for`]), are fsynced,
//! and only then renamed over the destination — an atomic operation on
//! POSIX filesystems — followed by a directory fsync so the rename
//! itself survives power loss. A `SIGKILL` (or crash, or full disk) at
//! any instant leaves either the complete old file or the complete new
//! file at the visible path, plus at worst a stale temporary that the
//! next save of the same path reclaims. Dot-prefixed temporaries are
//! invisible to the model registry, whose name validation rejects
//! leading dots.

use crate::error::LeapsError;
use crate::pipeline::{Classifier, HmmDetector, SvmClassifier};
use leaps_cgraph::classify::CallGraphClassifier;
use leaps_cgraph::graph::CallGraph;
use leaps_cluster::assign::ClusterAssigner;
use leaps_cluster::features::{CutRule, FeatureEncoder, PreprocessConfig};
use leaps_cluster::hier::Linkage;
use leaps_hmm::classify::{HmmClassifier, SymbolTable};
use leaps_hmm::hmm::{Hmm, HmmState};
use leaps_svm::cv::CvState;
use leaps_svm::kernel::Kernel;
use leaps_svm::model::SvmModel;
use leaps_svm::smo::SmoState;
use std::error::Error;
use std::fmt;

/// Magic first line of a model file.
pub const MODEL_HEADER: &str = "# LEAPS-MODEL v1";

/// Errors loading a persisted model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Missing or wrong header line.
    BadHeader,
    /// A record is malformed.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file ended before the model was complete.
    Truncated,
    /// A model error with the offending file named — what path-aware
    /// loaders ([`load_classifier_file`]) report, so a torn or corrupt
    /// model file is diagnosed in one line that names the file.
    InFile {
        /// The model file that failed to load.
        path: String,
        /// The underlying error.
        inner: Box<ModelError>,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadHeader => write!(f, "missing `{MODEL_HEADER}` header"),
            ModelError::BadRecord { line, reason } => {
                write!(f, "bad model record at line {line}: {reason}")
            }
            ModelError::Truncated => write!(f, "model file ended unexpectedly"),
            ModelError::InFile { path, inner } => write!(f, "{path}: {inner}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::InFile { inner, .. } => Some(inner),
            _ => None,
        }
    }
}

/// Serializes a classifier to the text model format.
#[must_use]
pub fn save_classifier(classifier: &Classifier) -> String {
    let mut out = String::new();
    out.push_str(MODEL_HEADER);
    out.push('\n');
    match classifier {
        Classifier::CGraph(model) => {
            out.push_str("kind cgraph\n");
            write_call_graph(&mut out, "bcg", model.bcg());
            write_call_graph(&mut out, "mcg", model.mcg());
        }
        Classifier::Svm(svm) => {
            out.push_str("kind svm\n");
            write_svm(&mut out, svm);
        }
        Classifier::Hmm(hmm) => {
            out.push_str("kind hmm\n");
            write_hmm(&mut out, hmm);
        }
    }
    out
}

/// Parses a classifier from the text model format.
///
/// # Errors
///
/// Returns [`ModelError`] on malformed input.
pub fn load_classifier(text: &str) -> Result<Classifier, ModelError> {
    let mut lines = Lines::new(text);
    if lines.next_line() != Some(MODEL_HEADER) {
        return Err(ModelError::BadHeader);
    }
    let kind_line = lines.expect_prefixed("kind")?;
    match kind_line {
        "cgraph" => {
            let bcg = read_call_graph(&mut lines, "bcg")?;
            let mcg = read_call_graph(&mut lines, "mcg")?;
            Ok(Classifier::CGraph(CallGraphClassifier::from_parts(bcg, mcg)))
        }
        "svm" => Ok(Classifier::Svm(read_svm(&mut lines)?)),
        "hmm" => Ok(Classifier::Hmm(read_hmm(&mut lines)?)),
        other => Err(lines.bad(format!("unknown model kind {other:?}"))),
    }
}

// ----------------------------------------------------------- file helpers

/// The temporary path [`write_atomic`] stages bytes at before renaming
/// them over `path`: `.<file-name>.tmp` in the same directory (same
/// filesystem, so the rename is atomic; dot-prefixed, so registry name
/// validation never serves it as a model).
#[must_use]
pub fn temp_path_for(path: &std::path::Path) -> std::path::PathBuf {
    let name = path.file_name().map_or_else(|| "model".into(), std::ffi::OsStr::to_os_string);
    let mut temp_name = std::ffi::OsString::from(".");
    temp_name.push(name);
    temp_name.push(".tmp");
    path.with_file_name(temp_name)
}

/// Writes `contents` to `path` crash-safely: stage at
/// [`temp_path_for`]`(path)`, fsync, rename over `path`, fsync the
/// directory. A crash (including `SIGKILL`) at any point leaves the
/// visible path either untouched or fully written — never torn. A stale
/// temporary left by an earlier crash is silently reclaimed.
///
/// # Errors
///
/// [`LeapsError::Io`] naming the path that failed.
pub fn write_atomic(path: &std::path::Path, contents: &str) -> Result<(), LeapsError> {
    use std::io::Write;
    let temp = temp_path_for(path);
    let io_err =
        |p: &std::path::Path, e: &std::io::Error| LeapsError::io(p.display().to_string(), e);
    let result = (|| {
        let mut file = std::fs::File::create(&temp).map_err(|e| io_err(&temp, &e))?;
        file.write_all(contents.as_bytes()).map_err(|e| io_err(&temp, &e))?;
        // The data must be durable *before* the rename publishes it,
        // or a power cut could leave a fully-renamed empty file.
        file.sync_all().map_err(|e| io_err(&temp, &e))?;
        drop(file);
        std::fs::rename(&temp, path).map_err(|e| io_err(path, &e))?;
        // Persist the rename itself (the directory entry).
        #[cfg(unix)]
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&temp);
    }
    result
}

/// Saves a classifier to `path` via the crash-safe [`write_atomic`]
/// protocol — the save `leaps train` and every other model writer
/// should use, so a kill mid-save never leaves a torn model file.
///
/// # Errors
///
/// [`LeapsError::Io`] naming the path that failed.
pub fn save_classifier_to(
    path: &std::path::Path,
    classifier: &Classifier,
) -> Result<(), LeapsError> {
    write_atomic(path, &save_classifier(classifier))
}

/// Loads a classifier from a model file, naming the file in every
/// error: read failures are [`LeapsError::Io`], parse failures are
/// [`LeapsError::Model`] wrapping [`ModelError::InFile`] — so a torn or
/// truncated model file is a one-line diagnosis (CLI exit code 4), not
/// a panic.
///
/// # Errors
///
/// [`LeapsError::Io`] or [`LeapsError::Model`], both naming `path`.
pub fn load_classifier_file(path: &std::path::Path) -> Result<Classifier, LeapsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LeapsError::io(path.display().to_string(), &e))?;
    load_classifier(&text).map_err(|inner| {
        LeapsError::Model(ModelError::InFile {
            path: path.display().to_string(),
            inner: Box::new(inner),
        })
    })
}

// ------------------------------------------------------------ checkpoints

/// Magic first line of a checkpoint file.
pub const CKPT_HEADER: &str = "# LEAPS-CKPT v1";

/// A versioned training checkpoint: the resumable state of one training
/// stage, staged to disk with [`write_atomic`] so a kill at any instant
/// leaves either the previous checkpoint or the new one — never a torn
/// file.
///
/// The envelope is stage-agnostic (`LEAPS-CKPT v1`: stage tag,
/// configuration fingerprint, progress counter, RNG state, payload
/// records, `end` marker); the stage-specific payloads are produced and
/// consumed by the converter pairs [`smo_checkpoint`]/[`smo_state`],
/// [`cv_checkpoint`]/[`cv_state`] and [`hmm_checkpoint`]/[`hmm_state`].
/// Floats are written with `{:?}` (shortest round-trip representation),
/// so a state loaded back is bit-identical to the one saved — the
/// foundation of the resume-determinism guarantee (DESIGN.md §13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Which training stage wrote it (`smo`, `cv`, `hmm`).
    pub stage: String,
    /// [`fingerprint64`] of the run configuration (method, seed, input
    /// sizes, hyper-parameters). A resume whose configuration disagrees
    /// is rejected instead of silently diverging.
    pub fingerprint: u64,
    /// Stage-defined progress counter (SMO iterations, completed CV
    /// cells, Baum–Welch iterations).
    pub progress: u64,
    /// The generator state the stage's stochastic choices derive from
    /// (captured via `SimRng::state`); stages whose randomness is fully
    /// re-derived from the seed store the seed-expanded state.
    pub rng: [u64; 4],
    /// Stage-defined payload records (single lines, no newlines).
    pub payload: Vec<String>,
}

/// FNV-1a over a list of string parts, with a separator step between
/// parts so `["ab", "c"]` and `["a", "bc"]` fingerprint differently.
/// Used to fingerprint a training configuration into [`Checkpoint`].
#[must_use]
pub fn fingerprint64(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |byte: u64| {
        h ^= byte;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        for &b in part.as_bytes() {
            step(u64::from(b));
        }
        step(0x100); // out-of-band separator
    }
    h
}

/// Serializes a checkpoint to the text format.
#[must_use]
pub fn save_checkpoint(ckpt: &Checkpoint) -> String {
    let mut out = String::new();
    out.push_str(CKPT_HEADER);
    out.push('\n');
    out.push_str(&format!("stage {}\n", ckpt.stage));
    out.push_str(&format!("fingerprint {}\n", ckpt.fingerprint));
    out.push_str(&format!("progress {}\n", ckpt.progress));
    let [r0, r1, r2, r3] = ckpt.rng;
    out.push_str(&format!("rng {r0} {r1} {r2} {r3}\n"));
    out.push_str(&format!("payload {}\n", ckpt.payload.len()));
    for record in &ckpt.payload {
        out.push_str(&format!("p {record}\n"));
    }
    out.push_str("end\n");
    out
}

/// Parses a checkpoint from the text format.
///
/// # Errors
///
/// Returns [`ModelError`] on malformed input, including a missing `end`
/// marker (a truncation the atomic write protocol makes unreachable in
/// practice, but hand-edited or foreign files get a diagnosis).
pub fn load_checkpoint(text: &str) -> Result<Checkpoint, ModelError> {
    let mut lines = Lines::new(text);
    if lines.next_line() != Some(CKPT_HEADER) {
        return Err(ModelError::BadHeader);
    }
    let stage = lines.expect_prefixed("stage")?.to_owned();
    let fingerprint = {
        let rest = lines.expect_prefixed("fingerprint")?;
        lines.parse(rest, "fingerprint")?
    };
    let progress = {
        let rest = lines.expect_prefixed("progress")?;
        lines.parse(rest, "progress")?
    };
    let rng = {
        let rest = lines.expect_prefixed("rng")?;
        let words: Vec<&str> = rest.split_whitespace().collect();
        let [a, b, c, d] = words.as_slice() else {
            return Err(lines.bad("rng needs 4 words".into()));
        };
        [
            lines.parse(a, "rng word")?,
            lines.parse(b, "rng word")?,
            lines.parse(c, "rng word")?,
            lines.parse(d, "rng word")?,
        ]
    };
    let n: usize = {
        let rest = lines.expect_prefixed("payload")?;
        lines.parse_count(rest, "payload count")?
    };
    let mut payload = Vec::with_capacity(n);
    for _ in 0..n {
        payload.push(lines.expect_prefixed("p")?.to_owned());
    }
    match lines.next_line() {
        Some("end") => Ok(Checkpoint { stage, fingerprint, progress, rng, payload }),
        Some(other) => Err(lines.bad(format!("expected `end`, got {other:?}"))),
        None => Err(ModelError::Truncated),
    }
}

/// Saves a checkpoint to `path` via the crash-safe [`write_atomic`]
/// protocol.
///
/// # Errors
///
/// [`LeapsError::Io`] naming the path that failed.
pub fn save_checkpoint_to(path: &std::path::Path, ckpt: &Checkpoint) -> Result<(), LeapsError> {
    let _span = leaps_obs::span!("ckpt.write");
    let text = save_checkpoint(ckpt);
    leaps_obs::counter!("ckpt.writes").inc();
    leaps_obs::counter!("ckpt.bytes").add(text.len() as u64);
    write_atomic(path, &text)
}

/// Loads a checkpoint from a file, naming the file in every error (like
/// [`load_classifier_file`]).
///
/// # Errors
///
/// [`LeapsError::Io`] or [`LeapsError::Model`], both naming `path`.
pub fn load_checkpoint_file(path: &std::path::Path) -> Result<Checkpoint, LeapsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LeapsError::io(path.display().to_string(), &e))?;
    load_checkpoint(&text).map_err(|inner| {
        LeapsError::Model(ModelError::InFile {
            path: path.display().to_string(),
            inner: Box::new(inner),
        })
    })
}

/// Checks a loaded checkpoint against the stage and configuration
/// fingerprint the caller is about to resume: a mismatch means the
/// checkpoint belongs to a *different* run (other method, seed, data or
/// hyper-parameters) and resuming from it would silently diverge.
///
/// # Errors
///
/// [`ModelError::BadRecord`] describing the mismatch.
pub fn verify_checkpoint(
    ckpt: &Checkpoint,
    stage: &str,
    fingerprint: u64,
) -> Result<(), ModelError> {
    if ckpt.stage != stage {
        return Err(ModelError::BadRecord {
            line: 2,
            reason: format!("checkpoint stage {:?} does not match {stage:?}", ckpt.stage),
        });
    }
    if ckpt.fingerprint != fingerprint {
        return Err(ModelError::BadRecord {
            line: 3,
            reason: format!(
                "checkpoint fingerprint {} does not match this run's {fingerprint} \
                 (different method, seed, data or hyper-parameters)",
                ckpt.fingerprint
            ),
        });
    }
    Ok(())
}

fn float_record(tag: &str, values: &[f64]) -> String {
    let mut line = String::from(tag);
    for v in values {
        line.push_str(&format!(" {v:?}"));
    }
    line
}

/// 1-based line number of payload record `index` in the checkpoint file
/// (header, stage, fingerprint, progress, rng, payload-count precede).
fn payload_line_no(index: usize) -> usize {
    7 + index
}

fn payload_record<'a>(
    ckpt: &'a Checkpoint,
    index: usize,
    tag: &str,
) -> Result<&'a str, ModelError> {
    let record = ckpt.payload.get(index).ok_or(ModelError::Truncated)?;
    if record == tag {
        return Ok("");
    }
    record.strip_prefix(tag).and_then(|r| r.strip_prefix(' ')).ok_or_else(|| {
        ModelError::BadRecord {
            line: payload_line_no(index),
            reason: format!("expected `{tag} ...`, got {record:?}"),
        }
    })
}

fn payload_floats(ckpt: &Checkpoint, index: usize, tag: &str) -> Result<Vec<f64>, ModelError> {
    payload_record(ckpt, index, tag)?
        .split_whitespace()
        .map(|v| {
            v.parse().map_err(|_| ModelError::BadRecord {
                line: payload_line_no(index),
                reason: format!("invalid {tag} value: {v:?}"),
            })
        })
        .collect()
}

/// Packs an SMO solver state ([`SmoState`]) into a checkpoint. SMO is
/// fully deterministic, so `rng` is the seed-expanded generator state of
/// the pipeline run (recorded, never consumed).
#[must_use]
pub fn smo_checkpoint(state: &SmoState, fingerprint: u64, rng: [u64; 4]) -> Checkpoint {
    Checkpoint {
        stage: "smo".into(),
        fingerprint,
        progress: state.iterations as u64,
        rng,
        payload: vec![float_record("alpha", &state.alpha), float_record("grad", &state.grad)],
    }
}

/// Unpacks an SMO checkpoint back into a resumable [`SmoState`].
///
/// # Errors
///
/// [`ModelError`] if the checkpoint is not a well-formed `smo` stage.
pub fn smo_state(ckpt: &Checkpoint) -> Result<SmoState, ModelError> {
    verify_checkpoint(ckpt, "smo", ckpt.fingerprint)?;
    let alpha = payload_floats(ckpt, 0, "alpha")?;
    let grad = payload_floats(ckpt, 1, "grad")?;
    if alpha.len() != grad.len() || alpha.is_empty() {
        return Err(ModelError::BadRecord {
            line: payload_line_no(1),
            reason: format!("alpha/grad length mismatch ({} vs {})", alpha.len(), grad.len()),
        });
    }
    Ok(SmoState { alpha, grad, iterations: ckpt.progress as usize })
}

/// Packs a CV grid-search state ([`CvState`]) into a checkpoint. Cell
/// scores that are `None` (empty/degenerate folds) are encoded as `-`.
#[must_use]
pub fn cv_checkpoint(state: &CvState, fingerprint: u64, rng: [u64; 4]) -> Checkpoint {
    let mut record = String::from("scores");
    for score in &state.scores {
        match score {
            Some(v) => record.push_str(&format!(" {v:?}")),
            None => record.push_str(" -"),
        }
    }
    Checkpoint {
        stage: "cv".into(),
        fingerprint,
        progress: state.scores.len() as u64,
        rng,
        payload: vec![record],
    }
}

/// Unpacks a CV checkpoint back into a resumable [`CvState`].
///
/// # Errors
///
/// [`ModelError`] if the checkpoint is not a well-formed `cv` stage.
pub fn cv_state(ckpt: &Checkpoint) -> Result<CvState, ModelError> {
    verify_checkpoint(ckpt, "cv", ckpt.fingerprint)?;
    let scores: Result<Vec<Option<f64>>, ModelError> = payload_record(ckpt, 0, "scores")?
        .split_whitespace()
        .map(|v| {
            if v == "-" {
                Ok(None)
            } else {
                v.parse().map(Some).map_err(|_| ModelError::BadRecord {
                    line: payload_line_no(0),
                    reason: format!("invalid score: {v:?}"),
                })
            }
        })
        .collect();
    let scores = scores?;
    if scores.len() as u64 != ckpt.progress {
        return Err(ModelError::BadRecord {
            line: payload_line_no(0),
            reason: format!("{} scores but progress says {}", scores.len(), ckpt.progress),
        });
    }
    Ok(CvState { scores })
}

/// Packs a Baum–Welch state ([`HmmState`]) into a checkpoint; the RNG
/// state is the one the state itself carries (captured right after the
/// random π/A/B initialization).
#[must_use]
pub fn hmm_checkpoint(state: &HmmState, fingerprint: u64) -> Checkpoint {
    Checkpoint {
        stage: "hmm".into(),
        fingerprint,
        progress: state.iteration as u64,
        rng: state.rng,
        payload: vec![
            format!("dims {} {}", state.states, state.symbols),
            float_record("pi", &state.pi),
            float_record("a", &state.a),
            float_record("b", &state.b),
        ],
    }
}

/// Unpacks a Baum–Welch checkpoint back into a resumable [`HmmState`].
///
/// # Errors
///
/// [`ModelError`] if the checkpoint is not a well-formed `hmm` stage
/// (wrong matrix dimensions, all-zero RNG state, …).
pub fn hmm_state(ckpt: &Checkpoint) -> Result<HmmState, ModelError> {
    verify_checkpoint(ckpt, "hmm", ckpt.fingerprint)?;
    let dims = payload_record(ckpt, 0, "dims")?;
    let words: Vec<&str> = dims.split_whitespace().collect();
    let bad = |index: usize, reason: String| ModelError::BadRecord {
        line: payload_line_no(index),
        reason,
    };
    let [states, symbols] = words.as_slice() else {
        return Err(bad(0, "dims needs 2 words".into()));
    };
    let parse_dim = |token: &str| -> Result<usize, ModelError> {
        let n: usize =
            token.parse().map_err(|_| bad(0, format!("invalid dimension: {token:?}")))?;
        const MAX_DIM: usize = 1 << 12;
        if n == 0 || n > MAX_DIM {
            return Err(bad(0, format!("implausible dimension {n}")));
        }
        Ok(n)
    };
    let states = parse_dim(states)?;
    let symbols = parse_dim(symbols)?;
    let pi = payload_floats(ckpt, 1, "pi")?;
    let a = payload_floats(ckpt, 2, "a")?;
    let b = payload_floats(ckpt, 3, "b")?;
    for (index, (name, values, expected)) in
        [("pi", &pi, states), ("a", &a, states * states), ("b", &b, states * symbols)]
            .into_iter()
            .enumerate()
    {
        if values.len() != expected {
            return Err(bad(
                index + 1,
                format!("{name} has {} values, expected {expected}", values.len()),
            ));
        }
    }
    if ckpt.rng.iter().all(|&w| w == 0) {
        return Err(bad(0, "all-zero RNG state".into()));
    }
    Ok(HmmState { iteration: ckpt.progress as usize, states, symbols, pi, a, b, rng: ckpt.rng })
}

// ---------------------------------------------------------------- writing

fn write_call_graph(out: &mut String, tag: &str, graph: &CallGraph) {
    let mut edges: Vec<(String, String)> =
        graph.edges().map(|(a, b)| (a.to_owned(), b.to_owned())).collect();
    edges.sort();
    let mut chains: Vec<Vec<String>> = graph.chains().map(<[String]>::to_vec).collect();
    chains.sort();
    out.push_str(&format!("{tag}_edges {}\n", edges.len()));
    for (a, b) in edges {
        out.push_str(&format!("edge {a} {b}\n"));
    }
    out.push_str(&format!("{tag}_chains {}\n", chains.len()));
    for chain in chains {
        out.push_str("chain ");
        out.push_str(&chain.join(" "));
        out.push('\n');
    }
}

fn write_kernel(out: &mut String, kernel: Kernel) {
    match kernel {
        Kernel::Linear => out.push_str("kernel linear\n"),
        Kernel::Gaussian { sigma2 } => out.push_str(&format!("kernel gaussian {sigma2:?}\n")),
        Kernel::Polynomial { degree, coef0 } => {
            out.push_str(&format!("kernel poly {degree} {coef0:?}\n"));
        }
    }
}

fn write_encoder(out: &mut String, encoder: &FeatureEncoder) {
    let config = encoder.config();
    let (cut_kind, cut_val) = match config.cut {
        CutRule::Distance(d) => ("distance", format!("{d:?}")),
        CutRule::Count(k) => ("count", k.to_string()),
    };
    let linkage = match config.linkage {
        Linkage::Average => "average",
        Linkage::Single => "single",
        Linkage::Complete => "complete",
    };
    out.push_str(&format!(
        "encoder {linkage} {cut_kind} {cut_val} {} {} {}\n",
        config.window, config.stride, config.max_vocab
    ));
    let (lib, func) = encoder.parts();
    write_assigner(out, "lib", lib);
    write_assigner(out, "func", func);
}

fn write_assigner(out: &mut String, tag: &str, assigner: &ClusterAssigner<String>) {
    out.push_str(&format!("{tag}_vocab {}\n", assigner.members().len()));
    for (set, &label) in assigner.members().iter().zip(assigner.labels()) {
        out.push_str(&format!("set {label} "));
        out.push_str(&set.join(" "));
        out.push('\n');
    }
}

fn write_svm(out: &mut String, svm: &SvmClassifier) {
    out.push_str(&format!("tuned {:?} {:?}\n", svm.tuned.0, svm.tuned.1));
    write_kernel(out, svm.model.kernel());
    out.push_str(&format!("bias {:?}\n", svm.model.bias()));
    out.push_str(&format!("sv_count {}\n", svm.model.support_vector_count()));
    for (alpha_y, sv) in svm.model.dual_coefficients() {
        out.push_str(&format!("sv {alpha_y:?}"));
        for v in sv {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
    write_encoder(out, &svm.encoder);
}

fn write_hmm_model(out: &mut String, tag: &str, model: &Hmm) {
    out.push_str(&format!("{tag} {} {}\n", model.state_count(), model.symbol_count()));
    let (pi, a, b) = model.parts();
    for (name, values) in [("pi", pi), ("a", a), ("b", b)] {
        out.push_str(name);
        for v in values {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
}

fn write_hmm(out: &mut String, hmm: &HmmDetector) {
    let (clf, encoder, table) = hmm.parts();
    write_encoder(out, encoder);
    let mut entries: Vec<((u32, u32, u32), usize)> =
        table.entries().map(|(&k, v)| (k, v)).collect();
    entries.sort();
    out.push_str(&format!("symbols {}\n", entries.len()));
    for ((e, l, f), id) in entries {
        out.push_str(&format!("sym {id} {e} {l} {f}\n"));
    }
    write_hmm_model(out, "benign_hmm", clf.benign_model());
    write_hmm_model(out, "mixed_hmm", clf.mixed_model());
}

// ---------------------------------------------------------------- reading

struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        Lines { iter: text.lines(), line_no: 0 }
    }

    fn next_line(&mut self) -> Option<&'a str> {
        self.line_no += 1;
        self.iter.next()
    }

    fn bad(&self, reason: String) -> ModelError {
        ModelError::BadRecord { line: self.line_no, reason }
    }

    /// Reads the next line and strips `"{prefix} "`.
    fn expect_prefixed(&mut self, prefix: &str) -> Result<&'a str, ModelError> {
        let line = self.next_line().ok_or(ModelError::Truncated)?;
        line.strip_prefix(prefix)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| self.bad(format!("expected `{prefix} ...`, got {line:?}")))
    }

    fn parse<T: std::str::FromStr>(&self, token: &str, what: &str) -> Result<T, ModelError> {
        token.parse().map_err(|_| self.bad(format!("invalid {what}: {token:?}")))
    }

    /// Parses a record count, bounding it so a corrupted count cannot
    /// drive a multi-gigabyte pre-allocation before the missing records
    /// are noticed.
    fn parse_count(&self, token: &str, what: &str) -> Result<usize, ModelError> {
        const MAX_COUNT: usize = 1 << 24;
        let n: usize = self.parse(token, what)?;
        if n > MAX_COUNT {
            return Err(self.bad(format!("implausible {what} {n} (max {MAX_COUNT})")));
        }
        Ok(n)
    }
}

fn read_call_graph(lines: &mut Lines<'_>, tag: &str) -> Result<CallGraph, ModelError> {
    let n_edges: usize = {
        let rest = lines.expect_prefixed(&format!("{tag}_edges"))?;
        lines.parse_count(rest, "edge count")?
    };
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let rest = lines.expect_prefixed("edge")?;
        let mut parts = rest.split_whitespace();
        let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(lines.bad("edge needs exactly two symbols".into()));
        };
        edges.push((a.to_owned(), b.to_owned()));
    }
    let n_chains: usize = {
        let rest = lines.expect_prefixed(&format!("{tag}_chains"))?;
        lines.parse_count(rest, "chain count")?
    };
    let mut chains = Vec::with_capacity(n_chains);
    for _ in 0..n_chains {
        let rest = lines.expect_prefixed("chain")?;
        chains.push(rest.split_whitespace().map(str::to_owned).collect());
    }
    Ok(CallGraph::from_parts(edges, chains))
}

fn read_kernel(lines: &mut Lines<'_>) -> Result<Kernel, ModelError> {
    let rest = lines.expect_prefixed("kernel")?;
    let mut parts = rest.split_whitespace();
    match parts.next() {
        Some("linear") => Ok(Kernel::Linear),
        Some("gaussian") => {
            let sigma2 = lines.parse(
                parts.next().ok_or_else(|| lines.bad("gaussian needs sigma2".into()))?,
                "sigma2",
            )?;
            Ok(Kernel::Gaussian { sigma2 })
        }
        Some("poly") => {
            let degree = lines.parse(
                parts.next().ok_or_else(|| lines.bad("poly needs degree".into()))?,
                "degree",
            )?;
            let coef0 = lines.parse(
                parts.next().ok_or_else(|| lines.bad("poly needs coef0".into()))?,
                "coef0",
            )?;
            Ok(Kernel::Polynomial { degree, coef0 })
        }
        other => Err(lines.bad(format!("unknown kernel {other:?}"))),
    }
}

fn read_encoder(lines: &mut Lines<'_>) -> Result<FeatureEncoder, ModelError> {
    let rest = lines.expect_prefixed("encoder")?;
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    let [linkage, cut_kind, cut_val, window, stride, max_vocab] = tokens.as_slice() else {
        return Err(lines.bad("encoder needs 6 fields".into()));
    };
    let linkage = match *linkage {
        "average" => Linkage::Average,
        "single" => Linkage::Single,
        "complete" => Linkage::Complete,
        other => return Err(lines.bad(format!("unknown linkage {other:?}"))),
    };
    let cut = match *cut_kind {
        "distance" => CutRule::Distance(lines.parse(cut_val, "cut distance")?),
        "count" => CutRule::Count(lines.parse(cut_val, "cut count")?),
        other => return Err(lines.bad(format!("unknown cut rule {other:?}"))),
    };
    let config = PreprocessConfig {
        linkage,
        cut,
        window: lines.parse(window, "window")?,
        stride: lines.parse(stride, "stride")?,
        max_vocab: lines.parse(max_vocab, "max_vocab")?,
    };
    let lib = read_assigner(lines, "lib")?;
    let func = read_assigner(lines, "func")?;
    Ok(FeatureEncoder::from_parts(lib, func, config))
}

fn read_assigner(lines: &mut Lines<'_>, tag: &str) -> Result<ClusterAssigner<String>, ModelError> {
    let n: usize = {
        let rest = lines.expect_prefixed(&format!("{tag}_vocab"))?;
        lines.parse_count(rest, "vocab size")?
    };
    let mut members = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = lines.expect_prefixed("set")?;
        let mut parts = rest.split_whitespace();
        let label = lines.parse(
            parts.next().ok_or_else(|| lines.bad("set needs a label".into()))?,
            "cluster label",
        )?;
        labels.push(label);
        members.push(parts.map(str::to_owned).collect());
    }
    if members.is_empty() {
        return Err(lines.bad("empty vocabulary".into()));
    }
    Ok(ClusterAssigner::new(members, labels))
}

fn read_svm(lines: &mut Lines<'_>) -> Result<SvmClassifier, ModelError> {
    let rest = lines.expect_prefixed("tuned")?;
    let mut parts = rest.split_whitespace();
    let lambda: f64 = lines
        .parse(parts.next().ok_or_else(|| lines.bad("tuned needs lambda".into()))?, "lambda")?;
    let sigma2: f64 = lines
        .parse(parts.next().ok_or_else(|| lines.bad("tuned needs sigma2".into()))?, "sigma2")?;
    let kernel = read_kernel(lines)?;
    let bias: f64 = {
        let rest = lines.expect_prefixed("bias")?;
        lines.parse(rest, "bias")?
    };
    let n: usize = {
        let rest = lines.expect_prefixed("sv_count")?;
        lines.parse_count(rest, "support vector count")?
    };
    let mut support = Vec::with_capacity(n);
    let mut alpha_y = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = lines.expect_prefixed("sv")?;
        let mut values = rest.split_whitespace();
        let ay: f64 = lines
            .parse(values.next().ok_or_else(|| lines.bad("sv needs alpha_y".into()))?, "alpha_y")?;
        let x: Result<Vec<f64>, ModelError> =
            values.map(|v| lines.parse(v, "feature value")).collect();
        alpha_y.push(ay);
        support.push(x?);
    }
    if let Some(first) = support.first() {
        let dim = first.len();
        if support.iter().any(|sv| sv.len() != dim) {
            return Err(lines.bad("support vectors have inconsistent dimensions".into()));
        }
    }
    let encoder = read_encoder(lines)?;
    Ok(SvmClassifier {
        model: SvmModel::from_parts(support, alpha_y, bias, kernel),
        encoder,
        tuned: (lambda, sigma2),
    })
}

fn read_hmm_model(lines: &mut Lines<'_>, tag: &str) -> Result<Hmm, ModelError> {
    let rest = lines.expect_prefixed(tag)?;
    let mut parts = rest.split_whitespace();
    let states: usize = lines
        .parse_count(parts.next().ok_or_else(|| lines.bad("hmm needs states".into()))?, "states")?;
    let symbols: usize = lines.parse_count(
        parts.next().ok_or_else(|| lines.bad("hmm needs symbols".into()))?,
        "symbols",
    )?;
    let mut matrices = Vec::with_capacity(3);
    for (name, expected) in [("pi", states), ("a", states * states), ("b", states * symbols)] {
        let rest = lines.expect_prefixed(name)?;
        let values: Result<Vec<f64>, ModelError> =
            rest.split_whitespace().map(|v| lines.parse(v, "probability")).collect();
        let values = values?;
        if values.len() != expected {
            return Err(
                lines.bad(format!("{name} has {} values, expected {expected}", values.len()))
            );
        }
        matrices.push(values);
    }
    let b = matrices.pop().expect("pushed above");
    let a = matrices.pop().expect("pushed above");
    let pi = matrices.pop().expect("pushed above");
    Ok(Hmm::from_parts(states, symbols, pi, a, b))
}

fn read_hmm(lines: &mut Lines<'_>) -> Result<HmmDetector, ModelError> {
    let encoder = read_encoder(lines)?;
    let n: usize = {
        let rest = lines.expect_prefixed("symbols")?;
        lines.parse_count(rest, "symbol count")?
    };
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let rest = lines.expect_prefixed("sym")?;
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        let [id, e, l, f] = tokens.as_slice() else {
            return Err(lines.bad("sym needs 4 fields".into()));
        };
        entries.push((
            (
                lines.parse(e, "event type")?,
                lines.parse(l, "lib cluster")?,
                lines.parse(f, "func cluster")?,
            ),
            lines.parse(id, "symbol id")?,
        ));
    }
    // `SymbolTable::from_entries` requires dense ids and unique tuples;
    // validate here so corrupt files get a diagnosis instead of a panic.
    let mut seen = vec![false; n];
    let mut uniq = std::collections::HashSet::new();
    for &(key, id) in &entries {
        if id >= n || seen[id] || !uniq.insert(key) {
            return Err(lines.bad(format!("symbol table entries are not dense at id {id}")));
        }
        seen[id] = true;
    }
    let table = SymbolTable::from_entries(entries);
    let benign = read_hmm_model(lines, "benign_hmm")?;
    let mixed = read_hmm_model(lines, "mixed_hmm")?;
    Ok(HmmDetector::from_parts(HmmClassifier::from_parts(benign, mixed), encoder, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::dataset::Dataset;
    use crate::pipeline::{train_classifier, Method};
    use leaps_etw::scenario::{GenParams, Scenario};

    fn dataset() -> Dataset {
        Dataset::materialize(Scenario::by_name("vim_reverse_tcp").unwrap(), &GenParams::small(), 7)
            .unwrap()
    }

    fn roundtrip(method: Method) {
        let d = dataset();
        let (train, test) = d.split_benign(0.5, 7);
        let original = train_classifier(method, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&original);
        assert!(text.starts_with(MODEL_HEADER));
        let loaded = load_classifier(&text).expect("roundtrip parse");

        // The loaded classifier must make byte-identical decisions.
        let original_cm = original.evaluate(&test, &d.malicious);
        let loaded_cm = loaded.evaluate(&test, &d.malicious);
        assert_eq!(original_cm, loaded_cm, "{method:?} decisions diverged");

        // And re-saving must be a fixed point.
        assert_eq!(save_classifier(&loaded), text, "{method:?} not canonical");
    }

    #[test]
    fn cgraph_roundtrips() {
        roundtrip(Method::CGraph);
    }

    #[test]
    fn wsvm_roundtrips() {
        roundtrip(Method::Wsvm);
    }

    #[test]
    fn hmm_roundtrips() {
        roundtrip(Method::Hmm);
    }

    #[test]
    fn streaming_detector_works_on_loaded_model() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let original = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let loaded = load_classifier(&save_classifier(&original)).unwrap();
        let mut detector = crate::stream::StreamDetector::new(loaded);
        let verdicts = detector.push_all(d.malicious.iter().cloned());
        let flagged = verdicts.iter().filter(|v| !v.benign).count();
        assert!(flagged * 2 > verdicts.len(), "{flagged}/{}", verdicts.len());
    }

    #[test]
    fn malformed_inputs_are_diagnosed() {
        assert!(matches!(load_classifier(""), Err(ModelError::BadHeader)));
        assert!(matches!(load_classifier("# LEAPS-MODEL v1\n"), Err(ModelError::Truncated)));
        let bad_kind = load_classifier("# LEAPS-MODEL v1\nkind forest\n");
        assert!(matches!(bad_kind, Err(ModelError::BadRecord { line: 2, .. })));
        let bad_record = load_classifier("# LEAPS-MODEL v1\nkind cgraph\nnope\n");
        assert!(matches!(bad_record, Err(ModelError::BadRecord { .. })));
    }

    #[test]
    fn truncated_svm_is_diagnosed_not_panicking() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&clf);
        // Chop the file at 60% and expect a clean error.
        let cut = &text[..text.len() * 6 / 10];
        let cut = &cut[..cut.rfind('\n').unwrap() + 1];
        assert!(load_classifier(cut).is_err());
    }

    #[test]
    fn ragged_support_vectors_are_rejected() {
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let clf = train_classifier(Method::Wsvm, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&clf);
        // Drop the last value of the first support-vector line.
        let corrupted: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("sv ") {
                    l.rsplit_once(' ').map(|(head, _)| head.to_owned()).unwrap()
                } else {
                    l.to_owned()
                }
            })
            .collect();
        let corrupted = corrupted.join("\n");
        // Only corrupt one line: restore all but the first `sv `.
        let mut fixed = Vec::new();
        let mut corrupted_one = false;
        for (orig, maybe) in text.lines().zip(corrupted.lines()) {
            if orig.starts_with("sv ") && !corrupted_one {
                fixed.push(maybe.to_owned());
                corrupted_one = true;
            } else {
                fixed.push(orig.to_owned());
            }
        }
        let err = load_classifier(&fixed.join("\n")).unwrap_err();
        assert!(err.to_string().contains("inconsistent dimensions"), "{err}");
    }

    #[test]
    fn implausible_counts_are_rejected_before_allocation() {
        let text = "# LEAPS-MODEL v1\nkind cgraph\nbcg_edges 999999999999\n";
        let err = load_classifier(text).unwrap_err();
        assert!(err.to_string().contains("implausible"), "{err}");
    }

    #[test]
    fn corrupted_model_files_never_panic() {
        use leaps_etw::rng::SimRng;
        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        for (m, method) in [Method::CGraph, Method::Wsvm, Method::Hmm].into_iter().enumerate() {
            let clf = train_classifier(method, &train, &d.mixed, &PipelineConfig::fast(), 7);
            let text = save_classifier(&clf);
            let mut rng = SimRng::new(0xc0_44 ^ m as u64);
            for _ in 0..40 {
                let mutated = match rng.below(4) {
                    // Truncate at an arbitrary byte (the format is ASCII).
                    0 => text[..rng.below(text.len())].to_owned(),
                    // Delete one line.
                    1 => {
                        let victim = rng.below(text.lines().count());
                        text.lines()
                            .enumerate()
                            .filter(|(i, _)| *i != victim)
                            .map(|(_, l)| l)
                            .collect::<Vec<_>>()
                            .join("\n")
                    }
                    // Duplicate one line.
                    2 => {
                        let victim = rng.below(text.lines().count());
                        let mut lines: Vec<&str> = text.lines().collect();
                        lines.insert(victim, lines[victim]);
                        lines.join("\n")
                    }
                    // Mangle one line: overwrite a token with garbage.
                    _ => {
                        let victim = rng.below(text.lines().count());
                        let lines: Vec<String> = text
                            .lines()
                            .enumerate()
                            .map(|(i, l)| {
                                if i == victim {
                                    let mut tokens: Vec<&str> = l.split_whitespace().collect();
                                    if !tokens.is_empty() {
                                        let t = rng.below(tokens.len());
                                        tokens[t] = "999999999999999999";
                                    }
                                    tokens.join(" ")
                                } else {
                                    l.to_owned()
                                }
                            })
                            .collect();
                        lines.join("\n")
                    }
                };
                // Must return Ok (benign mutation) or a clean Err — never
                // panic, never attempt an absurd allocation.
                let _ = load_classifier(&mutated);
            }
        }
    }

    #[test]
    fn errors_display() {
        assert!(ModelError::BadHeader.to_string().contains("LEAPS-MODEL"));
        let e = ModelError::BadRecord { line: 3, reason: "x".into() };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn smo_checkpoint_roundtrips() {
        let state = SmoState {
            alpha: vec![0.0, 0.125, 7.5e-3],
            grad: vec![-1.0, 0.333_333_333_333_333_3, 2.0],
            iterations: 42,
        };
        let fp = fingerprint64(&["wsvm", "7", "smo"]);
        let ckpt = smo_checkpoint(&state, fp, [1, 2, 3, 4]);
        let loaded = load_checkpoint(&save_checkpoint(&ckpt)).unwrap();
        assert_eq!(loaded, ckpt);
        assert_eq!(smo_state(&loaded).unwrap(), state);
    }

    #[test]
    fn cv_checkpoint_roundtrips_including_none_cells() {
        let state = CvState { scores: vec![Some(0.875), None, Some(1.0 / 3.0)] };
        let ckpt = cv_checkpoint(&state, 9, [5, 6, 7, 8]);
        let loaded = load_checkpoint(&save_checkpoint(&ckpt)).unwrap();
        assert_eq!(cv_state(&loaded).unwrap(), state);
    }

    #[test]
    fn hmm_checkpoint_roundtrips() {
        let state = HmmState {
            iteration: 3,
            states: 2,
            symbols: 3,
            pi: vec![0.25, 0.75],
            a: vec![0.5, 0.5, 0.1, 0.9],
            b: vec![0.2, 0.3, 0.5, 0.6, 0.3, 0.1],
            rng: [9, 8, 7, 6],
        };
        let ckpt = hmm_checkpoint(&state, 11);
        let loaded = load_checkpoint(&save_checkpoint(&ckpt)).unwrap();
        assert_eq!(hmm_state(&loaded).unwrap(), state);
    }

    #[test]
    fn checkpoint_fingerprint_mismatch_is_rejected() {
        let state = CvState { scores: vec![Some(0.5)] };
        let ckpt = cv_checkpoint(&state, fingerprint64(&["wsvm", "seed 7"]), [1, 0, 0, 0]);
        assert!(verify_checkpoint(&ckpt, "cv", ckpt.fingerprint).is_ok());
        let err = verify_checkpoint(&ckpt, "cv", fingerprint64(&["wsvm", "seed 8"])).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        let err = verify_checkpoint(&ckpt, "smo", ckpt.fingerprint).unwrap_err();
        assert!(err.to_string().contains("stage"), "{err}");
    }

    #[test]
    fn corrupt_checkpoints_are_diagnosed_not_panicking() {
        assert!(matches!(load_checkpoint(""), Err(ModelError::BadHeader)));
        assert!(matches!(load_checkpoint("# LEAPS-CKPT v1\n"), Err(ModelError::Truncated)));
        let good = save_checkpoint(&hmm_checkpoint(
            &HmmState {
                iteration: 1,
                states: 2,
                symbols: 2,
                pi: vec![0.5, 0.5],
                a: vec![0.5; 4],
                b: vec![0.5; 4],
                rng: [1, 2, 3, 4],
            },
            5,
        ));
        // Missing `end` marker.
        let no_end = good.trim_end().trim_end_matches("end").to_owned();
        assert!(load_checkpoint(&no_end).is_err());
        // Any single-line deletion must error, never panic.
        for victim in 0..good.lines().count() {
            let mutated: Vec<&str> =
                good.lines().enumerate().filter(|(i, _)| *i != victim).map(|(_, l)| l).collect();
            assert!(load_checkpoint(&mutated.join("\n")).is_err(), "line {victim}");
        }
        // Wrong matrix dimensions in an otherwise valid envelope.
        let ckpt = load_checkpoint(&good).unwrap();
        let mut bad_dims = ckpt.clone();
        bad_dims.payload[0] = "dims 3 2".into();
        assert!(hmm_state(&bad_dims).is_err());
        // All-zero RNG state.
        let mut zero_rng = ckpt;
        zero_rng.rng = [0; 4];
        let err = hmm_state(&zero_rng).unwrap_err();
        assert!(err.to_string().contains("all-zero"), "{err}");
    }

    #[test]
    fn fingerprint_separates_parts() {
        assert_ne!(fingerprint64(&["ab", "c"]), fingerprint64(&["a", "bc"]));
        assert_ne!(fingerprint64(&[]), fingerprint64(&[""]));
        assert_eq!(fingerprint64(&["x", "y"]), fingerprint64(&["x", "y"]));
    }

    #[test]
    fn checkpoint_file_roundtrip_is_atomic() {
        let dir = scratch_dir("ckpt");
        let path = dir.join("smo.ckpt");
        let state = SmoState { alpha: vec![0.5], grad: vec![-0.5], iterations: 1 };
        let ckpt = smo_checkpoint(&state, 3, [1, 1, 1, 1]);
        save_checkpoint_to(&path, &ckpt).unwrap();
        assert!(!temp_path_for(&path).exists());
        assert_eq!(load_checkpoint_file(&path).unwrap(), ckpt);
        // A missing checkpoint is an I/O error naming the path.
        let err = load_checkpoint_file(&dir.join("absent.ckpt")).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("leaps-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn temp_path_is_dot_prefixed_sibling() {
        let temp = temp_path_for(std::path::Path::new("/models/cgraph.model"));
        assert_eq!(temp, std::path::Path::new("/models/.cgraph.model.tmp"));
        // Dot prefix means registry name validation can never serve it.
        assert!(temp.file_name().unwrap().to_str().unwrap().starts_with('.'));
    }

    #[test]
    fn atomic_save_leaves_no_temp_and_reclaims_stale_ones() {
        let dir = scratch_dir("atomic");
        let path = dir.join("m.model");
        let temp = temp_path_for(&path);

        // A previous save "killed" mid-write left a stale temp behind.
        std::fs::write(&temp, "torn garbage").unwrap();

        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let original =
            train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 7);
        save_classifier_to(&path, &original).unwrap();

        assert!(!temp.exists(), "temp file must be consumed by the rename");
        let loaded = load_classifier_file(&path).unwrap();
        assert_eq!(save_classifier(&loaded), save_classifier(&original));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_save_never_touches_the_visible_file() {
        let dir = scratch_dir("interrupted");
        let path = dir.join("m.model");
        std::fs::write(&path, "known good").unwrap();

        // Simulate a save killed after staging but before the rename:
        // only the temp exists alongside the intact old model.
        std::fs::write(temp_path_for(&path), "half-writ").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "known good");

        // And a save that fails outright (target dir missing) cleans up
        // its temp and leaves nothing visible.
        let bad = dir.join("no-such-dir").join("m.model");
        assert!(write_atomic(&bad, "x").is_err());
        assert!(!temp_path_for(&bad).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_model_file_is_a_one_line_model_error_naming_the_file() {
        let dir = scratch_dir("torn");
        let path = dir.join("torn.model");

        let d = dataset();
        let (train, _) = d.split_benign(0.5, 7);
        let original =
            train_classifier(Method::CGraph, &train, &d.mixed, &PipelineConfig::fast(), 7);
        let text = save_classifier(&original);
        // Truncate mid-file: the classic torn write.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let err = load_classifier_file(&path).unwrap_err();
        assert_eq!(err.exit_code(), 4, "torn model must be exit-code 4, got {err}");
        let message = err.to_string();
        assert!(message.contains("torn.model"), "message must name the file: {message}");
        assert!(!message.contains('\n'), "diagnosis must be one line: {message:?}");

        // Missing file: exit code 6 (I/O), still naming the path.
        let missing = dir.join("absent.model");
        let err = load_classifier_file(&missing).unwrap_err();
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("absent.model"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
