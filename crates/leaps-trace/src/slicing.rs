//! Per-process application slicing (paper Section II-B-2: "we perform
//! application slicing on the system event log").
//!
//! A production trace interleaves events from every process on the host;
//! LEAPS trains and tests per application of interest, so the front end
//! slices the correlated log by process id.

use crate::parser::{CorrelatedEvent, CorrelatedLog};
use std::collections::BTreeMap;

/// Groups a log's events per process id, preserving log order within each
/// process.
#[must_use]
pub fn slice_by_process(log: &CorrelatedLog) -> BTreeMap<u32, Vec<CorrelatedEvent>> {
    let mut slices: BTreeMap<u32, Vec<CorrelatedEvent>> = BTreeMap::new();
    for event in &log.events {
        slices.entry(event.pid).or_default().push(event.clone());
    }
    slices
}

/// Extracts the events of one process, preserving order.
#[must_use]
pub fn slice_process(log: &CorrelatedLog, pid: u32) -> Vec<CorrelatedEvent> {
    log.events.iter().filter(|e| e.pid == pid).cloned().collect()
}

/// Process ids present in a log, ascending.
#[must_use]
pub fn process_ids(log: &CorrelatedLog) -> Vec<u32> {
    let mut pids: Vec<u32> = log.events.iter().map(|e| e.pid).collect();
    pids.sort_unstable();
    pids.dedup();
    pids
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::addr::Va;
    use leaps_etw::event::EventType;
    use leaps_etw::event::StackFrame;

    fn event(num: u64, pid: u32) -> CorrelatedEvent {
        CorrelatedEvent {
            num,
            etype: EventType::FileRead,
            pid,
            tid: 1,
            timestamp: num,
            frames: vec![StackFrame::new("m", "f", Va(num), false)],
            truth: None,
        }
    }

    fn log() -> CorrelatedLog {
        CorrelatedLog {
            events: vec![event(1, 10), event(2, 20), event(3, 10), event(4, 30), event(5, 20)],
        }
    }

    #[test]
    fn slices_group_by_pid_preserving_order() {
        let slices = slice_by_process(&log());
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[&10].iter().map(|e| e.num).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(slices[&20].iter().map(|e| e.num).collect::<Vec<_>>(), vec![2, 5]);
        assert_eq!(slices[&30].len(), 1);
    }

    #[test]
    fn slice_process_filters() {
        let events = slice_process(&log(), 20);
        assert_eq!(events.iter().map(|e| e.num).collect::<Vec<_>>(), vec![2, 5]);
        assert!(slice_process(&log(), 99).is_empty());
    }

    #[test]
    fn process_ids_sorted_unique() {
        assert_eq!(process_ids(&log()), vec![10, 20, 30]);
        assert!(process_ids(&CorrelatedLog::default()).is_empty());
    }
}
