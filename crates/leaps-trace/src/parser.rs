//! Parser for the raw ETL-like log format.
//!
//! The raw format (see `leaps_etw::logfmt`) records one `EVENT` header
//! line with `key=value` fields, followed by `STACK` lines innermost-frame
//! first, terminated by `END`. Parsing restores **caller order** (outermost
//! first), which is the order every downstream algorithm in the paper
//! consumes.

use leaps_etw::addr::Va;
use leaps_etw::event::{EventType, Provenance, StackFrame};
use leaps_etw::logfmt::HEADER;
use std::error::Error;
use std::fmt;

/// A stack-event correlated record: one system event with its stack walk
/// in caller order.
///
/// Unlike `leaps_etw::SysEvent`, provenance is optional (production logs
/// carry no ground truth) and the `in_app_image` flags on frames are
/// assigned later by the partition module, not trusted from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrelatedEvent {
    /// Event sequence number from the log.
    pub num: u64,
    /// Event class.
    pub etype: EventType,
    /// Process id.
    pub pid: u32,
    /// Thread id.
    pub tid: u32,
    /// Timestamp in trace ticks.
    pub timestamp: u64,
    /// Stack frames, outermost (application entry) first.
    pub frames: Vec<StackFrame>,
    /// Ground-truth provenance if the log was generated in a controlled
    /// environment (`src=` field). **Never read by the detection
    /// pipeline** — only by evaluation code.
    pub truth: Option<Provenance>,
}

/// A parsed raw log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorrelatedLog {
    /// Events in log order.
    pub events: Vec<CorrelatedEvent>,
}

/// Errors produced while parsing a raw log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The log does not start with the `# LEAPS-ETL v1` header.
    MissingHeader,
    /// A line could not be interpreted in the current state.
    UnexpectedLine {
        /// 1-based line number.
        line: usize,
        /// The offending content (truncated).
        content: String,
    },
    /// An `EVENT` header is missing a required field.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// A field value failed to parse.
    InvalidValue {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
        /// The value that failed to parse.
        value: String,
    },
    /// The log ended inside an event (no `END`).
    UnterminatedEvent {
        /// Sequence number of the unterminated event.
        num: u64,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingHeader => write!(f, "missing `{HEADER}` header line"),
            ParseError::UnexpectedLine { line, content } => {
                write!(f, "unexpected content at line {line}: {content:?}")
            }
            ParseError::MissingField { line, field } => {
                write!(f, "EVENT at line {line} is missing field `{field}`")
            }
            ParseError::InvalidValue { line, field, value } => {
                write!(f, "invalid value {value:?} for field `{field}` at line {line}")
            }
            ParseError::UnterminatedEvent { num } => {
                write!(f, "log ended inside event {num} (missing END)")
            }
        }
    }
}

impl Error for ParseError {}

/// Coarse classification of parse failures — the error taxonomy used for
/// per-class skip statistics in lenient mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The `# LEAPS-ETL v1` magic line was absent.
    MissingHeader,
    /// A line made no sense in its context.
    UnexpectedLine,
    /// An `EVENT` header lacked a required field.
    MissingField,
    /// A field value failed to parse.
    InvalidValue,
    /// A record was cut off before its `END`.
    UnterminatedEvent,
}

impl ErrorClass {
    /// Every class, in a stable order.
    pub const ALL: [ErrorClass; 5] = [
        ErrorClass::MissingHeader,
        ErrorClass::UnexpectedLine,
        ErrorClass::MissingField,
        ErrorClass::InvalidValue,
        ErrorClass::UnterminatedEvent,
    ];

    /// Stable snake_case label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::MissingHeader => "missing_header",
            ErrorClass::UnexpectedLine => "unexpected_line",
            ErrorClass::MissingField => "missing_field",
            ErrorClass::InvalidValue => "invalid_value",
            ErrorClass::UnterminatedEvent => "unterminated_event",
        }
    }
}

impl ParseError {
    /// The coarse class of this error.
    #[must_use]
    pub fn class(&self) -> ErrorClass {
        match self {
            ParseError::MissingHeader => ErrorClass::MissingHeader,
            ParseError::UnexpectedLine { .. } => ErrorClass::UnexpectedLine,
            ParseError::MissingField { .. } => ErrorClass::MissingField,
            ParseError::InvalidValue { .. } => ErrorClass::InvalidValue,
            ParseError::UnterminatedEvent { .. } => ErrorClass::UnterminatedEvent,
        }
    }
}

/// Per-class skip statistics from a lenient parse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records parsed successfully.
    pub parsed: usize,
    /// Records discarded because part of them was unparseable.
    pub quarantined: usize,
    /// Individual lines skipped outside of a quarantined record.
    pub skipped_lines: usize,
    /// Error occurrences per [`ErrorClass`], indexed by position in
    /// [`ErrorClass::ALL`].
    pub class_counts: [usize; 5],
}

impl RecoveryStats {
    fn count(&mut self, class: ErrorClass) {
        let idx = ErrorClass::ALL.iter().position(|c| *c == class).expect("known class");
        self.class_counts[idx] += 1;
    }

    /// Occurrences of one error class.
    #[must_use]
    pub fn class_count(&self, class: ErrorClass) -> usize {
        let idx = ErrorClass::ALL.iter().position(|c| *c == class).expect("known class");
        self.class_counts[idx]
    }

    /// Total error occurrences across all classes.
    #[must_use]
    pub fn total_errors(&self) -> usize {
        self.class_counts.iter().sum()
    }

    /// `true` when the log parsed without a single skip.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total_errors() == 0 && self.quarantined == 0 && self.skipped_lines == 0
    }
}

impl fmt::Display for RecoveryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} parsed, {} quarantined, {} lines skipped",
            self.parsed, self.quarantined, self.skipped_lines
        )?;
        for class in ErrorClass::ALL {
            let n = self.class_count(class);
            if n > 0 {
                write!(f, ", {}={n}", class.label())?;
            }
        }
        Ok(())
    }
}

/// Result of a lenient parse: the surviving events plus recovery
/// statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredLog {
    /// Events that parsed completely, in log order.
    pub events: Vec<CorrelatedEvent>,
    /// What was skipped, quarantined, and why.
    pub stats: RecoveryStats,
}

/// Parses a raw log leniently: never fails, never panics.
///
/// Where [`parse_log`] reports the first malformed construct, this
/// recovery mode **quarantines** the enclosing record (drops it and
/// counts it) and **resynchronizes** at the next `EVENT` header. A
/// missing magic header is tolerated; a log truncated mid-record loses
/// only the final record. Use this for production telemetry, which is
/// lossy by nature; use [`parse_log`] for controlled-environment logs
/// where any damage indicates a writer bug.
#[must_use]
pub fn parse_log_lenient(raw: &str) -> RecoveredLog {
    let mut stats = RecoveryStats::default();
    let mut events = Vec::new();
    let mut lines = raw.lines().enumerate().peekable();
    match lines.peek() {
        Some((_, first)) if first.trim() == HEADER => {
            lines.next();
        }
        _ => stats.count(ErrorClass::MissingHeader),
    }

    let mut current: Option<CorrelatedEvent> = None;
    // After an error inside a record, skip lines until the next EVENT.
    let mut resyncing = false;
    let quarantine = |stats: &mut RecoveryStats, class: ErrorClass| {
        stats.count(class);
        stats.quarantined += 1;
    };

    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("EVENT ") {
            if current.take().is_some() {
                // The previous record never reached its END.
                quarantine(&mut stats, ErrorClass::UnterminatedEvent);
            }
            resyncing = false;
            match parse_event_header(rest, line_no) {
                Ok(ev) => current = Some(ev),
                Err(e) => {
                    quarantine(&mut stats, e.class());
                    resyncing = true;
                }
            }
        } else if resyncing {
            stats.skipped_lines += 1;
        } else if let Some(rest) = trimmed.strip_prefix("STACK ") {
            match current.as_mut() {
                Some(ev) => match parse_stack_line(rest, line_no) {
                    Ok(frame) => ev.frames.push(frame),
                    Err(e) => {
                        quarantine(&mut stats, e.class());
                        current = None;
                        resyncing = true;
                    }
                },
                None => {
                    stats.count(ErrorClass::UnexpectedLine);
                    stats.skipped_lines += 1;
                }
            }
        } else if trimmed == "END" {
            match current.take() {
                Some(mut ev) => {
                    ev.frames.reverse();
                    events.push(ev);
                    stats.parsed += 1;
                }
                None => {
                    stats.count(ErrorClass::UnexpectedLine);
                    stats.skipped_lines += 1;
                }
            }
        } else {
            // Unrecognizable line: if it interrupts a record, the record
            // can no longer be trusted.
            stats.count(ErrorClass::UnexpectedLine);
            stats.skipped_lines += 1;
            if current.take().is_some() {
                stats.quarantined += 1;
                resyncing = true;
            }
        }
    }
    if current.is_some() {
        quarantine(&mut stats, ErrorClass::UnterminatedEvent);
    }
    RecoveredLog { events, stats }
}

/// Parses a raw log into a [`CorrelatedLog`].
///
/// Frames are reversed from the on-disk innermost-first order back into
/// caller order.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed construct, with
/// its line number.
pub fn parse_log(raw: &str) -> Result<CorrelatedLog, ParseError> {
    let mut lines = raw.lines().enumerate();
    match lines.next() {
        Some((_, first)) if first.trim() == HEADER => {}
        _ => return Err(ParseError::MissingHeader),
    }

    let mut events = Vec::new();
    let mut current: Option<(CorrelatedEvent, usize)> = None;

    for (idx, line) in lines {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("EVENT ") {
            if let Some((ev, _)) = current.take() {
                return Err(ParseError::UnterminatedEvent { num: ev.num });
            }
            current = Some((parse_event_header(rest, line_no)?, line_no));
        } else if let Some(rest) = trimmed.strip_prefix("STACK ") {
            let Some((event, _)) = current.as_mut() else {
                return Err(ParseError::UnexpectedLine {
                    line: line_no,
                    content: truncate(trimmed),
                });
            };
            event.frames.push(parse_stack_line(rest, line_no)?);
        } else if trimmed == "END" {
            let Some((mut event, _)) = current.take() else {
                return Err(ParseError::UnexpectedLine {
                    line: line_no,
                    content: truncate(trimmed),
                });
            };
            // On-disk order is innermost first; restore caller order.
            event.frames.reverse();
            events.push(event);
        } else {
            return Err(ParseError::UnexpectedLine { line: line_no, content: truncate(trimmed) });
        }
    }
    if let Some((ev, _)) = current {
        return Err(ParseError::UnterminatedEvent { num: ev.num });
    }
    Ok(CorrelatedLog { events })
}

fn truncate(s: &str) -> String {
    s.chars().take(60).collect()
}

fn parse_event_header(rest: &str, line: usize) -> Result<CorrelatedEvent, ParseError> {
    let mut num = None;
    let mut etype = None;
    let mut pid = None;
    let mut tid = None;
    let mut ts = None;
    let mut truth = None;
    for token in rest.split_whitespace() {
        let Some((key, value)) = token.split_once('=') else {
            return Err(ParseError::UnexpectedLine { line, content: truncate(token) });
        };
        match key {
            "num" => num = Some(parse_u64(value, "num", line)?),
            "type" => {
                etype = Some(EventType::from_name(value).ok_or(ParseError::InvalidValue {
                    line,
                    field: "type",
                    value: value.to_owned(),
                })?);
            }
            "pid" => pid = Some(parse_u32(value, "pid", line)?),
            "tid" => tid = Some(parse_u32(value, "tid", line)?),
            "ts" => ts = Some(parse_u64(value, "ts", line)?),
            "src" => {
                truth = Some(match value {
                    "benign" => Provenance::Benign,
                    "malicious" => Provenance::Malicious,
                    other => {
                        return Err(ParseError::InvalidValue {
                            line,
                            field: "src",
                            value: other.to_owned(),
                        })
                    }
                });
            }
            // Forward compatibility: ignore unknown fields.
            _ => {}
        }
    }
    Ok(CorrelatedEvent {
        num: num.ok_or(ParseError::MissingField { line, field: "num" })?,
        etype: etype.ok_or(ParseError::MissingField { line, field: "type" })?,
        pid: pid.ok_or(ParseError::MissingField { line, field: "pid" })?,
        tid: tid.ok_or(ParseError::MissingField { line, field: "tid" })?,
        timestamp: ts.ok_or(ParseError::MissingField { line, field: "ts" })?,
        frames: Vec::new(),
        truth,
    })
}

fn parse_u64(value: &str, field: &'static str, line: usize) -> Result<u64, ParseError> {
    value.parse().map_err(|_| ParseError::InvalidValue { line, field, value: value.to_owned() })
}

fn parse_u32(value: &str, field: &'static str, line: usize) -> Result<u32, ParseError> {
    value.parse().map_err(|_| ParseError::InvalidValue { line, field, value: value.to_owned() })
}

fn parse_stack_line(rest: &str, line: usize) -> Result<StackFrame, ParseError> {
    let mut parts = rest.split_whitespace();
    let addr_str = parts.next().ok_or(ParseError::MissingField { line, field: "addr" })?;
    let sym = parts.next().ok_or(ParseError::MissingField { line, field: "symbol" })?;
    let addr_hex = addr_str.strip_prefix("0x").ok_or_else(|| ParseError::InvalidValue {
        line,
        field: "addr",
        value: addr_str.to_owned(),
    })?;
    let addr = u64::from_str_radix(addr_hex, 16).map_err(|_| ParseError::InvalidValue {
        line,
        field: "addr",
        value: addr_str.to_owned(),
    })?;
    let (module, function) = sym.split_once('!').ok_or_else(|| ParseError::InvalidValue {
        line,
        field: "symbol",
        value: sym.to_owned(),
    })?;
    // `in_app_image` is assigned by the partition module; default false.
    Ok(StackFrame::new(module, function, Va(addr), false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::logfmt::write_log;
    use leaps_etw::scenario::{GenParams, Scenario};

    fn sample_log() -> String {
        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 3);
        write_log(&logs.mixed)
    }

    #[test]
    fn roundtrip_preserves_count_order_and_fields() {
        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 3);
        let parsed = parse_log(&write_log(&logs.mixed)).unwrap();
        assert_eq!(parsed.events.len(), logs.mixed.len());
        for (orig, parsed) in logs.mixed.iter().zip(&parsed.events) {
            assert_eq!(parsed.num, orig.num);
            assert_eq!(parsed.etype, orig.etype);
            assert_eq!(parsed.pid, orig.pid);
            assert_eq!(parsed.tid, orig.tid);
            assert_eq!(parsed.timestamp, orig.timestamp);
            assert_eq!(parsed.truth, Some(orig.truth));
            // Caller order restored; symbols and addresses intact.
            assert_eq!(parsed.frames.len(), orig.frames.len());
            for (pf, of) in parsed.frames.iter().zip(&orig.frames) {
                assert_eq!(pf.module, of.module);
                assert_eq!(pf.function, of.function);
                assert_eq!(pf.addr, of.addr);
            }
        }
    }

    #[test]
    fn missing_header_is_rejected() {
        assert_eq!(parse_log("EVENT num=1\n"), Err(ParseError::MissingHeader));
        assert_eq!(parse_log(""), Err(ParseError::MissingHeader));
    }

    #[test]
    fn header_only_log_is_empty() {
        let parsed = parse_log("# LEAPS-ETL v1\n").unwrap();
        assert!(parsed.events.is_empty());
    }

    #[test]
    fn unterminated_event_is_diagnosed() {
        let raw = "# LEAPS-ETL v1\nEVENT num=7 type=FileRead pid=1 tid=2 ts=3\n";
        assert_eq!(parse_log(raw), Err(ParseError::UnterminatedEvent { num: 7 }));
    }

    #[test]
    fn stack_line_outside_event_is_rejected() {
        let raw = "# LEAPS-ETL v1\n  STACK 0x10 a!b\n";
        assert!(matches!(parse_log(raw), Err(ParseError::UnexpectedLine { line: 2, .. })));
    }

    #[test]
    fn missing_fields_are_diagnosed() {
        let raw = "# LEAPS-ETL v1\nEVENT num=1 pid=1 tid=2 ts=3\nEND\n";
        assert_eq!(parse_log(raw), Err(ParseError::MissingField { line: 2, field: "type" }));
    }

    #[test]
    fn invalid_event_type_is_diagnosed() {
        let raw = "# LEAPS-ETL v1\nEVENT num=1 type=Bogus pid=1 tid=2 ts=3\nEND\n";
        assert!(matches!(parse_log(raw), Err(ParseError::InvalidValue { field: "type", .. })));
    }

    #[test]
    fn invalid_address_is_diagnosed() {
        let raw =
            "# LEAPS-ETL v1\nEVENT num=1 type=FileRead pid=1 tid=2 ts=3\n  STACK 12 a!b\nEND\n";
        assert!(matches!(parse_log(raw), Err(ParseError::InvalidValue { field: "addr", .. })));
    }

    #[test]
    fn symbol_without_bang_is_diagnosed() {
        let raw =
            "# LEAPS-ETL v1\nEVENT num=1 type=FileRead pid=1 tid=2 ts=3\n  STACK 0x10 ab\nEND\n";
        assert!(matches!(parse_log(raw), Err(ParseError::InvalidValue { field: "symbol", .. })));
    }

    #[test]
    fn unknown_fields_and_comments_are_ignored() {
        let raw = "# LEAPS-ETL v1\n# a comment\nEVENT num=1 type=FileRead pid=1 tid=2 ts=3 cpu=4\n\nEND\n";
        let parsed = parse_log(raw).unwrap();
        assert_eq!(parsed.events.len(), 1);
        assert!(parsed.events[0].truth.is_none());
    }

    #[test]
    fn errors_display_with_context() {
        let err = ParseError::InvalidValue { line: 12, field: "addr", value: "zz".into() };
        let msg = err.to_string();
        assert!(msg.contains("12") && msg.contains("addr") && msg.contains("zz"));
    }

    #[test]
    fn large_log_parses() {
        let parsed = parse_log(&sample_log()).unwrap();
        assert!(parsed.events.len() >= 600);
    }

    #[test]
    fn lenient_matches_strict_on_clean_logs() {
        let raw = sample_log();
        let strict = parse_log(&raw).unwrap();
        let lenient = parse_log_lenient(&raw);
        assert_eq!(lenient.events, strict.events);
        assert!(lenient.stats.is_clean(), "{}", lenient.stats);
        assert_eq!(lenient.stats.parsed, strict.events.len());
    }

    #[test]
    fn lenient_quarantines_corrupt_record_and_resynchronizes() {
        let raw = "# LEAPS-ETL v1\n\
                   EVENT num=1 type=FileRead pid=1 tid=2 ts=3\n\
                   END\n\
                   EVENT num=2 type=FileRead pid=1 tid=2 ts=zz\n\
                   \x20 STACK 0x10 a!b\n\
                   END\n\
                   EVENT num=3 type=FileRead pid=1 tid=2 ts=5\n\
                   END\n";
        let got = parse_log_lenient(raw);
        assert_eq!(got.events.iter().map(|e| e.num).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(got.stats.quarantined, 1);
        assert_eq!(got.stats.class_count(ErrorClass::InvalidValue), 1);
        // The corrupt record's STACK and END lines are skipped silently.
        assert_eq!(got.stats.skipped_lines, 2);
    }

    #[test]
    fn lenient_quarantines_on_bad_stack_line() {
        let raw = "# LEAPS-ETL v1\n\
                   EVENT num=1 type=FileRead pid=1 tid=2 ts=3\n\
                   \x20 STACK nonsense a!b\n\
                   END\n\
                   EVENT num=2 type=FileRead pid=1 tid=2 ts=4\n\
                   END\n";
        let got = parse_log_lenient(raw);
        assert_eq!(got.events.iter().map(|e| e.num).collect::<Vec<_>>(), vec![2]);
        assert_eq!(got.stats.quarantined, 1);
        assert_eq!(got.stats.class_count(ErrorClass::InvalidValue), 1);
    }

    #[test]
    fn lenient_tolerates_missing_header() {
        let raw = "EVENT num=1 type=FileRead pid=1 tid=2 ts=3\nEND\n";
        let got = parse_log_lenient(raw);
        assert_eq!(got.events.len(), 1);
        assert_eq!(got.stats.class_count(ErrorClass::MissingHeader), 1);
        assert!(!got.stats.is_clean());
    }

    #[test]
    fn lenient_drops_only_the_truncated_tail_record() {
        let raw = "# LEAPS-ETL v1\n\
                   EVENT num=1 type=FileRead pid=1 tid=2 ts=3\n\
                   END\n\
                   EVENT num=2 type=FileRead pid=1 tid=2 ts=4\n\
                   \x20 STACK 0x10 a!b\n";
        let got = parse_log_lenient(raw);
        assert_eq!(got.events.iter().map(|e| e.num).collect::<Vec<_>>(), vec![1]);
        assert_eq!(got.stats.quarantined, 1);
        assert_eq!(got.stats.class_count(ErrorClass::UnterminatedEvent), 1);
    }

    #[test]
    fn lenient_back_to_back_events_quarantine_the_first() {
        let raw = "# LEAPS-ETL v1\n\
                   EVENT num=1 type=FileRead pid=1 tid=2 ts=3\n\
                   EVENT num=2 type=FileRead pid=1 tid=2 ts=4\n\
                   END\n";
        let got = parse_log_lenient(raw);
        assert_eq!(got.events.iter().map(|e| e.num).collect::<Vec<_>>(), vec![2]);
        assert_eq!(got.stats.class_count(ErrorClass::UnterminatedEvent), 1);
    }

    #[test]
    fn lenient_skips_stray_lines_and_interrupted_records() {
        let raw = "# LEAPS-ETL v1\n\
                   noise\n\
                   END\n\
                   EVENT num=1 type=FileRead pid=1 tid=2 ts=3\n\
                   garbage in the middle\n\
                   \x20 STACK 0x10 a!b\n\
                   END\n";
        let got = parse_log_lenient(raw);
        assert!(got.events.is_empty());
        assert_eq!(got.stats.quarantined, 1);
        // "noise", stray "END", "garbage...", plus the record's remaining
        // STACK and END lines skipped during resynchronization.
        assert_eq!(got.stats.skipped_lines, 5);
        assert!(got.stats.class_count(ErrorClass::UnexpectedLine) >= 3);
    }

    #[test]
    fn error_class_taxonomy_is_total() {
        let errors = [
            ParseError::MissingHeader,
            ParseError::UnexpectedLine { line: 1, content: "x".into() },
            ParseError::MissingField { line: 1, field: "num" },
            ParseError::InvalidValue { line: 1, field: "ts", value: "z".into() },
            ParseError::UnterminatedEvent { num: 1 },
        ];
        let classes: Vec<ErrorClass> = errors.iter().map(ParseError::class).collect();
        assert_eq!(classes, ErrorClass::ALL.to_vec());
        for class in ErrorClass::ALL {
            assert!(!class.label().is_empty());
        }
    }

    #[test]
    fn recovery_stats_display_reports_classes() {
        let raw = "EVENT num=1 type=FileRead pid=1 tid=2 ts=zz\nEND\n";
        let got = parse_log_lenient(raw);
        let text = got.stats.to_string();
        assert!(text.contains("quarantined"), "{text}");
        assert!(text.contains("missing_header=1"), "{text}");
        assert!(text.contains("invalid_value=1"), "{text}");
    }
}
