//! Raw-log parsing, stack-event correlation and stack partitioning — the
//! front end of the LEAPS training and testing pipelines (paper Fig. 1,
//! "Raw Log Parser" and "Stack Partition Module"; modeled on Introperf's
//! front end).
//!
//! * [`parser`] parses the ETL-like raw text log emitted by `leaps-etw`
//!   into *stack-event correlated* records, restoring caller order for the
//!   stack frames and diagnosing malformed input with line numbers.
//! * [`partition`] splits each event's stack walk into the **application
//!   stack trace** (frames inside the application image or anonymous
//!   memory — used for CFG inference) and the **system stack trace**
//!   (shared libraries and kernel — used for statistical features).
//! * [`slicing`] slices a log per process, as the paper does per
//!   application of interest.
//!
//! # Example
//!
//! ```
//! use leaps_etw::scenario::{GenParams, Scenario};
//! use leaps_trace::parser::parse_log;
//! use leaps_trace::partition::partition_events;
//!
//! let logs = Scenario::by_name("vim_reverse_tcp")
//!     .unwrap()
//!     .generate(&GenParams::small(), 7);
//! let parsed = parse_log(&logs.benign)?;
//! let partitioned = partition_events(&parsed.events);
//! assert_eq!(parsed.events.len(), partitioned.len());
//! # Ok::<(), leaps_trace::parser::ParseError>(())
//! ```

pub mod parser;
pub mod partition;
pub mod slicing;

pub use parser::{
    parse_log, parse_log_lenient, CorrelatedEvent, CorrelatedLog, ErrorClass, ParseError,
    RecoveredLog, RecoveryStats,
};
pub use partition::{partition_events, PartitionedEvent};
