//! The Stack Partition Module (paper Section II-B-1).
//!
//! Splits each event's stack walk into:
//!
//! * the **application stack trace** — frames inside the application's own
//!   image *or in anonymous memory* (injected code resolves to no module;
//!   it is still application-side code, and must reach the CFG inference
//!   so the mixed CFG contains the payload), and
//! * the **system stack trace** — frames in known shared libraries and
//!   kernel modules, from which the statistical features are extracted.
//!
//! Classification is by module name against the system catalog; the
//! parser's frames are not trusted to carry the distinction.

use crate::parser::CorrelatedEvent;
use leaps_etw::event::{EventType, Provenance, StackFrame};
use leaps_etw::syslib::SysCatalog;

/// An event with its stack walk partitioned into application and system
/// parts (both in caller order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedEvent {
    /// Event sequence number.
    pub num: u64,
    /// Event class.
    pub etype: EventType,
    /// Thread id (the payload thread differs from the main thread, but the
    /// pipeline never uses this for classification).
    pub tid: u32,
    /// Frames in the application image / anonymous memory, caller order.
    pub app_stack: Vec<StackFrame>,
    /// Frames in shared libraries and the kernel, caller order.
    pub system_stack: Vec<StackFrame>,
    /// Ground truth carried through for evaluation only.
    pub truth: Option<Provenance>,
}

impl PartitionedEvent {
    /// Set of library names in the system stack (the paper's `Lib`).
    #[must_use]
    pub fn lib_set(&self) -> Vec<&str> {
        let mut libs: Vec<&str> = self.system_stack.iter().map(|f| f.module.as_str()).collect();
        libs.sort_unstable();
        libs.dedup();
        libs
    }

    /// Set of `module!function` symbols in the system stack (the paper's
    /// `Func`).
    #[must_use]
    pub fn func_set(&self) -> Vec<String> {
        let mut funcs: Vec<String> = self.system_stack.iter().map(StackFrame::symbol).collect();
        funcs.sort_unstable();
        funcs.dedup();
        funcs
    }
}

/// Returns whether a frame belongs to the system side (shared library or
/// kernel module known to the catalog).
#[must_use]
pub fn is_system_frame(frame: &StackFrame) -> bool {
    SysCatalog::standard().libraries().iter().any(|lib| lib.name == frame.module)
}

/// Partitions one event's stack walk.
#[must_use]
pub fn partition_event(event: &CorrelatedEvent) -> PartitionedEvent {
    let mut app_stack = Vec::new();
    let mut system_stack = Vec::new();
    for frame in &event.frames {
        let mut f = frame.clone();
        if is_system_frame(frame) {
            f.in_app_image = false;
            system_stack.push(f);
        } else {
            f.in_app_image = true;
            app_stack.push(f);
        }
    }
    PartitionedEvent {
        num: event.num,
        etype: event.etype,
        tid: event.tid,
        app_stack,
        system_stack,
        truth: event.truth,
    }
}

/// Partitions every event of a log.
#[must_use]
pub fn partition_events(events: &[CorrelatedEvent]) -> Vec<PartitionedEvent> {
    events.iter().map(partition_event).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_log;
    use leaps_etw::addr::Va;
    use leaps_etw::logfmt::write_log;
    use leaps_etw::scenario::{GenParams, Scenario};

    fn parsed_mixed(name: &str) -> Vec<CorrelatedEvent> {
        let logs = Scenario::by_name(name).unwrap().generate_events(&GenParams::small(), 3);
        parse_log(&write_log(&logs.mixed)).unwrap().events
    }

    #[test]
    fn partition_recovers_generator_split() {
        // The generator knows which frames were application-side; the
        // partition module must reconstruct that from module names alone.
        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 3);
        let parsed = parse_log(&write_log(&logs.mixed)).unwrap();
        for (orig, ev) in logs.mixed.iter().zip(&parsed.events) {
            let p = partition_event(ev);
            let orig_app: Vec<_> = orig.app_frames().map(|f| f.addr).collect();
            let orig_sys: Vec<_> = orig.system_frames().map(|f| f.addr).collect();
            assert_eq!(p.app_stack.iter().map(|f| f.addr).collect::<Vec<_>>(), orig_app);
            assert_eq!(p.system_stack.iter().map(|f| f.addr).collect::<Vec<_>>(), orig_sys);
        }
    }

    #[test]
    fn anonymous_frames_are_application_side() {
        let events = parsed_mixed("putty_reverse_tcp_online");
        let anon_event = events
            .iter()
            .map(partition_event)
            .find(|p| p.app_stack.iter().any(|f| f.module == "<anon>"))
            .expect("online injection produces anonymous frames");
        assert!(anon_event.app_stack.iter().all(|f| f.in_app_image));
    }

    #[test]
    fn system_stack_is_never_empty_for_generated_events() {
        for p in parsed_mixed("chrome_reverse_https").iter().map(partition_event) {
            assert!(!p.system_stack.is_empty());
            assert!(!p.app_stack.is_empty());
        }
    }

    #[test]
    fn lib_and_func_sets_are_sorted_and_deduped() {
        let ev = CorrelatedEvent {
            num: 1,
            etype: EventType::FileRead,
            pid: 1,
            tid: 2,
            timestamp: 3,
            frames: vec![
                StackFrame::new("myapp", "main", Va(0x100), false),
                StackFrame::new("ntdll", "NtReadFile", Va(0x7ffb_0000_2000), false),
                StackFrame::new("ntdll", "NtReadFile", Va(0x7ffb_0000_2000), false),
                StackFrame::new("kernel32", "ReadFile", Va(0x7ffb_0100_1000), false),
            ],
            truth: None,
        };
        let p = partition_event(&ev);
        assert_eq!(p.lib_set(), vec!["kernel32", "ntdll"]);
        assert_eq!(
            p.func_set(),
            vec!["kernel32!ReadFile".to_owned(), "ntdll!NtReadFile".to_owned()]
        );
        assert_eq!(p.app_stack.len(), 1);
        assert_eq!(p.app_stack[0].module, "myapp");
    }

    #[test]
    fn is_system_frame_matches_catalog() {
        assert!(is_system_frame(&StackFrame::new("ntdll", "x", Va(1), false)));
        assert!(is_system_frame(&StackFrame::new("tcpip", "x", Va(1), false)));
        assert!(!is_system_frame(&StackFrame::new("vim", "x", Va(1), false)));
        assert!(!is_system_frame(&StackFrame::new("<anon>", "x", Va(1), false)));
    }
}
