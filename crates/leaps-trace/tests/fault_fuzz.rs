//! Property-based fuzzing of the parser against injected telemetry
//! faults: whatever `leaps-faults` does to a well-formed raw log, the
//! strict parser must fail cleanly (no panic) and the lenient parser must
//! recover — every record is either parsed or quarantined, never lost to
//! a crash.

use leaps_etw::addr::Va;
use leaps_etw::event::{EventType, Provenance, StackFrame, SysEvent};
use leaps_etw::logfmt::write_log;
use leaps_faults::{inject, FaultClass, FaultPlan};
use leaps_trace::parser::{parse_log, parse_log_lenient};
use proptest::prelude::*;

fn module_name() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["ntdll", "kernel32", "ws2_32", "tcpip", "vim", "myapp", "<anon>"])
}

fn frame() -> impl Strategy<Value = StackFrame> {
    (module_name(), 0u32..40, 0u64..0xffff_ffff).prop_map(|(module, fidx, addr)| {
        StackFrame::new(module, format!("f{fidx}"), Va(addr), false)
    })
}

fn event(num: u64) -> impl Strategy<Value = SysEvent> {
    (
        prop::sample::select(EventType::ALL.to_vec()),
        prop::collection::vec(frame(), 1..10),
        0u32..9999,
        0u32..9999,
        prop::bool::ANY,
    )
        .prop_map(move |(etype, frames, pid, tid, malicious)| SysEvent {
            num,
            etype,
            pid,
            tid,
            timestamp: num * 17,
            frames,
            truth: if malicious { Provenance::Malicious } else { Provenance::Benign },
        })
}

fn event_log() -> impl Strategy<Value = Vec<SysEvent>> {
    prop::collection::vec(prop::num::u8::ANY, 1..30).prop_flat_map(|nums| {
        let strategies: Vec<_> =
            nums.iter().enumerate().map(|(i, _)| event(i as u64 + 1)).collect();
        strategies
    })
}

/// Strategy: a fault plan with arbitrary per-class rates up to 0.6 and an
/// arbitrary jitter window.
fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (prop::collection::vec(0.0f64..0.6, 6), 1usize..6).prop_map(|(rates, jitter)| {
        let mut plan = FaultPlan::none();
        for (class, &rate) in FaultClass::ALL.iter().zip(&rates) {
            plan.set(*class, rate);
        }
        plan.reorder_jitter = jitter;
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lenient parser survives every injected fault combination:
    /// no panic, and every surviving record is parsed or quarantined.
    #[test]
    fn lenient_parser_recovers_any_faulted_log(
        events in event_log(),
        plan in fault_plan(),
        seed in prop::num::u64::ANY,
    ) {
        let raw = write_log(&events);
        let (damaged, inject_stats) = inject(&raw, &plan, seed);
        let recovered = parse_log_lenient(&damaged);
        prop_assert_eq!(recovered.events.len(), recovered.stats.parsed);
        prop_assert!(
            recovered.stats.parsed + recovered.stats.quarantined
                <= inject_stats.records_out,
            "{} parsed + {} quarantined > {} records in the damaged log",
            recovered.stats.parsed,
            recovered.stats.quarantined,
            inject_stats.records_out
        );
    }

    /// The strict parser never panics on a faulted log — it returns
    /// either a parse or a typed error.
    #[test]
    fn strict_parser_fails_cleanly_on_faulted_log(
        events in event_log(),
        plan in fault_plan(),
        seed in prop::num::u64::ANY,
    ) {
        let raw = write_log(&events);
        let (damaged, _) = inject(&raw, &plan, seed);
        match parse_log(&damaged) {
            Ok(parsed) => prop_assert!(parsed.events.len() <= 2 * events.len()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    /// A clean plan is the identity: lenient parsing of the injected log
    /// equals strict parsing of the original.
    #[test]
    fn clean_plan_is_identity(events in event_log(), seed in prop::num::u64::ANY) {
        let raw = write_log(&events);
        let (damaged, inject_stats) = inject(&raw, &FaultPlan::none(), seed);
        prop_assert_eq!(&damaged, &raw);
        prop_assert_eq!(inject_stats.total_faults(), 0);
        let strict = parse_log(&raw).expect("clean logs parse strictly");
        let recovered = parse_log_lenient(&damaged);
        prop_assert!(recovered.stats.is_clean());
        prop_assert_eq!(recovered.events.len(), strict.events.len());
        for (a, b) in strict.events.iter().zip(&recovered.events) {
            prop_assert_eq!(a.num, b.num);
            prop_assert_eq!(a.frames.len(), b.frames.len());
        }
    }

    /// With only record drops, every recovered event is one of the
    /// originals, in original order (drops never invent or reorder data).
    #[test]
    fn drops_preserve_order_of_survivors(
        events in event_log(),
        rate in 0.0f64..0.9,
        seed in prop::num::u64::ANY,
    ) {
        let raw = write_log(&events);
        let plan = FaultPlan::only(FaultClass::DropEvent, rate);
        let (damaged, _) = inject(&raw, &plan, seed);
        let recovered = parse_log_lenient(&damaged);
        prop_assert!(recovered.stats.is_clean(), "drops leave well-formed records");
        let nums: Vec<u64> = recovered.events.iter().map(|e| e.num).collect();
        let mut expected = nums.clone();
        expected.sort_unstable();
        prop_assert_eq!(&nums, &expected, "survivor order changed");
        let original: std::collections::HashSet<u64> =
            events.iter().map(|e| e.num).collect();
        prop_assert!(nums.iter().all(|n| original.contains(n)));
    }
}
