//! The inferred control-flow graph: directed adjacency over virtual
//! addresses.

use leaps_etw::addr::Va;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A directed graph whose vertices are function addresses, as inferred
/// from application stack traces (paper Algorithm 1's `cfg` dictionary).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cfg {
    edges: BTreeMap<Va, BTreeSet<Va>>,
}

impl Cfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Cfg {
        Cfg::default()
    }

    /// Adds the edge `start → end` (paper `ADDTO_CFG`). Idempotent.
    pub fn add_edge(&mut self, start: Va, end: Va) {
        self.edges.entry(start).or_default().insert(end);
    }

    /// Whether the direct edge `start → end` exists.
    #[must_use]
    pub fn has_edge(&self, start: Va, end: Va) -> bool {
        self.edges.get(&start).is_some_and(|s| s.contains(&end))
    }

    /// Successors of `start` (empty if none).
    pub fn successors(&self, start: Va) -> impl Iterator<Item = Va> + '_ {
        self.edges.get(&start).into_iter().flatten().copied()
    }

    /// Iterates all edges in deterministic (address) order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (Va, Va)> + '_ {
        self.edges.iter().flat_map(|(&start, ends)| ends.iter().map(move |&end| (start, end)))
    }

    /// All vertices (sources and targets), ascending, deduplicated.
    #[must_use]
    pub fn nodes(&self) -> Vec<Va> {
        let mut nodes: BTreeSet<Va> = BTreeSet::new();
        for (start, ends) in &self.edges {
            nodes.insert(*start);
            nodes.extend(ends.iter().copied());
        }
        nodes.into_iter().collect()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Number of vertices.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes().len()
    }

    /// Whether the graph has no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether `end` is reachable from `start` via a **non-empty** path
    /// (paper `CHECK_CFG`, including its `start = end ∧ level ≠ 0`
    /// self-loop rule).
    ///
    /// The paper's recursive formulation diverges on cyclic graphs
    /// (recursion is ubiquitous in real programs); this implementation is
    /// an iterative DFS with a visited set — same answer, guaranteed
    /// termination.
    #[must_use]
    pub fn reachable(&self, start: Va, end: Va) -> bool {
        let mut visited: HashSet<Va> = HashSet::new();
        let mut stack: Vec<Va> = self.successors(start).collect();
        while let Some(node) = stack.pop() {
            if node == end {
                return true;
            }
            if visited.insert(node) {
                stack.extend(self.successors(node));
            }
        }
        false
    }
}

/// A reachability oracle over a fixed [`Cfg`] that caches the full
/// descendant set per queried source (Algorithm 2 issues many
/// `CHECK_CFG` queries against the same benign CFG).
#[derive(Debug)]
pub struct ReachabilityCache<'g> {
    cfg: &'g Cfg,
    descendants: HashMap<Va, HashSet<Va>>,
}

impl<'g> ReachabilityCache<'g> {
    /// Creates a cache over `cfg`.
    #[must_use]
    pub fn new(cfg: &'g Cfg) -> Self {
        ReachabilityCache { cfg, descendants: HashMap::new() }
    }

    /// Whether `end` is reachable from `start` via a non-empty path.
    pub fn reachable(&mut self, start: Va, end: Va) -> bool {
        if !self.descendants.contains_key(&start) {
            let mut visited: HashSet<Va> = HashSet::new();
            let mut stack: Vec<Va> = self.cfg.successors(start).collect();
            while let Some(node) = stack.pop() {
                if visited.insert(node) {
                    stack.extend(self.cfg.successors(node));
                }
            }
            self.descendants.insert(start, visited);
        }
        self.descendants[&start].contains(&end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cfg {
        // 1 → 2 → 4, 1 → 3 → 4
        let mut cfg = Cfg::new();
        cfg.add_edge(Va(1), Va(2));
        cfg.add_edge(Va(1), Va(3));
        cfg.add_edge(Va(2), Va(4));
        cfg.add_edge(Va(3), Va(4));
        cfg
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut cfg = Cfg::new();
        cfg.add_edge(Va(1), Va(2));
        cfg.add_edge(Va(1), Va(2));
        assert_eq!(cfg.edge_count(), 1);
        assert!(cfg.has_edge(Va(1), Va(2)));
        assert!(!cfg.has_edge(Va(2), Va(1)));
    }

    #[test]
    fn nodes_and_counts() {
        let cfg = diamond();
        assert_eq!(cfg.nodes(), vec![Va(1), Va(2), Va(3), Va(4)]);
        assert_eq!(cfg.node_count(), 4);
        assert_eq!(cfg.edge_count(), 4);
        assert!(!cfg.is_empty());
        assert!(Cfg::new().is_empty());
    }

    #[test]
    fn reachability_transitive() {
        let cfg = diamond();
        assert!(cfg.reachable(Va(1), Va(4)));
        assert!(cfg.reachable(Va(1), Va(2)));
        assert!(!cfg.reachable(Va(4), Va(1)));
        assert!(!cfg.reachable(Va(2), Va(3)));
    }

    #[test]
    fn self_reachability_requires_a_cycle() {
        let mut cfg = diamond();
        assert!(!cfg.reachable(Va(1), Va(1)));
        cfg.add_edge(Va(4), Va(1)); // close the loop
        assert!(cfg.reachable(Va(1), Va(1)));
        assert!(cfg.reachable(Va(4), Va(4)));
    }

    #[test]
    fn reachability_terminates_on_cycles() {
        let mut cfg = Cfg::new();
        cfg.add_edge(Va(1), Va(2));
        cfg.add_edge(Va(2), Va(1));
        assert!(cfg.reachable(Va(1), Va(2)));
        assert!(!cfg.reachable(Va(1), Va(9)));
    }

    #[test]
    fn unknown_source_unreachable() {
        let cfg = diamond();
        assert!(!cfg.reachable(Va(99), Va(1)));
        assert_eq!(cfg.successors(Va(99)).count(), 0);
    }

    #[test]
    fn cache_agrees_with_direct_dfs() {
        let mut cfg = diamond();
        cfg.add_edge(Va(4), Va(2)); // cycle 2→4→2
        let mut cache = ReachabilityCache::new(&cfg);
        for s in 1..=4 {
            for e in 1..=4 {
                assert_eq!(cache.reachable(Va(s), Va(e)), cfg.reachable(Va(s), Va(e)), "({s},{e})");
            }
        }
    }

    #[test]
    fn iter_edges_is_deterministic_and_complete() {
        let cfg = diamond();
        let edges: Vec<_> = cfg.iter_edges().collect();
        assert_eq!(edges, vec![(Va(1), Va(2)), (Va(1), Va(3)), (Va(2), Va(4)), (Va(3), Va(4)),]);
    }
}
