//! Algorithm 1: CFG inference from application stack traces.
//!
//! Two kinds of control flow are recovered (paper Fig. 3):
//!
//! * **explicit paths** — within one event's stack, frame *i* invoked
//!   frame *i+1*, so `stack[i] → stack[i+1]` is an edge;
//! * **implicit paths** — between two adjacent events, let `k` be the
//!   length of the common stack prefix; then control flowed from the first
//!   divergent frame of the previous stack to the first divergent frame of
//!   the current one: `prev[k] → curr[k]`.
//!
//! In addition to the graph itself, inference records the reverse mapping
//! from each edge to the event numbers whose stacks produced it (the
//! paper's `memap`), which Algorithm 2 uses to turn edge scores into
//! per-event weights.

use crate::graph::Cfg;
use leaps_etw::addr::Va;
use leaps_trace::partition::PartitionedEvent;
use std::collections::{BTreeSet, HashMap};

/// An inferred CFG plus the edge→events reverse mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfgWithEvents {
    /// The control flow graph (explicit and implicit paths).
    pub cfg: Cfg,
    /// The subgraph of **explicit paths only** (invocations within one
    /// stack). Explicit edges reflect the program's call structure and are
    /// stable across runs; implicit edges depend on event adjacency and
    /// are execution-order artifacts. Structural alignment
    /// ([`crate::align`]) therefore works on this subgraph.
    pub explicit: Cfg,
    /// For every edge, the set of event numbers whose stacks contributed
    /// it (`memap` in Algorithm 2's input).
    pub edge_events: HashMap<(Va, Va), BTreeSet<u64>>,
}

impl CfgWithEvents {
    /// Event numbers that contributed the edge, if any.
    #[must_use]
    pub fn events_of(&self, start: Va, end: Va) -> Option<&BTreeSet<u64>> {
        self.edge_events.get(&(start, end))
    }
}

/// Infers the CFG of the traced application from the application stack
/// traces of `events` (paper Algorithm 1, `GEN_CFG`).
///
/// Events whose application stack is empty are skipped (they contribute no
/// control-flow information); they also do not participate in implicit-path
/// pairing, mirroring the paper which walks event by event.
#[must_use]
pub fn infer_cfg(events: &[PartitionedEvent]) -> CfgWithEvents {
    let mut out = CfgWithEvents::default();
    let mut prev: Option<(Vec<Va>, u64)> = None;

    for event in events {
        let curr: Vec<Va> = event.app_stack.iter().map(|f| f.addr).collect();
        if curr.is_empty() {
            continue;
        }
        // Implicit path: divergence point between adjacent stacks
        // (BRANCH_POINT + line 13 of Algorithm 1).
        if let Some((prev_stack, prev_num)) = &prev {
            let k = common_prefix_len(prev_stack, &curr);
            if k < prev_stack.len() && k < curr.len() {
                add_edge(&mut out, prev_stack[k], curr[k], &[*prev_num, event.num]);
            }
        }
        // Explicit paths: invocations within this stack (line 15).
        for w in curr.windows(2) {
            add_edge(&mut out, w[0], w[1], &[event.num]);
            out.explicit.add_edge(w[0], w[1]);
        }
        prev = Some((curr, event.num));
    }
    out
}

fn add_edge(out: &mut CfgWithEvents, start: Va, end: Va, events: &[u64]) {
    out.cfg.add_edge(start, end);
    let set = out.edge_events.entry((start, end)).or_default();
    set.extend(events.iter().copied());
}

fn common_prefix_len(a: &[Va], b: &[Va]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaps_etw::event::{EventType, StackFrame};

    fn event(num: u64, addrs: &[u64]) -> PartitionedEvent {
        PartitionedEvent {
            num,
            etype: EventType::FileRead,
            tid: 1,
            app_stack: addrs
                .iter()
                .map(|&a| StackFrame::new("app", format!("f{a}"), Va(a), true))
                .collect(),
            system_stack: vec![StackFrame::new("ntdll", "NtReadFile", Va(0x7000), false)],
            truth: None,
        }
    }

    #[test]
    fn explicit_paths_within_one_stack() {
        let out = infer_cfg(&[event(1, &[1, 2, 3])]);
        assert!(out.cfg.has_edge(Va(1), Va(2)));
        assert!(out.cfg.has_edge(Va(2), Va(3)));
        assert_eq!(out.cfg.edge_count(), 2);
        assert_eq!(out.events_of(Va(1), Va(2)).unwrap().len(), 1);
    }

    #[test]
    fn implicit_path_between_adjacent_events_matches_figure_3() {
        // Figure 3: Event 1 stack [1,2,3,4,5], Event 2 stack [1,2,3,6,7].
        // Common prefix length 3 → implicit edge 4 → 6.
        let out = infer_cfg(&[event(1, &[1, 2, 3, 4, 5]), event(2, &[1, 2, 3, 6, 7])]);
        assert!(out.cfg.has_edge(Va(4), Va(6)), "implicit path missing");
        // Both events are attributed to the implicit edge.
        let evs = out.events_of(Va(4), Va(6)).unwrap();
        assert!(evs.contains(&1) && evs.contains(&2));
        // Explicit edges from both stacks.
        assert!(out.cfg.has_edge(Va(4), Va(5)));
        assert!(out.cfg.has_edge(Va(6), Va(7)));
        assert!(out.cfg.has_edge(Va(3), Va(4)));
        assert!(out.cfg.has_edge(Va(3), Va(6)));
    }

    #[test]
    fn identical_adjacent_stacks_add_no_implicit_edge() {
        let out = infer_cfg(&[event(1, &[1, 2]), event(2, &[1, 2])]);
        // Only the explicit edge 1→2.
        assert_eq!(out.cfg.edge_count(), 1);
    }

    #[test]
    fn prefix_subsumption_adds_no_implicit_edge() {
        // curr extends prev: divergence index equals prev.len() → no
        // implicit edge (there is no divergent frame in prev).
        let out = infer_cfg(&[event(1, &[1, 2]), event(2, &[1, 2, 3])]);
        assert!(out.cfg.has_edge(Va(2), Va(3)));
        assert_eq!(out.cfg.edge_count(), 2); // 1→2, 2→3
    }

    #[test]
    fn totally_disjoint_stacks_link_at_roots() {
        let out = infer_cfg(&[event(1, &[1, 2]), event(2, &[8, 9])]);
        assert!(out.cfg.has_edge(Va(1), Va(8)), "divergence at index 0");
    }

    #[test]
    fn empty_app_stacks_are_skipped() {
        let mut no_app = event(2, &[]);
        no_app.app_stack.clear();
        let out = infer_cfg(&[event(1, &[1, 2]), no_app, event(3, &[1, 5])]);
        // Event 3 pairs with event 1 (event 2 contributed nothing).
        assert!(out.cfg.has_edge(Va(2), Va(5)));
    }

    #[test]
    fn single_frame_stacks_contribute_only_implicit_edges() {
        let out = infer_cfg(&[event(1, &[4]), event(2, &[6])]);
        assert_eq!(out.cfg.edge_count(), 1);
        assert!(out.cfg.has_edge(Va(4), Va(6)));
    }

    #[test]
    fn memap_accumulates_events_per_edge() {
        let out = infer_cfg(&[event(1, &[1, 2]), event(5, &[1, 2]), event(9, &[1, 2])]);
        let evs = out.events_of(Va(1), Va(2)).unwrap();
        assert_eq!(evs.iter().copied().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn empty_input_yields_empty_cfg() {
        let out = infer_cfg(&[]);
        assert!(out.cfg.is_empty());
        assert!(out.edge_events.is_empty());
    }

    #[test]
    fn inference_on_generated_logs_builds_substantial_graphs() {
        use leaps_etw::logfmt::write_log;
        use leaps_etw::scenario::{GenParams, Scenario};
        use leaps_trace::parser::parse_log;
        use leaps_trace::partition::partition_events;

        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 3);
        let benign = partition_events(&parse_log(&write_log(&logs.benign)).unwrap().events);
        let out = infer_cfg(&benign);
        assert!(out.cfg.node_count() > 30);
        assert!(out.cfg.edge_count() > 30);
        // Every edge is attributed to at least one event.
        assert_eq!(out.edge_events.len(), out.cfg.edge_count());
    }
}
