//! Control-flow-graph inference from stack walks and CFG-guided weight
//! assessment — the paper's program-analysis half (Sections III-B and
//! III-C).
//!
//! * [`graph`] — the inferred CFG data structure (adjacency over virtual
//!   addresses) and reachability queries.
//! * [`infer`] — Algorithm 1: builds a CFG from the *application stack
//!   traces* in a system event log, using **explicit paths** (frame
//!   invocations within one stack) and **implicit paths** (divergence
//!   points between adjacent events' stacks). Also maintains the reverse
//!   map from CFG edges to the events that produced them (`memap`).
//! * [`weight`] — Algorithm 2: scores every edge of the mixed CFG against
//!   the benign CFG (reachable → benign; inside the benign address span →
//!   density-interpolated; outside → malicious) and averages edge scores
//!   into per-event *benignity* weights.
//! * [`align`] — the Section VI-A extension: structural CFG alignment so
//!   the weight assessment survives source-level trojans (recompiled,
//!   shifted benign code).
//! * [`dot`] — Graphviz export for Figure 4-style CFG comparisons.
//! * [`compare`] — structural overlap statistics between two CFGs.
//!
//! # Example
//!
//! ```
//! use leaps_cfg::infer::infer_cfg;
//! use leaps_cfg::weight::{assess_weights, WeightConfig};
//! use leaps_etw::logfmt::write_log;
//! use leaps_etw::scenario::{GenParams, Scenario};
//! use leaps_trace::parser::parse_log;
//! use leaps_trace::partition::partition_events;
//!
//! let logs = Scenario::by_name("vim_reverse_tcp")
//!     .unwrap()
//!     .generate_events(&GenParams::small(), 7);
//! let benign = partition_events(&parse_log(&write_log(&logs.benign))?.events);
//! let mixed = partition_events(&parse_log(&write_log(&logs.mixed))?.events);
//!
//! let bcfg = infer_cfg(&benign);
//! let mcfg = infer_cfg(&mixed);
//! let weights = assess_weights(&bcfg.cfg, &mcfg, WeightConfig::default());
//! // Every mixed event that contributed CFG edges has a benignity score.
//! assert!(weights.scored_events() > 0);
//! # Ok::<(), leaps_trace::parser::ParseError>(())
//! ```

pub mod align;
pub mod compare;
pub mod dot;
pub mod graph;
pub mod infer;
pub mod weight;

pub use graph::Cfg;
pub use infer::{infer_cfg, CfgWithEvents};
pub use weight::{assess_weights, WeightAssessment, WeightConfig};
