//! CFG alignment for source-level trojans (paper Section VI-A).
//!
//! Algorithm 2 compares CFGs by *address*: it assumes the benign code of
//! the trojaned binary sits at the same offsets as in the clean binary.
//! A source-level trojan breaks that — the adversary weaves the payload
//! into the source and recompiles, shifting every function. The paper
//! proposes, as future work, to "search for isomorphic subgraphs in both
//! benign/mixed CFGs by identifying and aligning pivotal nodes".
//!
//! This module implements that proposal:
//!
//! 1. every node of both CFGs gets a **structural signature** —
//!    iterated Weisfeiler–Lehman-style hashing of its in/out
//!    neighborhood (addresses never enter the hash);
//! 2. **pivotal nodes** are nodes whose signature is unique within both
//!    graphs; equal signatures are matched, mapping mixed-CFG addresses
//!    onto benign-CFG addresses;
//! 3. the match is propagated: an unmatched pair becomes matched when its
//!    signature is unique *among the unmatched remainder* of both graphs,
//!    which peels structure-preserving graphs almost completely;
//! 4. [`assess_weights_aligned`] then scores mixed edges in the aligned
//!    space — matched endpoints are checked by reachability like
//!    Algorithm 2; edges touching unmatched nodes are scored by how
//!    anchored the unmatched node is to matched (benign) structure,
//!    the structural analogue of the density array.

use crate::graph::{Cfg, ReachabilityCache};
use crate::infer::CfgWithEvents;
use crate::weight::WeightAssessment;
use leaps_etw::addr::Va;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};

/// A node correspondence between a mixed CFG and a benign CFG.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CfgAlignment {
    /// Mixed-CFG address → benign-CFG address for matched nodes.
    pub node_map: BTreeMap<Va, Va>,
}

impl CfgAlignment {
    /// Number of matched node pairs.
    #[must_use]
    pub fn matched(&self) -> usize {
        self.node_map.len()
    }

    /// The benign counterpart of a mixed node, if matched.
    #[must_use]
    pub fn to_benign(&self, mixed_node: Va) -> Option<Va> {
        self.node_map.get(&mixed_node).copied()
    }
}

/// Maximum Weisfeiler–Lehman refinement depth. Matching is
/// multi-resolution: deep signatures (3-hop neighborhoods) pin down
/// distinctive nodes first; shallower rounds then match nodes whose deep
/// neighborhoods were perturbed by the trojan insertion itself.
const WL_ROUNDS: usize = 3;

fn hash_one(items: &[u64]) -> u64 {
    let mut hasher = DefaultHasher::new();
    items.hash(&mut hasher);
    hasher.finish()
}

/// Computes WL signatures for every node of `cfg`. Purely structural:
/// the initial label is (out-degree, in-degree); each round rehashes the
/// node with the sorted multisets of its predecessor/successor labels.
fn wl_signatures_at(cfg: &Cfg, rounds: usize) -> BTreeMap<Va, u64> {
    let nodes = cfg.nodes();
    let mut preds: BTreeMap<Va, Vec<Va>> = BTreeMap::new();
    let mut succs: BTreeMap<Va, Vec<Va>> = BTreeMap::new();
    for (s, t) in cfg.iter_edges() {
        succs.entry(s).or_default().push(t);
        preds.entry(t).or_default().push(s);
    }
    let empty: Vec<Va> = Vec::new();
    let mut labels: BTreeMap<Va, u64> = nodes
        .iter()
        .map(|&n| {
            let out = succs.get(&n).unwrap_or(&empty).len() as u64;
            let inn = preds.get(&n).unwrap_or(&empty).len() as u64;
            (n, hash_one(&[out, inn]))
        })
        .collect();
    for _ in 0..rounds {
        let mut next = BTreeMap::new();
        for &n in &nodes {
            let mut out_labels: Vec<u64> =
                succs.get(&n).unwrap_or(&empty).iter().map(|m| labels[m]).collect();
            out_labels.sort_unstable();
            let mut in_labels: Vec<u64> =
                preds.get(&n).unwrap_or(&empty).iter().map(|m| labels[m]).collect();
            in_labels.sort_unstable();
            let mut items = vec![labels[&n], 0xfeed];
            items.extend(out_labels);
            items.push(0xface);
            items.extend(in_labels);
            next.insert(n, hash_one(&items));
        }
        labels = next;
    }
    labels
}

/// Collects signatures that occur exactly once, as `sig → node`.
fn unique_signatures(
    labels: &BTreeMap<Va, u64>,
    restrict: Option<&BTreeSet<Va>>,
) -> BTreeMap<u64, Va> {
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for (n, &sig) in labels {
        if restrict.is_none_or(|r| r.contains(n)) {
            *counts.entry(sig).or_insert(0) += 1;
        }
    }
    labels
        .iter()
        .filter(|(n, sig)| restrict.is_none_or(|r| r.contains(n)) && counts[sig] == 1)
        .map(|(&n, &sig)| (sig, n))
        .collect()
}

/// Aligns `mixed` onto `benign` by pivotal-node matching.
///
/// Both inputs should be **explicit-path subgraphs**
/// ([`crate::infer::CfgWithEvents::explicit`]): implicit edges encode
/// event adjacency, which varies between runs and would defeat any
/// structural signature.
///
/// Phases:
///
/// 1. **root matching** — explicit subgraphs of stack walks are
///    call forests; in-degree-0 roots (`main`) are matched by subtree
///    similarity;
/// 2. **tree-guided descent** — for each matched pair, unmatched children
///    are greedily paired by subtree-feature similarity (relative
///    subtree size, height, fanout), when the similarity clears a
///    threshold; matched pairs recurse. Coverage differences between runs
///    (unexercised functions) cost a little similarity but do not break
///    the descent, while a payload subtree grafted onto a hijacked benign
///    function looks nothing like the children it competes with;
/// 3. **WL refinement** — remaining unmatched nodes are matched when
///    their Weisfeiler–Lehman signature is unique in both remainders
///    (the "pivotal node" idea from the paper's sketch).
#[must_use]
pub fn align(benign: &Cfg, mixed: &Cfg) -> CfgAlignment {
    let mut node_map: BTreeMap<Va, Va> = BTreeMap::new();
    let mut unmatched_benign: BTreeSet<Va> = benign.nodes().into_iter().collect();
    let mut unmatched_mixed: BTreeSet<Va> = mixed.nodes().into_iter().collect();

    // Phase 1+2: tree-guided descent from matched roots.
    let b_feats = subtree_features(benign);
    let m_feats = subtree_features(mixed);
    let b_roots = roots_of(benign);
    let m_roots = roots_of(mixed);
    let mut queue: Vec<(Va, Va)> = Vec::new();
    greedy_pair(
        &b_roots,
        &m_roots,
        &b_feats,
        &m_feats,
        &mut node_map,
        &mut unmatched_benign,
        &mut unmatched_mixed,
        &mut queue,
    );
    while let Some((b_node, m_node)) = queue.pop() {
        let b_children: Vec<Va> =
            benign.successors(b_node).filter(|c| unmatched_benign.contains(c)).collect();
        let m_children: Vec<Va> =
            mixed.successors(m_node).filter(|c| unmatched_mixed.contains(c)).collect();
        greedy_pair(
            &b_children,
            &m_children,
            &b_feats,
            &m_feats,
            &mut node_map,
            &mut unmatched_benign,
            &mut unmatched_mixed,
            &mut queue,
        );
    }

    // Phase 3: WL-unique refinement on the remainder.
    for rounds in (0..=WL_ROUNDS).rev() {
        let benign_sigs = wl_signatures_at(benign, rounds);
        let mixed_sigs = wl_signatures_at(mixed, rounds);
        loop {
            let b_unique = unique_signatures(&benign_sigs, Some(&unmatched_benign));
            let m_unique = unique_signatures(&mixed_sigs, Some(&unmatched_mixed));
            let mut progress = false;
            for (sig, b_node) in &b_unique {
                if let Some(&m_node) = m_unique.get(sig) {
                    node_map.insert(m_node, *b_node);
                    unmatched_benign.remove(b_node);
                    unmatched_mixed.remove(&m_node);
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
    }
    CfgAlignment { node_map }
}

/// Minimum similarity for a tree-guided match. Genuine counterparts with
/// moderate coverage differences score well above this; a payload subtree
/// competing against benign children scores below it unless it happens to
/// mimic their shape.
const MATCH_THRESHOLD: f64 = 0.5;

/// Per-node structural features of the (forest-shaped) explicit graph:
/// `(subtree size, height, out-degree)` with cycle-guarded DFS.
fn subtree_features(cfg: &Cfg) -> BTreeMap<Va, (usize, usize, usize)> {
    let mut memo: BTreeMap<Va, (usize, usize, usize)> = BTreeMap::new();
    fn visit(
        cfg: &Cfg,
        node: Va,
        memo: &mut BTreeMap<Va, (usize, usize, usize)>,
        on_stack: &mut BTreeSet<Va>,
    ) -> (usize, usize) {
        if let Some(&(size, height, _)) = memo.get(&node) {
            return (size, height);
        }
        if !on_stack.insert(node) {
            return (1, 0); // cycle (recursion): cap the contribution
        }
        let mut size = 1;
        let mut height = 0;
        let succs: Vec<Va> = cfg.successors(node).collect();
        for child in &succs {
            let (cs, ch) = visit(cfg, *child, memo, on_stack);
            size += cs;
            height = height.max(ch + 1);
        }
        on_stack.remove(&node);
        memo.insert(node, (size, height, succs.len()));
        (size, height)
    }
    for node in cfg.nodes() {
        let mut on_stack = BTreeSet::new();
        visit(cfg, node, &mut memo, &mut on_stack);
    }
    memo
}

/// In-degree-0 nodes.
fn roots_of(cfg: &Cfg) -> Vec<Va> {
    let mut has_pred: BTreeSet<Va> = BTreeSet::new();
    for (_, t) in cfg.iter_edges() {
        has_pred.insert(t);
    }
    cfg.nodes().into_iter().filter(|n| !has_pred.contains(n)).collect()
}

/// Similarity of two subtrees as the product of min/max ratios of their
/// features; 1.0 for identical shapes.
fn similarity(a: (usize, usize, usize), b: (usize, usize, usize)) -> f64 {
    let ratio = |x: usize, y: usize| {
        let (lo, hi) = ((x.min(y) + 1) as f64, (x.max(y) + 1) as f64);
        lo / hi
    };
    ratio(a.0, b.0) * ratio(a.1, b.1) * ratio(a.2, b.2)
}

#[allow(clippy::too_many_arguments)]
fn greedy_pair(
    b_candidates: &[Va],
    m_candidates: &[Va],
    b_feats: &BTreeMap<Va, (usize, usize, usize)>,
    m_feats: &BTreeMap<Va, (usize, usize, usize)>,
    node_map: &mut BTreeMap<Va, Va>,
    unmatched_benign: &mut BTreeSet<Va>,
    unmatched_mixed: &mut BTreeSet<Va>,
    queue: &mut Vec<(Va, Va)>,
) {
    let mut scored: Vec<(f64, Va, Va)> = Vec::new();
    for &b in b_candidates {
        for &m in m_candidates {
            let s = similarity(b_feats[&b], m_feats[&m]);
            if s >= MATCH_THRESHOLD {
                scored.push((s, b, m));
            }
        }
    }
    // Deterministic order: best score first, ties by address.
    scored.sort_by(|x, y| {
        y.0.total_cmp(&x.0).then_with(|| x.1.cmp(&y.1)).then_with(|| x.2.cmp(&y.2))
    });
    for (_, b, m) in scored {
        if unmatched_benign.contains(&b) && unmatched_mixed.contains(&m) {
            node_map.insert(m, b);
            unmatched_benign.remove(&b);
            unmatched_mixed.remove(&m);
            queue.push((b, m));
        }
    }
    // Relaxation: when exactly one candidate remains on each side, the
    // pairing is unambiguous even if the shapes diverged — this is
    // exactly the hijacked function, whose subtree grew by the payload.
    let b_rest: Vec<Va> =
        b_candidates.iter().copied().filter(|b| unmatched_benign.contains(b)).collect();
    let m_rest: Vec<Va> =
        m_candidates.iter().copied().filter(|m| unmatched_mixed.contains(m)).collect();
    if let ([b], [m]) = (b_rest.as_slice(), m_rest.as_slice()) {
        node_map.insert(*m, *b);
        unmatched_benign.remove(b);
        unmatched_mixed.remove(m);
        queue.push((*b, *m));
    }
}

/// Aligned variant of Algorithm 2: scores the mixed CFG's edges against
/// the benign CFG *through a structural node alignment* so that
/// recompiled (shifted) benign code still scores benign.
///
/// Edge scoring:
///
/// * both endpoints matched → 1 if the aligned pair is connected in the
///   benign CFG (reachability), else the mean *anchoring* of the
///   endpoints (see below);
/// * any endpoint unmatched → the mean anchoring of the unmatched
///   endpoint(s), where anchoring of a node is the fraction of its mixed
///   neighbors that are matched. Payload subgraphs are mostly
///   unmatched-next-to-unmatched → anchoring ≈ 0; novel benign leaves
///   hang off matched structure → anchoring ≈ 1.
#[must_use]
pub fn assess_weights_aligned(benign: &CfgWithEvents, mixed: &CfgWithEvents) -> WeightAssessment {
    let alignment = align(&benign.explicit, &mixed.explicit);
    let benign = &benign.cfg;
    let mut reach = ReachabilityCache::new(benign);

    // Neighbor sets in the mixed graph (undirected view).
    let mut neighbors: BTreeMap<Va, Vec<Va>> = BTreeMap::new();
    for (s, t) in mixed.cfg.iter_edges() {
        neighbors.entry(s).or_default().push(t);
        neighbors.entry(t).or_default().push(s);
    }
    // Anchoring: how strongly a node is tied to matched (benign)
    // structure. Matched nodes anchor at 1; everything else takes the
    // damped mean of its neighbors' anchoring over a few rounds, so novel
    // benign code hanging off matched structure scores high while payload
    // subgraphs (connected to benign code only through the hijack edge)
    // decay toward 0.
    let nodes = mixed.cfg.nodes();
    let mut anchor: BTreeMap<Va, f64> = nodes
        .iter()
        .map(|&n| (n, if alignment.node_map.contains_key(&n) { 1.0 } else { 0.0 }))
        .collect();
    let empty: Vec<Va> = Vec::new();
    for _ in 0..3 {
        let mut next = anchor.clone();
        for &n in &nodes {
            if alignment.node_map.contains_key(&n) {
                continue;
            }
            let ns = neighbors.get(&n).unwrap_or(&empty);
            if !ns.is_empty() {
                let mean = ns.iter().map(|m| anchor[m]).sum::<f64>() / ns.len() as f64;
                next.insert(n, 0.9 * mean);
            }
        }
        anchor = next;
    }
    let anchoring = |n: Va| -> f64 { anchor.get(&n).copied().unwrap_or(0.0) };

    let mut sums: BTreeMap<u64, (f64, usize)> = BTreeMap::new();
    for (start, end) in mixed.cfg.iter_edges() {
        let score = match (alignment.to_benign(start), alignment.to_benign(end)) {
            (Some(bs), Some(be)) => {
                if benign.has_edge(bs, be) || reach.reachable(bs, be) {
                    1.0
                } else {
                    0.5 * (anchoring(start) + anchoring(end))
                }
            }
            (Some(_), None) => anchoring(end),
            (None, Some(_)) => anchoring(start),
            (None, None) => 0.5 * (anchoring(start) + anchoring(end)),
        };
        if let Some(events) = mixed.events_of(start, end) {
            for &num in events {
                let entry = sums.entry(num).or_insert((0.0, 0));
                entry.0 += score;
                entry.1 += 1;
            }
        }
    }
    WeightAssessment::from_means(
        sums.into_iter().map(|(num, (sum, count))| (num, sum / count as f64)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_cfg;
    use leaps_etw::event::{EventType, StackFrame};
    use leaps_trace::partition::PartitionedEvent;

    fn chain_cfg(addrs: &[u64]) -> Cfg {
        let mut cfg = Cfg::new();
        for w in addrs.windows(2) {
            cfg.add_edge(Va(w[0]), Va(w[1]));
        }
        cfg
    }

    /// A small benign "program": root with two distinct subtrees.
    fn tree(base: u64) -> Cfg {
        let mut cfg = Cfg::new();
        // root -> a -> {a1, a2, a3}, root -> b -> b1 -> b2
        cfg.add_edge(Va(base), Va(base + 10));
        cfg.add_edge(Va(base + 10), Va(base + 11));
        cfg.add_edge(Va(base + 10), Va(base + 12));
        cfg.add_edge(Va(base + 10), Va(base + 13));
        cfg.add_edge(Va(base), Va(base + 20));
        cfg.add_edge(Va(base + 20), Va(base + 21));
        cfg.add_edge(Va(base + 21), Va(base + 22));
        cfg
    }

    #[test]
    fn identical_structure_at_shifted_addresses_fully_aligns() {
        let benign = tree(0x1000);
        let shifted = tree(0x9000);
        let a = align(&benign, &shifted);
        // Distinctive nodes match by signature; identical siblings match
        // via the parent-guided phase.
        assert_eq!(a.matched(), benign.node_count());
        assert_eq!(a.to_benign(Va(0x9000)), Some(Va(0x1000)));
        assert_eq!(a.to_benign(Va(0x9016)), Some(Va(0x1016))); // b2
    }

    #[test]
    fn extra_payload_subgraph_stays_unmatched() {
        let benign = tree(0x1000);
        let mut mixed = tree(0x9000);
        // Payload: a chain hanging off node a (hijack) — structurally
        // alien to the benign graph.
        mixed.add_edge(Va(0x9010), Va(0xf000));
        mixed.add_edge(Va(0xf000), Va(0xf001));
        mixed.add_edge(Va(0xf001), Va(0xf002));
        mixed.add_edge(Va(0xf001), Va(0xf003));
        mixed.add_edge(Va(0xf001), Va(0xf004));
        mixed.add_edge(Va(0xf004), Va(0xf005));
        let a = align(&benign, &mixed);
        for payload_node in [0xf000u64, 0xf001, 0xf002, 0xf004, 0xf005] {
            assert_eq!(a.to_benign(Va(payload_node)), None, "{payload_node:#x}");
        }
        // Most of the benign structure still matches despite the altered
        // neighborhood around the hijack point.
        assert!(a.matched() >= benign.node_count() / 2, "matched {}", a.matched());
    }

    #[test]
    fn symmetric_chains_align_partially_without_mismatching() {
        // Two identical chains are ambiguous; alignment must not invent
        // wrong pairs (it may match the distinguishable middle).
        let benign = chain_cfg(&[1, 2, 3]);
        let mixed = chain_cfg(&[101, 102, 103]);
        let a = align(&benign, &mixed);
        for (m, b) in &a.node_map {
            assert_eq!(m.0 - 100, b.0, "wrong pair {m} -> {b}");
        }
    }

    fn event(num: u64, addrs: &[u64]) -> PartitionedEvent {
        PartitionedEvent {
            num,
            etype: EventType::FileRead,
            tid: 1,
            app_stack: addrs
                .iter()
                .map(|&a| StackFrame::new("app", format!("f{a}"), Va(a), true))
                .collect(),
            system_stack: Vec::new(),
            truth: None,
        }
    }

    #[test]
    fn aligned_assessment_scores_shifted_benign_high_and_payload_low() {
        // Benign CFG at low addresses.
        let benign_events = [
            event(1, &[0x1000, 0x1010, 0x1011]),
            event(2, &[0x1000, 0x1010, 0x1012]),
            event(3, &[0x1000, 0x1020, 0x1021, 0x1022]),
            event(4, &[0x1000, 0x1010, 0x1013]),
        ];
        let benign = infer_cfg(&benign_events);
        // "Recompiled" mixed run: same structure shifted by 0x8000, plus
        // a payload chain (events 5-6).
        let mixed_events = [
            event(1, &[0x9000, 0x9010, 0x9011]),
            event(2, &[0x9000, 0x9010, 0x9012]),
            event(3, &[0x9000, 0x9020, 0x9021, 0x9022]),
            event(4, &[0x9000, 0x9010, 0x9013]),
            event(5, &[0x9000, 0x9010, 0xf000, 0xf001, 0xf002]),
            event(6, &[0x9000, 0x9010, 0xf000, 0xf001, 0xf003]),
        ];
        let mixed = infer_cfg(&mixed_events);
        let weights = assess_weights_aligned(&benign, &mixed);
        let benign_score = weights.benignity(3).expect("scored");
        let payload_score = weights.benignity(5).expect("scored");
        assert!(
            benign_score > payload_score + 0.2,
            "benign {benign_score} vs payload {payload_score}"
        );
        // Vanilla Algorithm 2 would give the shifted benign events low
        // scores (their addresses are all outside the benign span).
        let vanilla = crate::weight::assess_weights(
            &benign.cfg,
            &mixed,
            crate::weight::WeightConfig::default(),
        );
        assert!(vanilla.benignity(3).expect("scored") < benign_score);
    }

    #[test]
    fn empty_graphs_align_trivially() {
        let a = align(&Cfg::new(), &Cfg::new());
        assert_eq!(a.matched(), 0);
        assert_eq!(a.to_benign(Va(1)), None);
    }
}
