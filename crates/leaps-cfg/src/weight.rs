//! Algorithm 2: CFG-guided weight assessment.
//!
//! Every edge of the **mixed** CFG is scored for *benignity* against the
//! **benign** CFG:
//!
//! * start → end reachable in the benign CFG → score **1** (benign path);
//! * otherwise, if both endpoints lie inside the benign CFG's address span
//!   (the *density array* of benign node addresses), the score is the
//!   normalized proximity of `start` to its surrounding benign nodes
//!   (`ESTIMATE_WEIGHT`) — unseen paths interleaved with benign code are
//!   probably benign functionality missing from the incomplete benign CFG;
//! * otherwise → score **0** (code far outside the benign layout:
//!   appended trojan sections, injected memory).
//!
//! Per-event benignity is the running mean of the scores of all edges the
//! event contributed (`SET_WEIGHT`/`REBALANCE`, which the paper describes
//! as "averaging all its paths' weights").
//!
//! **Polarity note** (see DESIGN.md): these scores are *benignity*; the
//! Weighted SVM consumes `1 − benignity` as the confidence that a
//! mixed-log sample is genuinely malicious.

use crate::graph::{Cfg, ReachabilityCache};
use crate::infer::CfgWithEvents;
use leaps_etw::addr::Va;
use std::collections::BTreeMap;

/// Options for the weight assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightConfig {
    /// Enable the density-array interpolation for in-span unseen paths.
    /// Disabling it (ablation) scores every non-reachable edge 0.
    pub density_estimation: bool,
}

impl Default for WeightConfig {
    fn default() -> Self {
        WeightConfig { density_estimation: true }
    }
}

/// Result of Algorithm 2: per-event benignity scores in `[0, 1]`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WeightAssessment {
    event_benignity: BTreeMap<u64, f64>,
}

impl WeightAssessment {
    /// Benignity of an event, if the event contributed any CFG edge.
    #[must_use]
    pub fn benignity(&self, event_num: u64) -> Option<f64> {
        self.event_benignity.get(&event_num).copied()
    }

    /// Benignity of an event, defaulting to 1 (treat-as-benign: an event
    /// without control-flow evidence must not be trained on as malicious).
    #[must_use]
    pub fn benignity_or_default(&self, event_num: u64) -> f64 {
        self.benignity(event_num).unwrap_or(1.0)
    }

    /// Maliciousness weight for the Weighted SVM: `1 − benignity`.
    #[must_use]
    pub fn maliciousness(&self, event_num: u64) -> f64 {
        1.0 - self.benignity_or_default(event_num)
    }

    /// Number of events that received a score.
    #[must_use]
    pub fn scored_events(&self) -> usize {
        self.event_benignity.len()
    }

    /// Iterates `(event number, benignity)` pairs in event order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.event_benignity.iter().map(|(&k, &v)| (k, v))
    }

    /// Builds an assessment from precomputed per-event means (used by the
    /// aligned variant in [`crate::align`]).
    #[must_use]
    pub fn from_means(means: impl IntoIterator<Item = (u64, f64)>) -> WeightAssessment {
        WeightAssessment { event_benignity: means.into_iter().collect() }
    }
}

/// The sorted benign-node address array used by `ESTIMATE_WEIGHT`
/// (paper `GEN_CFG_DENSITY`). Deduplicated so interpolation gaps are
/// well-defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityArray {
    addrs: Vec<Va>,
}

impl DensityArray {
    /// Builds the density array from a CFG's node addresses.
    #[must_use]
    pub fn from_cfg(cfg: &Cfg) -> DensityArray {
        DensityArray { addrs: cfg.nodes() }
    }

    /// Whether the array is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Whether `addr` lies within `[min, max]` of the benign nodes
    /// (paper `WITHIN_RANGE` for a single address).
    #[must_use]
    pub fn in_range(&self, addr: Va) -> bool {
        match (self.addrs.first(), self.addrs.last()) {
            (Some(&lo), Some(&hi)) => lo <= addr && addr <= hi,
            _ => false,
        }
    }

    /// `ESTIMATE_WEIGHT`: proximity of `addr` to its surrounding benign
    /// nodes, in `[0, 1]`. An address coinciding with a benign node scores
    /// 1; the midpoint of a gap scores 0.5.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not [`Self::in_range`] (callers must check
    /// `WITHIN_RANGE` first, as Algorithm 2 does).
    #[must_use]
    pub fn estimate(&self, addr: Va) -> f64 {
        assert!(self.in_range(addr), "estimate() requires an in-range address");
        match self.addrs.binary_search(&addr) {
            Ok(_) => 1.0,
            Err(idx) => {
                // in_range guarantees 0 < idx < len.
                let left = self.addrs[idx - 1];
                let right = self.addrs[idx];
                let gap = right.distance(left);
                let mindiff = addr.distance(left).min(right.distance(addr));
                1.0 - mindiff as f64 / gap as f64
            }
        }
    }
}

/// Runs Algorithm 2 (`COMPARE_CFG`): scores every edge of `mixed` against
/// `benign` and aggregates per-event benignity via running means.
#[must_use]
pub fn assess_weights(
    benign: &Cfg,
    mixed: &CfgWithEvents,
    config: WeightConfig,
) -> WeightAssessment {
    let density = DensityArray::from_cfg(benign);
    let mut reach = ReachabilityCache::new(benign);
    let mut sums: BTreeMap<u64, (f64, usize)> = BTreeMap::new();

    for (start, end) in mixed.cfg.iter_edges() {
        let score = edge_benignity(benign, &mut reach, &density, start, end, config);
        if let Some(events) = mixed.events_of(start, end) {
            for &num in events {
                let entry = sums.entry(num).or_insert((0.0, 0));
                entry.0 += score;
                entry.1 += 1;
            }
        }
    }

    WeightAssessment {
        event_benignity: sums
            .into_iter()
            .map(|(num, (sum, count))| (num, sum / count as f64))
            .collect(),
    }
}

/// Scores a single edge (exposed for tests and diagnostics).
#[must_use]
pub fn edge_benignity(
    benign: &Cfg,
    reach: &mut ReachabilityCache<'_>,
    density: &DensityArray,
    start: Va,
    end: Va,
    config: WeightConfig,
) -> f64 {
    // Direct edges and longer benign paths both count as "connected in the
    // benign CFG" (CHECK_CFG is a reachability query).
    if benign.has_edge(start, end) || reach.reachable(start, end) {
        return 1.0;
    }
    if config.density_estimation && density.in_range(start) && density.in_range(end) {
        return density.estimate(start);
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_cfg;
    use leaps_etw::event::{EventType, StackFrame};
    use leaps_trace::partition::PartitionedEvent;

    fn event(num: u64, addrs: &[u64]) -> PartitionedEvent {
        PartitionedEvent {
            num,
            etype: EventType::FileRead,
            tid: 1,
            app_stack: addrs
                .iter()
                .map(|&a| StackFrame::new("app", format!("f{a}"), Va(a), true))
                .collect(),
            system_stack: Vec::new(),
            truth: None,
        }
    }

    fn benign_cfg() -> Cfg {
        // Benign layout: nodes 100, 200, 300, 400 with 100→200→300→400.
        let mut cfg = Cfg::new();
        cfg.add_edge(Va(100), Va(200));
        cfg.add_edge(Va(200), Va(300));
        cfg.add_edge(Va(300), Va(400));
        cfg
    }

    #[test]
    fn density_array_range_and_estimation() {
        let d = DensityArray::from_cfg(&benign_cfg());
        assert!(d.in_range(Va(100)));
        assert!(d.in_range(Va(399)));
        assert!(!d.in_range(Va(99)));
        assert!(!d.in_range(Va(401)));
        // On a node → 1.0.
        assert_eq!(d.estimate(Va(200)), 1.0);
        // Midpoint of [200, 300] → 0.5.
        assert!((d.estimate(Va(250)) - 0.5).abs() < 1e-12);
        // Close to a node → close to 1.
        assert!((d.estimate(Va(290)) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn empty_density_array() {
        let d = DensityArray::from_cfg(&Cfg::new());
        assert!(d.is_empty());
        assert!(!d.in_range(Va(0)));
    }

    #[test]
    fn edge_scores_follow_algorithm_2() {
        let benign = benign_cfg();
        let density = DensityArray::from_cfg(&benign);
        let mut reach = ReachabilityCache::new(&benign);
        let cfg = WeightConfig::default();
        // Reachable (transitively) → 1.
        assert_eq!(edge_benignity(&benign, &mut reach, &density, Va(100), Va(400), cfg), 1.0);
        // In-range unseen → interpolated from start address.
        let w = edge_benignity(&benign, &mut reach, &density, Va(250), Va(150), cfg);
        assert!((w - 0.5).abs() < 1e-12);
        // Out of range → 0 (e.g. injected payload at high addresses).
        assert_eq!(edge_benignity(&benign, &mut reach, &density, Va(9000), Va(9100), cfg), 0.0);
        // Start in range but end outside (hijack into appended code) → 0.
        assert_eq!(edge_benignity(&benign, &mut reach, &density, Va(200), Va(9000), cfg), 0.0);
    }

    #[test]
    fn ablation_disables_density_interpolation() {
        let benign = benign_cfg();
        let density = DensityArray::from_cfg(&benign);
        let mut reach = ReachabilityCache::new(&benign);
        let cfg = WeightConfig { density_estimation: false };
        assert_eq!(edge_benignity(&benign, &mut reach, &density, Va(250), Va(150), cfg), 0.0);
    }

    #[test]
    fn per_event_weights_average_edge_scores() {
        let benign = benign_cfg();
        // Mixed trace: event 1 walks the benign path (all edges benign),
        // event 2 walks far-away payload code.
        let mixed = infer_cfg(&[event(1, &[100, 200, 300]), event(2, &[9000, 9100])]);
        let weights = assess_weights(&benign, &mixed, WeightConfig::default());
        // Event 1 contributed explicit edges 100→200 and 200→300 (score 1
        // each) plus the shared implicit divergence edge 100→9000
        // (score 0): mean 2/3.
        let b1 = weights.benignity(1).unwrap();
        assert!((b1 - 2.0 / 3.0).abs() < 1e-12, "benign event benignity {b1}");
        // Event 2 contributed the implicit edge (100→9000) and its
        // explicit edge (9000→9100), both score 0.
        let b2 = weights.benignity(2).unwrap();
        assert_eq!(b2, 0.0, "payload event benignity {b2}");
        assert_eq!(weights.maliciousness(2), 1.0);
    }

    #[test]
    fn unscored_event_defaults_to_benign() {
        let w = WeightAssessment::default();
        assert_eq!(w.benignity(42), None);
        assert_eq!(w.benignity_or_default(42), 1.0);
        assert_eq!(w.maliciousness(42), 0.0);
        assert_eq!(w.scored_events(), 0);
    }

    #[test]
    fn scores_stay_in_unit_interval_on_generated_data() {
        use leaps_etw::logfmt::write_log;
        use leaps_etw::scenario::{GenParams, Scenario};
        use leaps_trace::parser::parse_log;
        use leaps_trace::partition::partition_events;

        let logs = Scenario::by_name("putty_reverse_tcp_online")
            .unwrap()
            .generate_events(&GenParams::small(), 5);
        let benign = partition_events(&parse_log(&write_log(&logs.benign)).unwrap().events);
        let mixed = partition_events(&parse_log(&write_log(&logs.mixed)).unwrap().events);
        let bcfg = infer_cfg(&benign);
        let mcfg = infer_cfg(&mixed);
        let weights = assess_weights(&bcfg.cfg, &mcfg, WeightConfig::default());
        assert!(weights.scored_events() > 100);
        for (_, b) in weights.iter() {
            assert!((0.0..=1.0).contains(&b));
        }
    }

    #[test]
    fn payload_events_score_lower_than_benign_events_on_generated_data() {
        use leaps_etw::event::Provenance;
        use leaps_etw::logfmt::write_log;
        use leaps_etw::scenario::{GenParams, Scenario};
        use leaps_trace::parser::parse_log;
        use leaps_trace::partition::partition_events;

        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 5);
        let benign = partition_events(&parse_log(&write_log(&logs.benign)).unwrap().events);
        let mixed = partition_events(&parse_log(&write_log(&logs.mixed)).unwrap().events);
        let bcfg = infer_cfg(&benign);
        let mcfg = infer_cfg(&mixed);
        let weights = assess_weights(&bcfg.cfg, &mcfg, WeightConfig::default());

        let mean = |truth: Provenance| {
            let vals: Vec<f64> = mixed
                .iter()
                .filter(|e| e.truth == Some(truth))
                .filter_map(|e| weights.benignity(e.num))
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let benign_mean = mean(Provenance::Benign);
        let malicious_mean = mean(Provenance::Malicious);
        assert!(
            benign_mean > malicious_mean + 0.3,
            "benign {benign_mean} vs malicious {malicious_mean}"
        );
    }
}
