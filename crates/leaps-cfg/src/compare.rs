//! Structural comparison of two inferred CFGs (used by Figure 4 style
//! analyses and by tests asserting that the payload forms a distinct
//! subgraph).

use crate::graph::Cfg;
use leaps_etw::addr::Va;
use std::collections::BTreeSet;

/// Overlap statistics between a benign CFG and a mixed CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CfgOverlap {
    /// Nodes present in both graphs.
    pub shared_nodes: usize,
    /// Nodes only in the benign graph.
    pub benign_only_nodes: usize,
    /// Nodes only in the mixed graph (candidate payload code).
    pub mixed_only_nodes: usize,
    /// Edges present in both graphs.
    pub shared_edges: usize,
    /// Edges only in the mixed graph.
    pub mixed_only_edges: usize,
}

/// Computes node/edge overlap between `benign` and `mixed`.
#[must_use]
pub fn overlap(benign: &Cfg, mixed: &Cfg) -> CfgOverlap {
    let bn: BTreeSet<Va> = benign.nodes().into_iter().collect();
    let mn: BTreeSet<Va> = mixed.nodes().into_iter().collect();
    let be: BTreeSet<(Va, Va)> = benign.iter_edges().collect();
    let me: BTreeSet<(Va, Va)> = mixed.iter_edges().collect();
    CfgOverlap {
        shared_nodes: bn.intersection(&mn).count(),
        benign_only_nodes: bn.difference(&mn).count(),
        mixed_only_nodes: mn.difference(&bn).count(),
        shared_edges: be.intersection(&me).count(),
        mixed_only_edges: me.difference(&be).count(),
    }
}

/// Nodes of `mixed` that are absent from `benign` (the anomalous
/// subgraph of Figure 4), ascending.
#[must_use]
pub fn mixed_only_nodes(benign: &Cfg, mixed: &Cfg) -> Vec<Va> {
    let bn: BTreeSet<Va> = benign.nodes().into_iter().collect();
    mixed.nodes().into_iter().filter(|n| !bn.contains(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_counts() {
        let mut b = Cfg::new();
        b.add_edge(Va(1), Va(2));
        b.add_edge(Va(2), Va(3));
        let mut m = Cfg::new();
        m.add_edge(Va(1), Va(2));
        m.add_edge(Va(2), Va(9));
        let o = overlap(&b, &m);
        assert_eq!(o.shared_nodes, 2); // 1, 2
        assert_eq!(o.benign_only_nodes, 1); // 3
        assert_eq!(o.mixed_only_nodes, 1); // 9
        assert_eq!(o.shared_edges, 1);
        assert_eq!(o.mixed_only_edges, 1);
        assert_eq!(mixed_only_nodes(&b, &m), vec![Va(9)]);
    }

    #[test]
    fn identical_graphs_fully_overlap() {
        let mut g = Cfg::new();
        g.add_edge(Va(1), Va(2));
        let o = overlap(&g, &g);
        assert_eq!(o.mixed_only_nodes, 0);
        assert_eq!(o.mixed_only_edges, 0);
        assert_eq!(o.shared_edges, 1);
    }

    #[test]
    fn trojaned_run_produces_distinct_subgraph() {
        use crate::infer::infer_cfg;
        use leaps_etw::logfmt::write_log;
        use leaps_etw::scenario::{GenParams, Scenario};
        use leaps_trace::parser::parse_log;
        use leaps_trace::partition::partition_events;

        let logs =
            Scenario::by_name("vim_reverse_tcp").unwrap().generate_events(&GenParams::small(), 5);
        let benign = partition_events(&parse_log(&write_log(&logs.benign)).unwrap().events);
        let mixed = partition_events(&parse_log(&write_log(&logs.mixed)).unwrap().events);
        let bcfg = infer_cfg(&benign).cfg;
        let mcfg = infer_cfg(&mixed).cfg;
        let o = overlap(&bcfg, &mcfg);
        // Payload code forms a substantial mixed-only region.
        assert!(o.mixed_only_nodes > 10, "{o:?}");
        // The benign functionality is shared.
        assert!(o.shared_nodes > 30, "{o:?}");
    }
}
