//! Graphviz (DOT) export of inferred CFGs, for Figure 4-style
//! visual comparison of benign vs mixed graphs.

use crate::graph::Cfg;
use leaps_etw::addr::Va;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders `cfg` as a DOT digraph named `name`.
///
/// If `reference` is given, nodes absent from the reference graph (the
/// anomalous/payload subgraph) are filled red, as in the paper's Figure 4
/// comparison of the Vim benign CFG and the trojaned Vim mixed CFG.
#[must_use]
pub fn to_dot(cfg: &Cfg, name: &str, reference: Option<&Cfg>) -> String {
    let reference_nodes: BTreeSet<Va> =
        reference.map(|r| r.nodes().into_iter().collect()).unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(name));
    out.push_str("  node [shape=box, fontsize=9];\n");
    for node in cfg.nodes() {
        let anomalous = reference.is_some() && !reference_nodes.contains(&node);
        if anomalous {
            let _ = writeln!(
                out,
                "  \"{node}\" [style=filled, fillcolor=\"#e74c3c\", fontcolor=white];"
            );
        } else {
            let _ = writeln!(out, "  \"{node}\";");
        }
    }
    for (start, end) in cfg.iter_edges() {
        let _ = writeln!(out, "  \"{start}\" -> \"{end}\";");
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> Cfg {
        let mut g = Cfg::new();
        g.add_edge(Va(0x10), Va(0x20));
        g.add_edge(Va(0x20), Va(0x30));
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let dot = to_dot(&graph(), "benign", None);
        assert!(dot.starts_with("digraph \"benign\" {"));
        assert!(dot.contains("\"0x0000000000000010\" -> \"0x0000000000000020\";"));
        assert!(dot.contains("\"0x0000000000000020\" -> \"0x0000000000000030\";"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(!dot.contains("fillcolor"));
    }

    #[test]
    fn reference_highlights_anomalous_nodes() {
        let benign = graph();
        let mut mixed = graph();
        mixed.add_edge(Va(0x20), Va(0x900));
        let dot = to_dot(&mixed, "mixed", Some(&benign));
        // Only the payload node is highlighted.
        assert_eq!(dot.matches("fillcolor").count(), 1);
        assert!(dot.contains("\"0x0000000000000900\" [style=filled"));
    }

    #[test]
    fn names_are_sanitized() {
        let dot = to_dot(&graph(), "vim reverse-tcp", None);
        assert!(dot.starts_with("digraph \"vim_reverse_tcp\""));
    }
}
