//! Property tests for the CFG machinery: reachability against a
//! brute-force transitive closure, density-array estimation bounds, and
//! alignment sanity on random trees.
#![allow(clippy::needless_range_loop)] // dense matrix code reads best indexed

use leaps_cfg::align::align;
use leaps_cfg::graph::{Cfg, ReachabilityCache};
use leaps_cfg::weight::DensityArray;
use leaps_etw::addr::Va;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random directed graph over nodes 0..n as an edge list.
fn random_graph() -> impl Strategy<Value = (usize, Vec<(u64, u64)>)> {
    (2u64..10).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..30).prop_map(move |edges| (n as usize, edges))
    })
}

fn build(edges: &[(u64, u64)]) -> Cfg {
    let mut cfg = Cfg::new();
    for &(s, t) in edges {
        cfg.add_edge(Va(s), Va(t));
    }
    cfg
}

/// Brute-force transitive closure via repeated squaring over a boolean
/// matrix; `closure[i][j]` = path of length ≥ 1 from i to j.
fn brute_closure(n: usize, edges: &[(u64, u64)]) -> Vec<Vec<bool>> {
    let mut reach = vec![vec![false; n]; n];
    for &(s, t) in edges {
        reach[s as usize][t as usize] = true;
    }
    for _ in 0..n {
        let prev = reach.clone();
        for i in 0..n {
            for j in 0..n {
                if !reach[i][j] {
                    reach[i][j] = (0..n).any(|k| prev[i][k] && prev[k][j]);
                }
            }
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DFS reachability (plain and cached) agrees with the brute-force
    /// transitive closure on arbitrary graphs, including cycles and
    /// self-loops.
    #[test]
    fn reachability_matches_transitive_closure((n, edges) in random_graph()) {
        let cfg = build(&edges);
        let closure = brute_closure(n, &edges);
        let mut cache = ReachabilityCache::new(&cfg);
        for i in 0..n {
            for j in 0..n {
                let expected = closure[i][j];
                prop_assert_eq!(
                    cfg.reachable(Va(i as u64), Va(j as u64)),
                    expected,
                    "({}, {})", i, j
                );
                prop_assert_eq!(
                    cache.reachable(Va(i as u64), Va(j as u64)),
                    expected
                );
            }
        }
    }

    /// Density-array estimates are always in [0, 1], equal 1 exactly on
    /// nodes, and are symmetric around gap midpoints.
    #[test]
    fn density_estimates_bounded((_, edges) in random_graph(), probe in 0u64..12) {
        let cfg = build(&edges);
        if cfg.is_empty() {
            return Ok(());
        }
        let density = DensityArray::from_cfg(&cfg);
        let addr = Va(probe);
        if density.in_range(addr) {
            let w = density.estimate(addr);
            prop_assert!((0.0..=1.0).contains(&w), "estimate {w}");
            if cfg.nodes().contains(&addr) {
                prop_assert_eq!(w, 1.0);
            }
        }
    }

    /// Aligning a graph with itself matches every node to itself wherever
    /// a match is made at all, and never mismatches.
    #[test]
    fn self_alignment_is_identity((_, edges) in random_graph()) {
        let cfg = build(&edges);
        let a = align(&cfg, &cfg);
        for (m, b) in a
            .node_map
            .iter()
            .map(|(m, b)| (*m, *b))
            .collect::<Vec<_>>()
        {
            prop_assert_eq!(m, b);
        }
    }

    /// Aligning a uniformly shifted copy maps every matched node back by
    /// exactly the shift.
    #[test]
    fn shifted_alignment_preserves_offset((_, edges) in random_graph(), shift in 100u64..1000) {
        let cfg = build(&edges);
        let shifted = build(
            &edges
                .iter()
                .map(|&(s, t)| (s + shift, t + shift))
                .collect::<Vec<_>>(),
        );
        let a = align(&cfg, &shifted);
        for (m, b) in &a.node_map {
            prop_assert_eq!(m.0 - shift, b.0, "mismatch {} -> {}", m, b);
        }
    }

    /// Edge/node bookkeeping is consistent.
    #[test]
    fn graph_counts_consistent((_, edges) in random_graph()) {
        let cfg = build(&edges);
        let unique: HashSet<(u64, u64)> = edges.iter().copied().collect();
        prop_assert_eq!(cfg.edge_count(), unique.len());
        let nodes = cfg.nodes();
        prop_assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes sorted/deduped");
        for (s, t) in cfg.iter_edges() {
            prop_assert!(nodes.contains(&s) && nodes.contains(&t));
            prop_assert!(cfg.has_edge(s, t));
        }
    }
}
