//! End-to-end lint engine tests: every lint ID has a known-bad
//! fixture under `tests/fixtures/` (a directory the workspace walker
//! deliberately skips) and must fire exactly where expected; the
//! suppression machinery and exit-code mapping are pinned here too.

use leaps_lint::lints::{
    Severity, BAD_SUPPRESSION, HASH_ITER_ORDER, LOCK_ORDER_CYCLE, LOCK_UNWRAP, METRIC_VOCAB,
    RAW_CLOCK, STRAY_SPAWN, UNSAFE_BLOCK,
};
use leaps_lint::source::SourceFile;
use leaps_lint::{analyze, report, Analysis};

/// Parses fixture text as if it lived in a crate with no allowlist
/// exemptions for any lint under test.
fn fixture(name: &str, src: &str) -> SourceFile {
    SourceFile::parse(&format!("crates/leaps-core/src/{name}"), "leaps-core", false, src)
}

fn run(name: &str, src: &str) -> Analysis {
    analyze(&[fixture(name, src)])
}

/// `(lint, line)` pairs of the surviving findings, sorted.
fn hits(analysis: &Analysis) -> Vec<(&'static str, u32)> {
    analysis.findings.iter().map(|f| (f.lint, f.line)).collect()
}

#[test]
fn lock_unwrap_fires_on_unwrap_and_expect() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_lock_unwrap.rs"));
    assert_eq!(hits(&analysis), vec![(LOCK_UNWRAP, 7), (LOCK_UNWRAP, 11)]);
    assert!(analysis.findings[0].message.contains("lock_unpoisoned"));
}

#[test]
fn raw_clock_fires_outside_tests_only() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_raw_clock.rs"));
    assert_eq!(hits(&analysis), vec![(RAW_CLOCK, 6), (RAW_CLOCK, 10)]);
}

#[test]
fn raw_clock_is_exempt_in_allowlisted_crates() {
    let src = "pub fn t() -> std::time::Instant { std::time::Instant::now() }";
    let file = SourceFile::parse("crates/leaps-obs/src/lib.rs", "leaps-obs", false, src);
    assert!(analyze(&[file]).findings.is_empty());
}

#[test]
fn stray_spawn_fires_on_free_fn_and_builder() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_stray_spawn.rs"));
    assert_eq!(hits(&analysis), vec![(STRAY_SPAWN, 7), (STRAY_SPAWN, 11)]);
}

#[test]
fn hash_iter_order_fires_on_adapters_for_loops_and_fn_returns() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_hash_iter.rs"));
    let lints: Vec<_> = hits(&analysis);
    assert!(
        lints.contains(&(HASH_ITER_ORDER, 12)),
        "adapter iteration over the ascribed HashMap: {lints:?}"
    );
    assert!(
        lints.contains(&(HASH_ITER_ORDER, 20)),
        "for-loop over a hash-returning fn call: {lints:?}"
    );
    assert!(lints.iter().all(|&(l, _)| l == HASH_ITER_ORDER), "{lints:?}");
}

#[test]
fn unsafe_block_is_an_error_even_in_tests() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_unsafe.rs"));
    assert_eq!(hits(&analysis), vec![(UNSAFE_BLOCK, 4), (UNSAFE_BLOCK, 12)]);
    assert!(analysis.findings.iter().all(|f| f.severity == Severity::Error));
    assert_eq!(report::exit_code(&analysis, false), report::EXIT_ERRORS);
}

#[test]
fn metric_vocab_fires_on_off_vocabulary_names_only() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_metric_vocab.rs"));
    assert_eq!(hits(&analysis), vec![(METRIC_VOCAB, 5), (METRIC_VOCAB, 6)]);
    // The two in-vocabulary calls (pool.jobs, sweep.cell.us) pass.
}

#[test]
fn lock_order_cycle_is_detected_and_is_an_error() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_lock_cycle.rs"));
    assert_eq!(analysis.findings.len(), 1, "{:?}", analysis.findings);
    let f = &analysis.findings[0];
    assert_eq!(f.lint, LOCK_ORDER_CYCLE);
    assert_eq!(f.severity, Severity::Error);
    assert!(f.message.contains("alpha") && f.message.contains("beta"), "{}", f.message);
    assert_eq!(report::exit_code(&analysis, false), report::EXIT_ERRORS);
}

#[test]
fn consistent_lock_order_is_acyclic_and_clean() {
    let analysis = run("good.rs", include_str!("fixtures/good_lock_order.rs"));
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    // Both functions contribute the same alpha→beta edge.
    assert!(analysis.lock_graph.edges.contains_key(&("alpha".into(), "beta".into())));
    assert!(!analysis.lock_graph.edges.contains_key(&("beta".into(), "alpha".into())));
    assert_eq!(report::exit_code(&analysis, true), report::EXIT_CLEAN);
}

#[test]
fn reasonless_suppression_is_an_error_and_does_not_silence() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_suppression.rs"));
    assert_eq!(hits(&analysis), vec![(BAD_SUPPRESSION, 7), (LOCK_UNWRAP, 8)]);
    assert!(analysis.suppressed.is_empty(), "nothing may be waived without a reason");
    assert_eq!(report::exit_code(&analysis, false), report::EXIT_ERRORS);
}

#[test]
fn reasoned_suppressions_silence_standalone_and_trailing() {
    let analysis = run("good.rs", include_str!("fixtures/good_suppressed.rs"));
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
    let waived: Vec<_> = analysis.suppressed.iter().map(|s| s.finding.lint).collect();
    assert_eq!(waived, vec![LOCK_UNWRAP, RAW_CLOCK]);
    assert!(analysis.suppressed.iter().all(|s| !s.reason.is_empty()));
    assert_eq!(report::exit_code(&analysis, true), report::EXIT_CLEAN);
}

#[test]
fn suppression_for_the_wrong_lint_does_not_silence() {
    let src = "use std::sync::Mutex;\n\
               pub fn take(m: &Mutex<u32>) -> u32 {\n\
               \x20   // lint:allow(raw-clock): wrong lint id on purpose\n\
               \x20   *m.lock().unwrap()\n\
               }\n";
    let analysis = run("bad.rs", src);
    assert_eq!(hits(&analysis), vec![(LOCK_UNWRAP, 4)]);
}

#[test]
fn exit_codes_partition_clean_warning_error() {
    let clean = run("ok.rs", "pub fn nothing() {}");
    assert_eq!(report::exit_code(&clean, true), report::EXIT_CLEAN);

    let warn = run("bad.rs", include_str!("fixtures/bad_lock_unwrap.rs"));
    assert_eq!(report::exit_code(&warn, false), report::EXIT_WARNINGS);
    assert_eq!(report::exit_code(&warn, true), report::EXIT_ERRORS, "--deny-warnings escalates");
}

#[test]
fn json_report_is_well_formed_and_names_every_finding() {
    let analysis = run("bad.rs", include_str!("fixtures/bad_lock_unwrap.rs"));
    let json = report::json(&analysis);
    assert!(json.contains("\"lock-unwrap\""), "{json}");
    assert!(json.contains("\"by_lint\""), "{json}");
    // Messages contain backquotes and parens; the escaper must keep
    // the document balanced.
    assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
}

#[test]
fn test_code_detection_handles_cfg_not_test() {
    let src = "#[cfg(not(test))]\n\
               pub fn prod() -> std::time::Instant { std::time::Instant::now() }\n";
    let analysis = run("bad.rs", src);
    assert_eq!(hits(&analysis), vec![(RAW_CLOCK, 2)], "cfg(not(test)) guards non-test code");
}
