//! Lexer fidelity: the lints are only as trustworthy as the token
//! stream, so these fixtures pin the tricky corners — raw strings,
//! nested block comments, the `'a` lifetime vs `'a'` char ambiguity,
//! and forbidden patterns hidden inside literals or comments.

use leaps_lint::lexer::{lex, Tok};
use leaps_lint::source::SourceFile;

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

fn strings(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn raw_strings_with_hashes_keep_their_body() {
    let src = r####"let s = r##"say "hi"# ok"##;"####;
    assert_eq!(strings(src), vec![r##"say "hi"# ok"##.to_string()]);
    // The quotes and hashes inside must not leak tokens.
    assert_eq!(idents(src), vec!["let", "s"]);
}

#[test]
fn raw_string_terminator_needs_exact_hash_count() {
    // `"#` inside an `r##` string is body text, not a terminator.
    let src = r###"let s = r##"a "# b"##;"###;
    assert_eq!(strings(src), vec![r##"a "# b"##.to_string()]);
}

#[test]
fn byte_and_raw_byte_strings_lex_as_strings() {
    assert_eq!(strings(r#"let b = b"bytes";"#), vec!["bytes".to_string()]);
    assert_eq!(strings(r##"let b = br#"raw bytes"#;"##), vec!["raw bytes".to_string()]);
}

#[test]
fn nested_block_comments_are_one_comment() {
    let src = "/* outer /* inner */ still comment */ fn after() {}";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner"));
    assert!(lexed.comments[0].text.contains("still comment"));
    // Only the code after the comment becomes tokens.
    assert_eq!(
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect::<Vec<_>>(),
        vec!["fn", "after"]
    );
}

#[test]
fn lifetime_vs_char_literal() {
    let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
    let lifetimes =
        lexed.tokens.iter().filter(|t| matches!(&t.tok, Tok::Lifetime(s) if s == "a")).count();
    let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::CharLit).count();
    assert_eq!(lifetimes, 2, "both `'a` positions are lifetimes");
    assert_eq!(chars, 1, "`'a'` is a char literal");
    // `'static` is a lifetime (multi-char body can't be a char).
    let lexed = lex("fn g(x: &'static str) {}");
    assert!(lexed.tokens.iter().any(|t| matches!(&t.tok, Tok::Lifetime(s) if s == "static")));
    // Escaped and punctuation char literals.
    let lexed = lex(r"let t = ('\n', '+', ' ');");
    assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::CharLit).count(), 3);
}

#[test]
fn raw_identifier_lexes_as_ident() {
    assert_eq!(idents("let r#match = 1;"), vec!["let", "match"]);
}

#[test]
fn integer_range_is_not_a_float() {
    let lexed = lex("for i in 0..n {}");
    let dots = lexed.tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count();
    assert_eq!(dots, 2, "`0..n` keeps both range dots");
    let lexed = lex("let x = 1.5;");
    assert_eq!(lexed.tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count(), 0);
}

#[test]
fn forbidden_patterns_inside_literals_do_not_fire() {
    // `.lock().unwrap()` as string content, `Instant::now()` in
    // comments: no tokens, hence no findings.
    let src = r#"
        //! Never write `m.lock().unwrap()` — and Instant::now() is banned.
        /* let x = m.lock().unwrap(); */
        pub fn doc_only() -> &'static str {
            "call m.lock().unwrap() then Instant::now()"
        }
    "#;
    let file = SourceFile::parse("crates/leaps-core/src/doc.rs", "leaps-core", false, src);
    let analysis = leaps_lint::analyze(&[file]);
    assert!(analysis.findings.is_empty(), "{:?}", analysis.findings);
}

#[test]
fn trailing_vs_standalone_comment_binding() {
    let src = "let x = 1; // trailing\n// standalone\nlet y = 2;\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert!(lexed.comments[0].has_code_before, "same-line comment is trailing");
    assert!(!lexed.comments[1].has_code_before, "own-line comment is standalone");
}
