//! Fixture: `.lock().unwrap()` and `.lock().expect(…)` in non-test
//! code must both trigger `lock-unwrap`.

use std::sync::Mutex;

pub fn take(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn take_expect(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("poisoned")
}
