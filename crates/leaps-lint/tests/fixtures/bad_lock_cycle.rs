//! Fixture: two functions acquiring the same two locks in opposite
//! orders — the global lock-order graph gets alpha→beta and
//! beta→alpha, a cycle the detector must report.

use leaps_par::lock_unpoisoned;
use std::sync::Mutex;

pub struct State {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl State {
    pub fn forward(&self) -> u32 {
        let a = lock_unpoisoned(&self.alpha);
        let b = lock_unpoisoned(&self.beta);
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = lock_unpoisoned(&self.beta);
        let a = lock_unpoisoned(&self.alpha);
        *a + *b
    }
}
