//! Fixture: unsupervised thread creation triggers `stray-spawn`, both
//! the free function and the `Builder` method form.

use std::thread;

pub fn fire() -> thread::JoinHandle<()> {
    thread::spawn(|| {})
}

pub fn fire_named() -> std::io::Result<thread::JoinHandle<()>> {
    thread::Builder::new().name("rogue".into()).spawn(|| {})
}
