//! Fixture: iterating hash-ordered containers in non-test code
//! triggers `hash-iter-order` — via an adapter on an ascribed name,
//! via a `for … in` loop, and via a call to a hash-returning fn.

use std::collections::{HashMap, HashSet};

pub fn totals(input: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut counts: HashMap<String, u32> = HashMap::new();
    for (k, v) in input {
        *counts.entry(k.clone()).or_insert(0) += *v;
    }
    counts.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

fn gather(items: &[u32]) -> HashSet<u32> {
    items.iter().copied().collect()
}

pub fn first(items: &[u32]) -> Option<u32> {
    for x in gather(items) {
        return Some(x);
    }
    None
}
