//! Fixture: a suppression with a written reason silences its target
//! finding (which is still reported in the suppressed list), in both
//! the standalone and trailing comment positions.

use std::sync::Mutex;

pub fn take(m: &Mutex<u32>) -> u32 {
    // lint:allow(lock-unwrap): this fixture wants the poison panic to propagate
    *m.lock().unwrap()
}

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now() // lint:allow(raw-clock): fixture exercises trailing-comment binding
}
