//! Fixture: raw clock reads outside `leaps-obs` trigger `raw-clock`.

use std::time::{Instant, SystemTime};

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_exempt() {
        // raw-clock skips test code: this must NOT be reported.
        let _ = std::time::Instant::now();
    }
}
