//! Fixture: any `unsafe` is an error-severity finding, even in tests.

pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_still_reported() {
        let v = [1u8];
        assert_eq!(unsafe { *v.get_unchecked(0) }, 1);
    }
}
