//! Fixture: metric names off the dotted vocabulary trigger
//! `metric-vocab` in both the macro and registry-method forms.

pub fn record() {
    leaps_obs::counter!("benchmarkTotal").inc();
    leaps_obs::registry().counter("pool.bogus_counter").inc();
    // In-vocabulary names are fine in any form:
    leaps_obs::counter!("pool.jobs").inc();
    leaps_obs::registry().histogram("sweep.cell.us").record(1);
}
