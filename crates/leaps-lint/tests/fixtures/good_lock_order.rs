//! Fixture: the same two locks taken in a consistent order from two
//! functions — and a chained transient that is released at the `;` —
//! must produce an acyclic graph and no findings.

use leaps_par::lock_unpoisoned;
use std::sync::Mutex;

pub struct State {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl State {
    pub fn sum(&self) -> u32 {
        let a = lock_unpoisoned(&self.alpha);
        let b = lock_unpoisoned(&self.beta);
        *a + *b
    }

    pub fn bump(&self) {
        *lock_unpoisoned(&self.alpha) += 1;
        // The transient alpha guard above is gone by this statement, so
        // taking beta alone here adds no edge.
        let mut b = lock_unpoisoned(&self.beta);
        *b += 1;
        drop(b);
        let a = lock_unpoisoned(&self.alpha);
        let b2 = lock_unpoisoned(&self.beta);
        let _ = *a + *b2;
    }
}
