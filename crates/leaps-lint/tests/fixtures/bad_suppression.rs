//! Fixture: a reason-less `lint:allow` is itself an error finding and
//! must NOT silence the finding it targets.

use std::sync::Mutex;

pub fn take(m: &Mutex<u32>) -> u32 {
    // lint:allow(lock-unwrap)
    *m.lock().unwrap()
}
