//! The dotted metric/span vocabulary — the machine-readable mirror of
//! DESIGN.md §14. Every literal passed to `counter!` / `gauge!` /
//! `histogram!` / `span!` (or to the underlying `registry()` methods)
//! must match an entry here; patterns with a trailing `*` cover the
//! few names with one dynamic segment (`pool.queue.{index}`).
//!
//! Adding a metric is a two-line change — one row here, one row in
//! DESIGN.md §14 — and the lint keeps the two from drifting apart.

/// Exact metric and span names in the workspace vocabulary.
pub const EXACT: &[&str] = &[
    // leaps-par pool supervision
    "pool.jobs",
    "pool.panics",
    "pool.respawns",
    "pool.workers",
    // leaps-serve model registry
    "registry.hits",
    "registry.loads",
    "registry.evictions",
    "registry.models",
    "registry.cached_bytes",
    // leaps-serve session/daemon lifecycle
    "serve.opened",
    "serve.sessions",
    "serve.events",
    "serve.shed",
    "serve.closed",
    "serve.reaped",
    "serve.verdicts",
    "serve.degraded",
    // protocol verb spans
    "proto.hello",
    "proto.open",
    "proto.event",
    "proto.close",
    "proto.stats",
    "proto.reload",
    "proto.health",
    "proto.metrics",
    "proto.shutdown",
    "proto.bye",
    "proto.panic",
    // training counters
    "train.cv.cells",
    "train.smo.passes",
    "train.bw.iters",
    // checkpointing
    "ckpt.write",
    "ckpt.writes",
    "ckpt.bytes",
    // experiment sweeps
    "sweep.cell",
];

/// Name families with exactly one dynamic final segment.
pub const PATTERNS: &[&str] = &["pool.queue.*", "sweep.cells.*"];

/// Checks a metric-name literal against the vocabulary. `name` may be
/// a `format!` template — `{…}` placeholders are treated as one
/// dynamic segment. Returns an error message on any mismatch.
pub fn check(name: &str) -> Result<(), String> {
    let normalized = normalize_placeholders(name);
    check_shape(&normalized)?;
    if EXACT.contains(&normalized.as_str()) {
        return Ok(());
    }
    if PATTERNS.iter().any(|p| pattern_matches(p, &normalized)) {
        return Ok(());
    }
    // Spans publish their duration as the histogram `<span>.us`, so
    // the derived name is in-vocabulary whenever the span is.
    if let Some(base) = normalized.strip_suffix(".us") {
        if EXACT.contains(&base) || PATTERNS.iter().any(|p| pattern_matches(p, base)) {
            return Ok(());
        }
    }
    Err(format!(
        "`{name}` is not in the metric vocabulary (DESIGN.md §14); \
         add it there and to leaps-lint's vocab table, or fix the name"
    ))
}

/// Rewrites each `{…}` format placeholder to the wildcard segment `*`.
fn normalize_placeholders(name: &str) -> String {
    let mut out = String::new();
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    out.push('*');
                }
            }
            '}' if depth > 0 => depth -= 1,
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Names must be lowercase dotted paths: at least two segments of
/// `[a-z0-9_]+` (or a lone `*` wildcard segment).
fn check_shape(name: &str) -> Result<(), String> {
    let segments: Vec<&str> = name.split('.').collect();
    if segments.len() < 2 {
        return Err(format!("`{name}` is not a dotted metric path (need at least 2 segments)"));
    }
    for seg in &segments {
        let ok = *seg == "*"
            || (!seg.is_empty()
                && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        if !ok {
            return Err(format!(
                "`{name}` has a malformed segment `{seg}` (want lowercase [a-z0-9_]+)"
            ));
        }
    }
    Ok(())
}

fn pattern_matches(pattern: &str, name: &str) -> bool {
    let p: Vec<&str> = pattern.split('.').collect();
    let n: Vec<&str> = name.split('.').collect();
    p.len() == n.len() && p.iter().zip(&n).all(|(ps, ns)| *ps == "*" || *ns == "*" || ps == ns)
}
