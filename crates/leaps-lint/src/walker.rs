//! Workspace file walker: finds every first-party `.rs` file and
//! classifies it (owning crate, test-ness) for the lint policies.
//!
//! Skipped entirely: `target/`, `.git/`, vendored third-party shims
//! (`crates/compat-*` — not ours to lint), and `fixtures/` dirs
//! (known-bad lint-test inputs that must not fail the real run).

use crate::source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Collects and lexes all first-party workspace sources under `root`
/// (which must contain the workspace `Cargo.toml`). Files are
/// returned sorted by relative path so analysis order — and therefore
/// all output — is deterministic.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    paths.iter().map(|p| load(root, p)).collect()
}

/// Lexes an explicit set of files or directories (relative to `root`
/// or absolute); used to lint out-of-tree paths and fixtures.
pub fn explicit_files(root: &Path, args: &[String]) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    for a in args {
        let p = PathBuf::from(a);
        let p = if p.is_absolute() { p } else { root.join(p) };
        if p.is_dir() {
            collect_rs(&p, &mut paths)?;
        } else {
            paths.push(p);
        }
    }
    paths.sort();
    paths.iter().map(|p| load(root, p)).collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target"
                || name == ".git"
                || name == "fixtures"
                || name.starts_with("compat-")
            {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load(root: &Path, path: &Path) -> io::Result<SourceFile> {
    let src = std::fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let (crate_name, is_test) = classify(&rel_str);
    Ok(SourceFile::parse(&rel_str, &crate_name, is_test, &src))
}

/// Derives (crate name, whole-file-is-test) from a relative path.
/// `crates/<name>/…` belongs to `<name>`; root `tests/` is the
/// workspace integration-test harness; root `examples/` are demos.
fn classify(rel: &str) -> (String, bool) {
    let parts: Vec<&str> = rel.split('/').collect();
    let is_test = parts.iter().any(|p| *p == "tests" || *p == "benches");
    let crate_name = match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["examples", ..] => "examples".to_string(),
        ["tests", ..] => "workspace-tests".to_string(),
        _ => "unknown".to_string(),
    };
    (crate_name, is_test)
}
