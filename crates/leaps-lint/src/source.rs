//! Per-file model: token stream plus the metadata lints key off —
//! which crate the file belongs to, whether a given line is test
//! code, and any `lint:allow` suppressions.

use crate::lexer::{self, Tok, Token};
use crate::lints::{Finding, Severity, BAD_SUPPRESSION};

/// A suppression comment: `// lint:allow(<id>): <reason>`. The
/// suppression applies to findings of lint `lint` on `target_line`.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub lint: String,
    pub reason: String,
    /// Line of the comment itself (for diagnostics).
    pub comment_line: u32,
    /// Line whose findings this suppression silences: the comment's
    /// own line for trailing comments, else the next line of code.
    pub target_line: u32,
}

/// A lexed source file with workspace context.
pub struct SourceFile {
    /// Path relative to the workspace root (stable across machines).
    pub rel_path: String,
    /// Crate the file belongs to (`leaps-serve`, …) or a synthetic
    /// name (`workspace-tests`, `examples`) for root-level dirs.
    pub crate_name: String,
    /// True when the whole file is test code (under a `tests/` dir).
    pub is_test_file: bool,
    pub tokens: Vec<Token>,
    pub suppressions: Vec<Suppression>,
    /// Sorted half-open `(start, end)` line ranges lexed from
    /// `#[cfg(test)]` / `#[test]` items; lines inside are test code.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    pub fn parse(rel_path: &str, crate_name: &str, is_test_file: bool, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let suppressions = parse_suppressions(&lexed);
        let test_ranges = find_test_ranges(&lexed.tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            is_test_file,
            tokens: lexed.tokens,
            suppressions,
            test_ranges,
        }
    }

    /// True when `line` is test code: the file lives under `tests/`
    /// or the line falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.is_test_file || self.test_ranges.iter().any(|&(s, e)| line >= s && line < e)
    }

    /// The suppression covering a finding of `lint` at `line`, if any.
    pub fn suppression_for(&self, lint: &str, line: u32) -> Option<&Suppression> {
        self.suppressions.iter().find(|s| s.lint == lint && s.target_line == line)
    }
}

/// Extracts `lint:allow` suppressions from the comment stream. The
/// reason (everything after the closing `): `) may be empty here —
/// hygiene checking is a separate pass so the omission is reportable.
fn parse_suppressions(lexed: &lexer::Lexed) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let body = c.text.trim_start_matches('/').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix("lint:allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let lint = rest[..close].trim().to_string();
        let reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
        let target_line = if c.has_code_before {
            c.line
        } else {
            // Standalone comment: binds to the next line with code.
            lexed.tokens.iter().map(|t| t.line).find(|&l| l > c.line).unwrap_or(c.line + 1)
        };
        out.push(Suppression { lint, reason, comment_line: c.line, target_line });
    }
    out
}

/// Emits a `bad-suppression` finding for every reason-less
/// suppression in `file`. Reasons are mandatory: a waiver nobody can
/// justify in writing is a waiver that should not exist.
pub fn check_suppression_hygiene(file: &SourceFile) -> Vec<Finding> {
    file.suppressions
        .iter()
        .filter(|s| s.reason.is_empty())
        .map(|s| Finding {
            lint: BAD_SUPPRESSION,
            file: file.rel_path.clone(),
            line: s.comment_line,
            severity: Severity::Error,
            message: format!(
                "suppression of `{}` has no reason; write `// lint:allow({}): <why>`",
                s.lint, s.lint
            ),
        })
        .collect()
}

/// Finds line ranges belonging to `#[cfg(test)]` or `#[test]` items.
/// After the attribute, any further attributes are skipped, then the
/// item's first `{` at paren-depth 0 opens the range, which runs to
/// its matching `}`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_test_attr(tokens, i) {
            i += 1;
            continue;
        }
        // Skip this attribute and any that follow it.
        let mut j = skip_attr(tokens, i);
        while matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('#'))) {
            j = skip_attr(tokens, j);
        }
        // Find the item body `{` at paren-depth 0, then its close.
        let mut paren = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                Tok::Punct('{') if paren == 0 => break,
                Tok::Punct(';') if paren == 0 => break, // e.g. `mod x;`
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() || tokens[j].tok == Tok::Punct(';') {
            i = j + 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end_line = tokens.get(j).map_or(u32::MAX, |t| t.line + 1);
        ranges.push((start_line, end_line));
        i = j + 1;
    }
    ranges
}

/// True when token `i` starts `#[test]`, `#[cfg(test)]` or a
/// `#[cfg_attr(…, test)]`-style attribute mentioning `test`.
fn is_test_attr(tokens: &[Token], i: usize) -> bool {
    if tokens[i].tok != Tok::Punct('#') {
        return false;
    }
    if !matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return false;
    }
    let end = skip_attr(tokens, i);
    let mentions =
        |word: &str| tokens[i..end].iter().any(|t| matches!(&t.tok, Tok::Ident(s) if s == word));
    // `#[cfg(not(test))]` guards *non*-test code.
    mentions("test") && !mentions("not")
}

/// Returns the index just past the `#[…]` attribute starting at `i`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}
