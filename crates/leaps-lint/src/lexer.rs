//! A minimal Rust lexer: just enough fidelity that the lints never
//! fire on commented-out code or on patterns inside string literals.
//!
//! Handled faithfully: line and (nested) block comments, string
//! literals with escapes, raw strings `r#"…"#` with any number of
//! hashes, byte/raw-byte strings, raw identifiers `r#match`, and the
//! `'a` lifetime vs `'a'` char-literal ambiguity. Everything else is
//! reduced to identifiers, numbers and single-character punctuation —
//! the lints pattern-match on token runs, so `::` is simply two `:`
//! tokens.

/// One lexed token. String literals keep their cooked content (needed
/// by the metric-vocabulary lint); other payloads are the raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, …).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// A char or byte literal; content is irrelevant to every lint.
    CharLit,
    /// A string literal (plain, raw, byte or raw-byte); payload is
    /// the literal's body with raw-string hashes stripped but escape
    /// sequences left as written.
    Str(String),
    /// An integer or float literal.
    Number,
    /// Any single punctuation character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment captured during lexing; the suppression parser reads
/// these. `has_code_before` is true for trailing comments (`let x = 1;
/// // why`), which bind to their own line rather than the next one.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub has_code_before: bool,
}

/// Lexer output: the token stream and every comment encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

pub fn lex(src: &str) -> Lexed {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok, line: u32) {
        self.out.tokens.push(Token { tok, line });
    }

    fn code_on_line(&self, line: u32) -> bool {
        self.out.tokens.last().is_some_and(|t| t.line == line)
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line),
                '\'' => self.quote(line),
                'r' if self.raw_prefix(0) => self.raw(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                }
                'b' if self.peek(1) == Some('r') && self.raw_prefix(1) => {
                    self.bump();
                    self.raw(line);
                }
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    /// True when position `at` starts `r"`, `r#"` or a raw identifier
    /// `r#ident` — all of which the raw-token path handles.
    fn raw_prefix(&self, at: usize) -> bool {
        matches!(self.peek(at + 1), Some('"') | Some('#'))
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let has_code_before = self.code_on_line(line);
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line, has_code_before });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let has_code_before = self.code_on_line(line);
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line, has_code_before });
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut body = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    body.push('\\');
                    if let Some(e) = self.bump() {
                        body.push(e);
                    }
                }
                '"' => break,
                c => body.push(c),
            }
        }
        self.push(Tok::Str(body), line);
    }

    /// `'` starts either a lifetime (`'a`, `'static`) or a char
    /// literal (`'a'`, `'\n'`, `'\u{1F600}'`). Disambiguation: after
    /// an identifier-shaped body, a closing `'` means char literal;
    /// anything else means lifetime. Escapes always mean char.
    fn quote(&mut self, line: u32) {
        self.bump(); // the quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // the escaped char (or `u`)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(Tok::CharLit, line);
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.peek(0) == Some('\'') && name.chars().count() == 1 {
                    self.bump();
                    self.push(Tok::CharLit, line);
                } else {
                    self.push(Tok::Lifetime(name), line);
                }
            }
            Some(_) => {
                // Non-alphabetic char literal: `'+'`, `' '`, `'''`…
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(Tok::CharLit, line);
            }
            None => {}
        }
    }

    /// Raw strings (`r"…"`, `r#"…"#`, …) and raw identifiers
    /// (`r#match`). Called with `pos` on the `r`.
    fn raw(&mut self, line: u32) {
        self.bump(); // the `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some('"') {
            // Raw identifier `r#ident`: lex the ident part normally.
            self.ident(line);
            return;
        }
        self.bump(); // opening quote
        let mut body = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A quote only terminates when followed by enough #s.
                let mut seen = 0usize;
                while seen < hashes && self.peek(0) == Some('#') {
                    seen += 1;
                    self.bump();
                }
                if seen == hashes {
                    break 'outer;
                }
                body.push('"');
                for _ in 0..seen {
                    body.push('#');
                }
            } else {
                body.push(c);
            }
        }
        self.push(Tok::Str(body), line);
    }

    fn char_lit(&mut self, line: u32) {
        // Byte char `b'x'` — `pos` is on the quote.
        self.bump();
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
        self.push(Tok::CharLit, line);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Ident(name), line);
    }

    fn number(&mut self, line: u32) {
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Float like `1.5`; leaves `0..n` as number-punct-punct.
                self.bump();
            } else {
                break;
            }
        }
        self.push(Tok::Number, line);
    }
}
