//! `leaps-lint` CLI.
//!
//! ```text
//! leaps-lint --workspace [--root DIR] [--deny-warnings] [--json] [--lock-graph]
//! leaps-lint <path>… (files or directories)
//! ```
//!
//! Exit codes: 0 clean · 1 warnings · 2 errors (or warnings under
//! `--deny-warnings`) · 3 usage · 4 I/O. See README "Correctness
//! tooling".

use leaps_lint::{analyze, report, walker};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    workspace: bool,
    root: PathBuf,
    deny_warnings: bool,
    json: bool,
    lock_graph: bool,
    paths: Vec<String>,
}

fn usage() -> &'static str {
    "usage: leaps-lint (--workspace | PATH...) [--root DIR] [--deny-warnings] [--json] [--lock-graph]"
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        workspace: false,
        root: PathBuf::from("."),
        deny_warnings: false,
        json: false,
        lock_graph: false,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => opts.workspace = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--json" => opts.json = true,
            "--lock-graph" => opts.lock_graph = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => opts.paths.push(path.to_string()),
        }
    }
    if opts.workspace != opts.paths.is_empty() {
        // Either --workspace or explicit paths, never both or neither.
        if opts.workspace {
            return Err("--workspace does not take extra paths".to_string());
        }
        return Err("nothing to lint: pass --workspace or paths".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::from(0);
            }
            eprintln!("leaps-lint: {msg}\n{}", usage());
            return ExitCode::from(report::EXIT_USAGE as u8);
        }
    };
    if opts.workspace && !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "leaps-lint: `{}` is not a workspace root (no Cargo.toml); use --root",
            opts.root.display()
        );
        return ExitCode::from(report::EXIT_USAGE as u8);
    }
    let files = if opts.workspace {
        walker::workspace_files(&opts.root)
    } else {
        walker::explicit_files(&opts.root, &opts.paths)
    };
    let files = match files {
        Ok(f) => f,
        Err(e) => {
            eprintln!("leaps-lint: I/O error: {e}");
            return ExitCode::from(report::EXIT_IO as u8);
        }
    };
    let analysis = analyze(&files);
    if opts.json {
        print!("{}", report::json(&analysis));
    } else {
        print!("{}", report::text(&analysis));
        if opts.lock_graph {
            print!("{}", report::lock_graph_text(&analysis));
        }
    }
    ExitCode::from(report::exit_code(&analysis, opts.deny_warnings) as u8)
}
