//! Reporters: human-readable text and machine-readable JSON (used by
//! `results/LINT_baseline.json`), plus the exit-code policy.
//!
//! Exit codes (documented in README "Correctness tooling"):
//! * `0` — clean (or warnings only, without `--deny-warnings`)
//! * `1` — warnings found and not denied
//! * `2` — errors found, or warnings under `--deny-warnings`
//! * `3` — usage error (bad flags/paths)
//! * `4` — I/O error reading the workspace

use crate::lints::{Severity, ALL_LINTS};
use crate::Analysis;
use std::collections::BTreeMap;
use std::fmt::Write as _;

pub const EXIT_CLEAN: i32 = 0;
pub const EXIT_WARNINGS: i32 = 1;
pub const EXIT_ERRORS: i32 = 2;
pub const EXIT_USAGE: i32 = 3;
pub const EXIT_IO: i32 = 4;

/// Picks the process exit code for an analysis.
pub fn exit_code(analysis: &Analysis, deny_warnings: bool) -> i32 {
    let errors = analysis.findings.iter().any(|f| f.severity == Severity::Error);
    let warnings = analysis.findings.iter().any(|f| f.severity == Severity::Warning);
    if errors || (warnings && deny_warnings) {
        EXIT_ERRORS
    } else if warnings {
        EXIT_WARNINGS
    } else {
        EXIT_CLEAN
    }
}

/// Human-readable report: one line per finding, a suppression digest,
/// and the lock-order verdict.
pub fn text(analysis: &Analysis) -> String {
    let mut out = String::new();
    for f in &analysis.findings {
        let _ = writeln!(
            out,
            "{}:{}: {}: [{}] {}",
            f.file,
            f.line,
            f.severity.label(),
            f.lint,
            f.message
        );
    }
    if !analysis.suppressed.is_empty() {
        let _ =
            writeln!(out, "-- {} finding(s) suppressed with reasons:", analysis.suppressed.len());
        for s in &analysis.suppressed {
            let _ = writeln!(
                out,
                "   {}:{}: [{}] allowed: {}",
                s.finding.file, s.finding.line, s.finding.lint, s.reason
            );
        }
    }
    let edges = analysis.lock_graph.edges.len();
    let cyclic = analysis.findings.iter().any(|f| f.lint == "lock-order-cycle");
    let _ = writeln!(
        out,
        "-- lock-order graph: {} lock(s), {} edge(s), {}",
        analysis.lock_graph.nodes().len(),
        edges,
        if cyclic { "CYCLIC" } else { "acyclic" }
    );
    let (errs, warns) = tally(analysis);
    let _ = writeln!(out, "-- {} error(s), {} warning(s)", errs, warns);
    out
}

/// Lock-order graph dump for `--lock-graph`: every edge with its
/// first witnessing site.
pub fn lock_graph_text(analysis: &Analysis) -> String {
    let mut out = String::new();
    for ((a, b), sites) in &analysis.lock_graph.edges {
        let s = &sites[0];
        let _ = writeln!(out, "{a} -> {b}  ({} in {}:{})", s.func, s.file, s.line);
    }
    out
}

fn tally(analysis: &Analysis) -> (usize, usize) {
    let errs = analysis.findings.iter().filter(|f| f.severity == Severity::Error).count();
    (errs, analysis.findings.len() - errs)
}

/// Machine-readable JSON report. Hand-rolled (std-only crate) but
/// fully escaped; key order is deterministic.
pub fn json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in analysis.findings.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"severity\": {}, \"message\": {}}}",
            if i == 0 { "" } else { "," },
            esc(f.lint),
            esc(&f.file),
            f.line,
            esc(f.severity.label()),
            esc(&f.message)
        );
    }
    out.push_str("\n  ],\n  \"suppressed\": [");
    for (i, s) in analysis.suppressed.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
            if i == 0 { "" } else { "," },
            esc(s.finding.lint),
            esc(&s.finding.file),
            s.finding.line,
            esc(&s.reason)
        );
    }
    out.push_str("\n  ],\n  \"lock_graph\": {\n    \"edges\": [");
    for (i, ((a, b), sites)) in analysis.lock_graph.edges.iter().enumerate() {
        let s = &sites[0];
        let _ = write!(
            out,
            "{}\n      {{\"from\": {}, \"to\": {}, \"func\": {}, \"file\": {}, \"line\": {}}}",
            if i == 0 { "" } else { "," },
            esc(a),
            esc(b),
            esc(&s.func),
            esc(&s.file),
            s.line
        );
    }
    let cyclic = analysis.findings.iter().any(|f| f.lint == "lock-order-cycle");
    let _ = write!(out, "\n    ],\n    \"acyclic\": {}\n  }},\n", !cyclic);
    let mut by_lint: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &analysis.findings {
        *by_lint.entry(f.lint).or_insert(0) += 1;
    }
    let (errs, warns) = tally(analysis);
    let _ = write!(
        out,
        "  \"summary\": {{\"total\": {}, \"errors\": {}, \"warnings\": {}, \"by_lint\": {{",
        analysis.findings.len(),
        errs,
        warns
    );
    let mut first = true;
    for lint in ALL_LINTS {
        if let Some(n) = by_lint.get(lint) {
            let _ = write!(out, "{}{}: {}", if first { "" } else { ", " }, esc(lint), n);
            first = false;
        }
    }
    out.push_str("}}\n}\n");
    out
}

/// JSON string escape.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
