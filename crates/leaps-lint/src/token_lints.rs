//! Tier 1: token-level invariant lints. Each `check_*` function slides
//! over one file's token stream looking for a forbidden pattern; the
//! shared [`Ctx`] applies crate allowlists and test-code exemptions
//! from the policy table before a finding is recorded.

use crate::lexer::{Tok, Token};
use crate::lints::{
    self, Finding, HASH_ITER_ORDER, LOCK_UNWRAP, METRIC_VOCAB, RAW_CLOCK, STRAY_SPAWN, UNSAFE_BLOCK,
};
use crate::source::SourceFile;
use crate::vocab;
use std::collections::BTreeSet;

/// Runs every token lint over `file`. `_all` is reserved for future
/// cross-file lints; metric-vocab is cross-file by construction since
/// the vocabulary itself is the shared table.
pub fn check_file(file: &SourceFile, _all: &[SourceFile], out: &mut Vec<Finding>) {
    let mut ctx = Ctx { file, out, emitted: BTreeSet::new() };
    check_lock_unwrap(&mut ctx);
    check_raw_clock(&mut ctx);
    check_stray_spawn(&mut ctx);
    check_unsafe(&mut ctx);
    check_metric_vocab(&mut ctx);
    check_hash_iter_order(&mut ctx);
}

struct Ctx<'a> {
    file: &'a SourceFile,
    out: &'a mut Vec<Finding>,
    /// (lint, line) pairs already reported — collapses repeated
    /// matches of the same pattern on one line into one finding.
    emitted: BTreeSet<(&'static str, u32)>,
}

impl Ctx<'_> {
    fn emit(&mut self, lint: &'static str, line: u32, message: String) {
        let policy = lints::policy(lint);
        if policy.allowed_crates.contains(&self.file.crate_name.as_str()) {
            return;
        }
        if policy.skip_tests && self.file.is_test_line(line) {
            return;
        }
        if !self.emitted.insert((lint, line)) {
            return;
        }
        self.out.push(Finding {
            lint,
            file: self.file.rel_path.clone(),
            line,
            severity: policy.severity,
            message,
        });
    }

    fn tokens(&self) -> &[Token] {
        &self.file.tokens
    }
}

fn ident(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: Option<&Token>, c: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// `path::to::name` — true when tokens at `i` are `name :: tail`.
fn path_seg(toks: &[Token], i: usize, name: &str, tail: &str) -> bool {
    ident(toks.get(i)) == Some(name)
        && punct(toks.get(i + 1), ':')
        && punct(toks.get(i + 2), ':')
        && ident(toks.get(i + 3)) == Some(tail)
}

/// lock-unwrap: `.lock().unwrap()` / `.lock().expect(…)` panics on a
/// poisoned mutex, wedging supervisors; use `leaps_par::lock_unpoisoned`.
fn check_lock_unwrap(ctx: &mut Ctx) {
    let toks = ctx.tokens();
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        if punct(toks.get(i), '.')
            && ident(toks.get(i + 1)) == Some("lock")
            && punct(toks.get(i + 2), '(')
            && punct(toks.get(i + 3), ')')
            && punct(toks.get(i + 4), '.')
            && matches!(ident(toks.get(i + 5)), Some("unwrap") | Some("expect"))
            && punct(toks.get(i + 6), '(')
        {
            hits.push(toks[i].line);
        }
    }
    for line in hits {
        ctx.emit(
            LOCK_UNWRAP,
            line,
            "`.lock().unwrap()` panics on a poisoned mutex; \
             use `leaps_par::lock_unpoisoned` so a panicking holder cannot wedge the lock"
                .to_string(),
        );
    }
}

/// raw-clock: `Instant::now` / `SystemTime::now` outside `leaps-obs`
/// bypasses the swappable clock, breaking bit-stable metrics in test.
fn check_raw_clock(ctx: &mut Ctx) {
    let toks = ctx.tokens();
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        for ty in ["Instant", "SystemTime"] {
            if path_seg(toks, i, ty, "now") {
                hits.push((toks[i].line, ty));
            }
        }
    }
    for (line, ty) in hits {
        ctx.emit(
            RAW_CLOCK,
            line,
            format!(
                "`{ty}::now` bypasses the swappable obs clock; \
                 use `leaps_obs::now_micros()` so tests can freeze time"
            ),
        );
    }
}

/// stray-spawn: threads created outside `leaps-par` / `leaps-serve`
/// escape supervision (no panic containment, no respawn, no naming).
fn check_stray_spawn(ctx: &mut Ctx) {
    let toks = ctx.tokens();
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        let direct = path_seg(toks, i, "thread", "spawn");
        // `Builder::new()…spawn(…)`: a `.spawn(` whose statement
        // (back to the nearest `;`/`{`/`}`) mentions `Builder`.
        let via_builder = punct(toks.get(i), '.')
            && ident(toks.get(i + 1)) == Some("spawn")
            && punct(toks.get(i + 2), '(')
            && statement_start(toks, i)
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "Builder" || s == "thread"));
        if direct || via_builder {
            hits.push(toks[i].line);
        }
    }
    for line in hits {
        ctx.emit(
            STRAY_SPAWN,
            line,
            "unsupervised thread spawn; route work through `leaps-par` \
             (scoped helpers or the supervised pool) so panics are contained"
                .to_string(),
        );
    }
}

/// Tokens of the statement containing index `i` (from the nearest
/// preceding `;`, `{` or `}` up to `i`).
fn statement_start(toks: &[Token], i: usize) -> &[Token] {
    let mut j = i;
    while j > 0 {
        if matches!(toks[j - 1].tok, Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')) {
            break;
        }
        j -= 1;
    }
    &toks[j..i]
}

/// unsafe-block: the workspace is 100% safe Rust today; any `unsafe`
/// needs an explicit, written waiver.
fn check_unsafe(ctx: &mut Ctx) {
    let toks = ctx.tokens();
    let mut hits = Vec::new();
    for t in toks {
        if matches!(&t.tok, Tok::Ident(s) if s == "unsafe") {
            hits.push(t.line);
        }
    }
    for line in hits {
        ctx.emit(
            UNSAFE_BLOCK,
            line,
            "`unsafe` is not used anywhere in this workspace; \
             justify any exception with a lint:allow reason"
                .to_string(),
        );
    }
}

/// metric-vocab: every literal passed to the obs macros (or the
/// underlying registry methods) must match the dotted vocabulary.
fn check_metric_vocab(ctx: &mut Ctx) {
    const MACROS: &[&str] = &["counter", "gauge", "histogram", "span"];
    let toks = ctx.tokens();
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident(toks.get(i)) else { continue };
        if !MACROS.contains(&name) {
            continue;
        }
        // Macro form: `counter!(` — or method form: `.counter(`.
        let arg_at = if punct(toks.get(i + 1), '!') && punct(toks.get(i + 2), '(') {
            i + 3
        } else if name != "span"
            && punct(toks.get(i + 1), '(')
            && i > 0
            && punct(toks.get(i - 1), '.')
        {
            i + 2
        } else {
            continue;
        };
        if let Some((line, literal)) = metric_literal(toks, arg_at) {
            if let Err(msg) = vocab::check(&literal) {
                hits.push((line, msg));
            }
        }
    }
    for (line, msg) in hits {
        ctx.emit(METRIC_VOCAB, line, msg);
    }
}

/// Extracts the metric-name literal at an argument position: either a
/// plain string or `&format!("…", …)` (the template is checked with
/// placeholders as wildcards). Non-literal names cannot be checked.
fn metric_literal(toks: &[Token], at: usize) -> Option<(u32, String)> {
    let mut j = at;
    if punct(toks.get(j), '&') {
        j += 1;
    }
    if ident(toks.get(j)) == Some("format")
        && punct(toks.get(j + 1), '!')
        && punct(toks.get(j + 2), '(')
    {
        j += 3;
    }
    match toks.get(j).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some((toks[j].line, s.clone())),
        _ => None,
    }
}

/// hash-iter-order: iterating a `HashMap`/`HashSet` in non-test code
/// yields nondeterministic order; on a result path that breaks the
/// bit-identical-outputs invariant. Two passes: find names with hash
/// types (ascriptions and fn returns), then flag iteration over them.
fn check_hash_iter_order(ctx: &mut Ctx) {
    let toks = ctx.tokens();
    let hash_names = collect_hash_names(toks);
    if hash_names.is_empty() {
        return;
    }
    const ADAPTERS: &[&str] = &[
        "iter",
        "iter_mut",
        "into_iter",
        "keys",
        "values",
        "values_mut",
        "drain",
        "retain",
        "into_keys",
        "into_values",
    ];
    let mut hits = Vec::new();
    for i in 0..toks.len() {
        // `<recv>.iter()` — receiver mentions a hash-typed name.
        if punct(toks.get(i), '.')
            && ident(toks.get(i + 1)).is_some_and(|m| ADAPTERS.contains(&m))
            && punct(toks.get(i + 2), '(')
        {
            if let Some(name) =
                receiver_idents(toks, i).into_iter().find(|n| hash_names.contains(n))
            {
                hits.push((toks[i].line, name, ident(toks.get(i + 1)).unwrap().to_string()));
            }
        }
        // `for pat in <expr> {` — expr mentions a hash-typed name.
        if ident(toks.get(i)) == Some("for") {
            if let Some((line, name)) = for_loop_over_hash(toks, i, &hash_names) {
                hits.push((line, name, "for-in".to_string()));
            }
        }
    }
    for (line, name, how) in hits {
        ctx.emit(
            HASH_ITER_ORDER,
            line,
            format!(
                "iteration ({how}) over hash-ordered `{name}` is nondeterministic; \
                 use BTreeMap/BTreeSet or sort before consuming"
            ),
        );
    }
}

/// Pass 1: names whose ascribed type mentions `HashMap`/`HashSet`
/// (let bindings, struct fields, fn params — all share the `name :
/// Type` shape) plus same-file functions returning a hash type.
fn collect_hash_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : <type…>` — not a path `::` on either side.
        if let Some(name) = ident(toks.get(i)) {
            let ascription = punct(toks.get(i + 1), ':')
                && !punct(toks.get(i + 2), ':')
                && !(i > 0 && punct(toks.get(i - 1), ':'));
            if ascription && type_scan_hits_hash(toks, i + 2) {
                names.insert(name.to_string());
            }
        }
        // `fn name (…) -> …HashMap…` — calls to it produce hash data.
        if ident(toks.get(i)) == Some("fn") {
            if let Some(name) = ident(toks.get(i + 1)) {
                if fn_returns_hash(toks, i + 2) {
                    names.insert(name.to_string());
                }
            }
        }
    }
    names
}

/// Scans a type position until the ascription plausibly ends (`=`,
/// `;`, `{`, or a `,`/`)` at nesting depth 0), reporting whether a
/// hash container appears. Bounded so a miss can't run away.
fn type_scan_hits_hash(toks: &[Token], start: usize) -> bool {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let end = (start + 40).min(toks.len());
    for t in toks.get(start..end).unwrap_or_default() {
        match &t.tok {
            Tok::Ident(s) if s == "HashMap" || s == "HashSet" => return true,
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') if paren > 0 => paren -= 1,
            Tok::Punct(')') => return false,
            Tok::Punct(',') if angle <= 0 && paren <= 0 => return false,
            Tok::Punct('=') | Tok::Punct(';') | Tok::Punct('{') => return false,
            _ => {}
        }
    }
    false
}

/// From just past a fn name, skips the parameter list then checks a
/// `-> …` return type for hash containers.
fn fn_returns_hash(toks: &[Token], mut j: usize) -> bool {
    // Skip generics to the parameter `(`.
    while j < toks.len() && !punct(toks.get(j), '(') {
        if matches!(toks[j].tok, Tok::Punct('{') | Tok::Punct(';')) {
            return false;
        }
        j += 1;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Expect `-> Type… {`.
    if !(punct(toks.get(j + 1), '-') && punct(toks.get(j + 2), '>')) {
        return false;
    }
    let end = (j + 40).min(toks.len());
    for t in toks.get(j + 3..end).unwrap_or_default() {
        match &t.tok {
            Tok::Ident(s) if s == "HashMap" || s == "HashSet" => return true,
            Tok::Punct('{') | Tok::Punct(';') => return false,
            _ => {}
        }
    }
    false
}

/// Walks backwards from the `.` of a method call, collecting the
/// identifiers in the receiver expression: idents, `.` chains, and
/// balanced `(…)` / `[…]` groups (so `f(&self.x).y.iter()` sees
/// `f`, `self`, `x`, `y`).
fn receiver_idents(toks: &[Token], dot: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut j = dot;
    let mut depth = 0i32;
    while j > 0 {
        j -= 1;
        match &toks[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Tok::Ident(s) => {
                out.insert(s.clone());
            }
            Tok::Punct('.') | Tok::Punct('&') | Tok::Punct(':') => {}
            _ if depth > 0 => {}
            _ => break,
        }
    }
    out
}

/// For `for pat in <expr> {`, returns the first hash-typed name the
/// loop expression mentions.
fn for_loop_over_hash(
    toks: &[Token],
    for_idx: usize,
    hash_names: &BTreeSet<String>,
) -> Option<(u32, String)> {
    // Find `in` at nesting depth 0 (patterns may contain `(`/`[`).
    let mut j = for_idx + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(s) if s == "in" && depth == 0 => break,
            Tok::Punct('{') | Tok::Punct(';') => return None,
            _ => {}
        }
        j += 1;
    }
    // Scan the loop expression to the body `{` at depth 0.
    let mut k = j + 1;
    depth = 0;
    while k < toks.len() {
        match &toks[k].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => return None,
            Tok::Punct(';') => return None,
            Tok::Ident(s) if hash_names.contains(s) => {
                return Some((toks[k].line, s.clone()));
            }
            _ => {}
        }
        k += 1;
    }
    None
}
